//! Cross-crate integration: every §6.1 benchmark on every runtime
//! configuration (the full ablation matrix of Figures 4–6 plus the §6.3
//! work-stealing comparators), each verified against its serial
//! reference.

use nanotask::workloads::{all_workloads, workload_by_name};
use nanotask::{Runtime, RuntimeConfig};

fn configs() -> Vec<RuntimeConfig> {
    let mut v = RuntimeConfig::ablations();
    v.push(RuntimeConfig::openmp_llvm_like());
    v.push(RuntimeConfig::openmp_gcc_like());
    v
}

#[test]
fn full_matrix_all_benchmarks_all_configs() {
    for cfg in configs() {
        let label = cfg.label;
        let rt = Runtime::new(cfg.workers(3));
        for mut w in all_workloads(1) {
            let name = w.name();
            let sizes = w.block_sizes();
            let bs = sizes[sizes.len() / 2];
            w.run(&rt, bs);
            w.verify()
                .unwrap_or_else(|e| panic!("{name} under '{label}' (bs={bs}): {e}"));
        }
    }
}

#[test]
fn finest_granularity_all_configs_dotprod() {
    // The highest-stress point of the paper's sweeps: smallest tasks.
    for cfg in configs() {
        let label = cfg.label;
        let rt = Runtime::new(cfg.workers(4));
        let mut w = workload_by_name("dotprod", 1).unwrap();
        let bs = w.block_sizes()[0];
        w.run(&rt, bs);
        w.verify().unwrap_or_else(|e| panic!("'{label}': {e}"));
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
    let mut w = workload_by_name("cholesky", 1).unwrap();
    w.run(&rt, 16);
    w.verify().unwrap();
    w.run(&rt, 16);
    w.verify().unwrap();
    w.run(&rt, 32);
    w.verify().unwrap();
}

#[test]
fn no_task_leaks_across_benchmarks() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
    for mut w in all_workloads(1) {
        let sizes = w.block_sizes();
        w.run(&rt, sizes[sizes.len() - 1]);
    }
    assert_eq!(rt.live_tasks(), 0, "task objects leaked");
    let s = rt.stats();
    assert_eq!(s.tasks_created, s.tasks_freed);
    // Freed task shells are parked in the recycling slab, not returned
    // to the allocator — so every outstanding block must be exactly one
    // fresh-allocated shell awaiting reuse.
    assert_eq!(
        s.alloc.live, s.alloc.recycle_misses,
        "allocator blocks leaked"
    );
    assert!(s.alloc.recycle_hits > 0, "repeat runs must recycle shells");
    assert!(s.alloc.peak_live_tasks > 0);
}

#[test]
fn single_worker_runtime_completes_everything() {
    // Degenerate pool: the main thread does all the work (taskwait and
    // run() helping loops must keep it live).
    let rt = Runtime::new(RuntimeConfig::optimized().workers(1));
    for mut w in all_workloads(1) {
        let name = w.name();
        let sizes = w.block_sizes();
        w.run(&rt, sizes[sizes.len() / 2]);
        w.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn wait_free_stats_populated() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
    let mut w = workload_by_name("matmul", 1).unwrap();
    w.run(&rt, 16);
    let (accesses, deliveries, _dups) = rt.stats().deps_deliveries;
    assert!(accesses > 0, "ASM accesses registered");
    assert!(deliveries > 0, "ASM deliveries happened");
    // Lemma 2.3: bounded deliveries per access.
    assert!(deliveries <= accesses * 21, "avg deliveries within |F|");
}

#[test]
fn platform_profiles_drive_numa_partitioning() {
    use nanotask::Platform;
    for p in Platform::ALL {
        let scaled = p.scaled_to(4);
        let rt = Runtime::new(RuntimeConfig::optimized().platform(scaled));
        let mut w = workload_by_name("heat", 1).unwrap();
        w.run(&rt, 32);
        w.verify().unwrap_or_else(|e| panic!("{}: {e}", p.name));
    }
}
