//! Property-based tests: for *random task programs*, the parallel
//! runtime must be serially equivalent — every conflicting pair of
//! accesses executes in spawn order, readers observe exactly the value a
//! serial execution would produce, and reductions fold to the serial
//! total. Checked on both dependency systems.

use proptest::prelude::*;

use nanotask::{Deps, DepsKind, RedOp, Runtime, RuntimeConfig, SendPtr};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

const ADDRS: usize = 4;

/// One randomly-generated access.
#[derive(Debug, Clone, Copy)]
enum Acc {
    Read(usize),
    Write(usize),
    ReadWrite(usize),
}

impl Acc {
    fn addr_idx(&self) -> usize {
        match *self {
            Acc::Read(a) | Acc::Write(a) | Acc::ReadWrite(a) => a,
        }
    }
}

fn acc_strategy() -> impl Strategy<Value = Acc> {
    (0usize..ADDRS, 0u8..3).prop_map(|(a, m)| match m {
        0 => Acc::Read(a),
        1 => Acc::Write(a),
        _ => Acc::ReadWrite(a),
    })
}

/// A task: up to 2 accesses (distinct addresses) + a seed for its update.
fn task_strategy() -> impl Strategy<Value = (Vec<Acc>, u64)> {
    (proptest::collection::vec(acc_strategy(), 1..3), 1u64..1000).prop_map(|(mut accs, seed)| {
        accs.dedup_by_key(|a| a.addr_idx());
        (accs, seed)
    })
}

/// Deterministic update applied by writers.
fn mix(old: u64, seed: u64) -> u64 {
    old.wrapping_mul(6364136223846793005)
        .wrapping_add(seed)
        .rotate_left(13)
}

/// Serial execution of the program: returns final memory and, for each
/// task and read-access, the value it must observe.
fn serial(program: &[(Vec<Acc>, u64)]) -> ([u64; ADDRS], Vec<Vec<u64>>) {
    let mut mem = [0u64; ADDRS];
    let mut reads = Vec::new();
    for (accs, seed) in program {
        let mut observed = Vec::new();
        for acc in accs {
            match *acc {
                Acc::Read(a) => observed.push(mem[a]),
                Acc::Write(a) | Acc::ReadWrite(a) => {
                    mem[a] = mix(mem[a], *seed);
                }
            }
        }
        reads.push(observed);
    }
    (mem, reads)
}

/// Run the program on the runtime and compare against serial execution.
fn check(program: Vec<(Vec<Acc>, u64)>, deps_kind: DepsKind, workers: usize) {
    let (want_mem, want_reads) = serial(&program);
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .dependency_system(deps_kind)
            .workers(workers),
    );
    let mut mem = Box::new([0u64; ADDRS]);
    let observed: Arc<Vec<Vec<AtomicU64>>> = Arc::new(
        program
            .iter()
            .map(|(accs, _)| accs.iter().map(|_| AtomicU64::new(u64::MAX)).collect())
            .collect(),
    );
    {
        let base = SendPtr::new(mem.as_mut_ptr());
        let program = program.clone();
        let observed = Arc::clone(&observed);
        rt.run(move |ctx| {
            for (ti, (accs, seed)) in program.iter().enumerate() {
                let mut d = Deps::new();
                for acc in accs {
                    let addr = unsafe { base.add(acc.addr_idx()).addr() };
                    d = match acc {
                        Acc::Read(_) => d.read_addr(addr),
                        Acc::Write(_) => d.write_addr(addr),
                        Acc::ReadWrite(_) => d.readwrite_addr(addr),
                    };
                }
                let accs = accs.clone();
                let seed = *seed;
                let observed = Arc::clone(&observed);
                ctx.spawn(d, move |_| {
                    for (ai, acc) in accs.iter().enumerate() {
                        let p = unsafe { base.add(acc.addr_idx()).get() };
                        match acc {
                            Acc::Read(_) => {
                                observed[ti][ai].store(unsafe { *p }, Ordering::Relaxed);
                            }
                            Acc::Write(_) | Acc::ReadWrite(_) => unsafe {
                                *p = mix(*p, seed);
                            },
                        }
                    }
                });
            }
        });
    }
    assert_eq!(*mem, want_mem, "final memory differs from serial execution");
    for (ti, (accs, _)) in program.iter().enumerate() {
        let mut ri = 0;
        for (ai, acc) in accs.iter().enumerate() {
            if matches!(acc, Acc::Read(_)) {
                let got = observed[ti][ai].load(Ordering::Relaxed);
                let want = want_reads[ti][ri];
                assert_eq!(got, want, "task {ti} read access {ai} observed wrong value");
                ri += 1;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn waitfree_serially_equivalent(program in proptest::collection::vec(task_strategy(), 1..40)) {
        check(program, DepsKind::WaitFree, 3);
    }

    #[test]
    fn locking_serially_equivalent(program in proptest::collection::vec(task_strategy(), 1..40)) {
        check(program, DepsKind::Locking, 3);
    }

    #[test]
    fn reductions_fold_to_serial_total(
        seeds in proptest::collection::vec(1u64..100, 1..30),
        writers in proptest::collection::vec(any::<bool>(), 1..30),
    ) {
        // Random interleaving of sum-reductions and writers on one f64.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut acc = Box::new(0.0f64);
        // Serial expectation.
        let mut want = 0.0f64;
        let mut ops = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let is_writer = *writers.get(i % writers.len()).unwrap_or(&false);
            ops.push((seed, is_writer));
            if is_writer {
                want = want * 0.5 + seed as f64;
            } else {
                want += seed as f64;
            }
        }
        {
            let p = SendPtr::new(&mut *acc as *mut f64);
            rt.run(move |ctx| {
                for (seed, is_writer) in ops {
                    if is_writer {
                        ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                            *p.get() = *p.get() * 0.5 + seed as f64;
                        });
                    } else {
                        ctx.spawn(
                            Deps::new().reduce_addr(p.addr(), 8, RedOp::SumF64),
                            move |c| unsafe {
                                *c.red_slot(&*(p.addr() as *const f64)) += seed as f64;
                            },
                        );
                    }
                }
            });
        }
        prop_assert!((*acc - want).abs() < 1e-9, "got {} want {want}", *acc);
    }

    #[test]
    fn nested_children_respect_parent_chains(
        nchildren in 1usize..8,
        nsiblings in 2usize..6,
    ) {
        // Sibling inout chain where each sibling spawns children that
        // append to a shared log under the same address: the log must be
        // exactly ordered by (sibling, child) despite full parallelism.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut log: Box<Vec<(usize, usize)>> = Box::default();
        {
            let lp = SendPtr::new(&mut *log as *mut Vec<(usize, usize)>);
            rt.run(move |ctx| {
                for s in 0..nsiblings {
                    ctx.spawn(Deps::new().readwrite_addr(lp.addr()), move |inner| {
                        for c in 0..nchildren {
                            inner.spawn(
                                Deps::new().readwrite_addr(lp.addr()),
                                move |_| unsafe {
                                    (*lp.get()).push((s, c));
                                },
                            );
                        }
                    });
                }
            });
        }
        let want: Vec<(usize, usize)> = (0..nsiblings)
            .flat_map(|s| (0..nchildren).map(move |c| (s, c)))
            .collect();
        prop_assert_eq!(&*log, &want);
    }
}
