//! Chaos property tests for the fault-tolerance layer: for *random task
//! programs* under *random fault plans*, across schedulers × dependency
//! systems × (`run` | `run_iterative`), the runtime must
//!
//! 1. always terminate with balanced life-cycle accounting (no leaked
//!    tasks, no hung taskwait) no matter where a panic lands;
//! 2. cancel **exactly** the transitive successor closure of the failed
//!    task over blocking edges — no task more, no task fewer;
//! 3. behave identically to a plain runtime when the armed plan never
//!    fires (fault tolerance is semantically free).

use proptest::prelude::*;

use nanotask::{
    Deps, DepsKind, FAULT_PANIC_PREFIX, FaultPlan, RunIterative, Runtime, RuntimeConfig, SchedKind,
    SendPtr,
};
use nanotask_core::sched::{LockKind, WsVariant};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

const ADDRS: usize = 4;
const MAX_TASKS: usize = 20;

/// A random program: per task, 1–2 distinct address indices, accessed
/// write/readwrite-only so every shared address is a strict blocking
/// chain in spawn order (the successor relation is then exact and
/// computable without modelling reader concurrency).
fn program_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::vec(0usize..ADDRS, 1..3).prop_map(|mut a| {
            a.dedup();
            a
        }),
        2..MAX_TASKS,
    )
}

fn sched_for(ix: usize) -> SchedKind {
    match ix % 3 {
        0 => SchedKind::Delegation,
        1 => SchedKind::Central(LockKind::PtLock),
        _ => SchedKind::WorkSteal(WsVariant::LifoLocal),
    }
}

fn deps_for(ix: usize) -> DepsKind {
    if ix.is_multiple_of(2) {
        DepsKind::WaitFree
    } else {
        DepsKind::Locking
    }
}

/// Spawn `program` under `ctx`, setting bit `k` of `ran` when task `k`'s
/// body executes and panicking in task `victim` (if any).
fn spawn_program(
    ctx: &nanotask::TaskCtx,
    program: &[Vec<usize>],
    cells: SendPtr<u64>,
    ran: &Arc<AtomicU64>,
    victim: Option<usize>,
) {
    for (k, accs) in program.iter().enumerate() {
        let mut deps = Deps::new();
        for &a in accs {
            // SAFETY: a < ADDRS, in-bounds of the cells array.
            deps = deps.readwrite_addr(unsafe { cells.add(a) }.addr());
        }
        let ran = Arc::clone(ran);
        ctx.spawn(deps, move |_| {
            if victim == Some(k) {
                std::panic::panic_any(format!("{FAULT_PANIC_PREFIX}: chaos victim {k}"));
            }
            ran.fetch_or(1 << k, Ordering::Relaxed);
        });
    }
}

/// The exact transitive successor closure of `victim` over blocking
/// edges: each address is a spawn-ordered chain, a failed or cancelled
/// task poisons the next accessor of *every* address it declared, and
/// cancelled tasks keep forwarding (they still run the completion
/// protocol). Forward BFS over "next accessor per declared address".
fn successor_closure(program: &[Vec<usize>], victim: usize) -> u64 {
    let mut seen = vec![false; program.len()];
    seen[victim] = true;
    let mut stack = vec![victim];
    let mut mask = 0u64;
    while let Some(i) = stack.pop() {
        for &a in &program[i] {
            if let Some(j) = (i + 1..program.len()).find(|&j| program[j].contains(&a))
                && !seen[j]
            {
                seen[j] = true;
                mask |= 1 << j;
                stack.push(j);
            }
        }
    }
    mask
}

/// Run `program` on a fresh runtime, return (outcome, ran-mask, stats).
fn run_once(
    cfg: RuntimeConfig,
    program: Vec<Vec<usize>>,
    victim: Option<usize>,
) -> (nanotask::RunOutcome, u64, nanotask::RuntimeStats) {
    let rt = Runtime::new(cfg);
    let cells = Box::into_raw(vec![0u64; ADDRS].into_boxed_slice()) as *mut u64;
    let p = SendPtr::new(cells);
    let ran = Arc::new(AtomicU64::new(0));
    let ran2 = Arc::clone(&ran);
    let outcome = rt.run_outcome(move |ctx| {
        spawn_program(ctx, &program, SendPtr::new(p.get()), &ran2, victim);
    });
    assert_eq!(rt.live_tasks(), 0, "no leaked tasks");
    let stats = rt.stats();
    unsafe {
        drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
            cells, ADDRS,
        )));
    }
    (outcome, ran.load(Ordering::Acquire), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: random fault plans on random programs, across the
    /// scheduler × dependency-system × entry-point matrix, always
    /// terminate with balanced accounting — at most one recorded
    /// failure, zero live tasks, create/free counters equal.
    #[test]
    fn chaos_always_terminates(
        program in program_strategy(),
        combo in 0usize..6,
        workers in 1usize..4,
        fault_at in 0u64..(2 * MAX_TASKS as u64),
        in_worker in proptest::option::of(0usize..4),
        delay in 0u64..2,
        iterative in 0u8..2,
    ) {
        let mut plan = FaultPlan::panic_at(fault_at).with_delay_ns(delay * 500);
        if let Some(w) = in_worker {
            plan = plan.in_worker(w % workers);
        }
        let cfg = RuntimeConfig::optimized()
            .scheduler(sched_for(combo))
            .dependency_system(deps_for(combo))
            .workers(workers)
            .with_fault_plan(plan);
        let n = program.len() as u64;

        if iterative == 0 {
            let (outcome, _, stats) = run_once(cfg, program, None);
            prop_assert!(outcome.failures.len() <= 1, "{}", outcome.summary());
            prop_assert!(outcome.completed);
            prop_assert!(outcome.tasks_cancelled < n);
            prop_assert_eq!(stats.tasks_created, stats.tasks_freed);
        } else {
            let rt = Runtime::new(cfg);
            let cells = Box::into_raw(vec![0u64; ADDRS].into_boxed_slice()) as *mut u64;
            let p = SendPtr::new(cells);
            let ran = Arc::new(AtomicU64::new(0));
            const ITERS: usize = 3;
            let (report, outcome) = rt.run_iterative_outcome(ITERS, move |ctx| {
                spawn_program(ctx, &program, SendPtr::new(p.get()), &ran, None);
            });
            prop_assert_eq!(report.iterations, ITERS, "{}", report);
            prop_assert!(outcome.failures.len() <= 1, "{}", outcome.summary());
            prop_assert!(outcome.completed);
            prop_assert!(report.faulted <= 1, "{}", report);
            prop_assert_eq!(rt.live_tasks(), 0);
            let stats = rt.stats();
            prop_assert_eq!(stats.tasks_created, stats.tasks_freed);
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                    cells, ADDRS,
                )));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 2: a panic planted in a statically-chosen victim cancels
    /// exactly the victim's transitive successor closure over blocking
    /// edges — verified against an independent forward-BFS model, on
    /// both dependency systems.
    #[test]
    fn cancellation_is_exact_transitive_closure(
        program in program_strategy(),
        victim_ix in 0usize..MAX_TASKS,
        combo in 0usize..6,
        workers in 1usize..4,
    ) {
        let victim = victim_ix % program.len();
        let expected = successor_closure(&program, victim);
        let all: u64 = (1 << program.len()) - 1;

        let cfg = RuntimeConfig::optimized()
            .scheduler(sched_for(combo))
            .dependency_system(deps_for(combo))
            .workers(workers)
            // Never fires: installs the quiet hook for the planted panic.
            .with_fault_plan(FaultPlan::never());
        let (outcome, ran, stats) = run_once(cfg, program, Some(victim));

        prop_assert_eq!(outcome.failures.len(), 1, "{}", outcome.summary());
        prop_assert_eq!(
            outcome.tasks_cancelled,
            expected.count_ones() as u64,
            "cancelled count = |closure|; ran={:b} expected-cancelled={:b}",
            ran,
            expected
        );
        // Exactly the non-victim, non-closure tasks ran.
        prop_assert_eq!(ran, all & !expected & !(1 << victim));
        prop_assert!(outcome.completed);
        prop_assert_eq!(stats.tasks_created, stats.tasks_freed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 3: an armed-but-silent plan (plus injected busy-delay)
    /// changes nothing observable on a fault-free run — same ran set,
    /// same life-cycle counters, clean outcome.
    #[test]
    fn fault_free_runs_identical(
        program in program_strategy(),
        combo in 0usize..6,
        delay in 0u64..2,
    ) {
        let base = RuntimeConfig::optimized()
            .scheduler(sched_for(combo))
            .dependency_system(deps_for(combo))
            .workers(1);
        let armed = base
            .clone()
            .with_fault_plan(FaultPlan::never().with_seed(7).with_delay_ns(delay * 1000));

        let (o1, ran1, s1) = run_once(base, program.clone(), None);
        let (o2, ran2, s2) = run_once(armed, program, None);
        prop_assert!(o1.is_ok() && o2.is_ok());
        prop_assert_eq!(o1.tasks_cancelled, 0);
        prop_assert_eq!(o2.tasks_cancelled, 0);
        prop_assert_eq!(ran1, ran2);
        prop_assert_eq!(s1.tasks_created, s2.tasks_created);
        prop_assert_eq!(s1.tasks_executed, s2.tasks_executed);
        prop_assert_eq!(s1.tasks_freed, s2.tasks_freed);
    }
}
