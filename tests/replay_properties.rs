//! Property-based tests for the record & replay subsystem: for *random
//! task programs* run through `Runtime::run_iterative`,
//!
//! 1. the final memory must equal a serial execution of the program
//!    repeated once per iteration (serial equivalence, every iteration —
//!    including the replayed ones that bypass the dependency system);
//! 2. every replayed execution order must respect all recorded edges:
//!    for each `(a, b)` edge of the frozen graph, task `a` finishes
//!    before task `b` starts. Checked under all three scheduler kinds.

use proptest::prelude::*;

use nanotask::{Deps, RunIterative, Runtime, RuntimeConfig, SchedKind, SendPtr};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

const ADDRS: usize = 4;

/// One randomly-generated access.
#[derive(Debug, Clone, Copy)]
enum Acc {
    Read(usize),
    Write(usize),
    ReadWrite(usize),
}

impl Acc {
    fn addr_idx(&self) -> usize {
        match *self {
            Acc::Read(a) | Acc::Write(a) | Acc::ReadWrite(a) => a,
        }
    }
}

fn acc_strategy() -> impl Strategy<Value = Acc> {
    (0usize..ADDRS, 0u8..3).prop_map(|(a, m)| match m {
        0 => Acc::Read(a),
        1 => Acc::Write(a),
        _ => Acc::ReadWrite(a),
    })
}

/// A task: up to 2 accesses (distinct addresses) + a seed for its update.
fn task_strategy() -> impl Strategy<Value = (Vec<Acc>, u64)> {
    (proptest::collection::vec(acc_strategy(), 1..3), 1u64..1000).prop_map(|(mut accs, seed)| {
        accs.dedup_by_key(|a| a.addr_idx());
        (accs, seed)
    })
}

/// Deterministic update applied by writers.
fn mix(old: u64, seed: u64) -> u64 {
    old.wrapping_mul(6364136223846793005)
        .wrapping_add(seed)
        .rotate_left(13)
}

/// Serial execution of `iters` repetitions of the program.
fn serial(program: &[(Vec<Acc>, u64)], iters: usize) -> [u64; ADDRS] {
    let mut mem = [0u64; ADDRS];
    for _ in 0..iters {
        for (accs, seed) in program {
            for acc in accs {
                if let Acc::Write(a) | Acc::ReadWrite(a) = *acc {
                    mem[a] = mix(mem[a], *seed);
                }
            }
        }
    }
    mem
}

/// Run `iters` iterations via record & replay and check both properties.
fn check(program: Vec<(Vec<Acc>, u64)>, sched: SchedKind, iters: usize) {
    let n = program.len();
    let want = serial(&program, iters);
    let rt = Runtime::new(RuntimeConfig::optimized().scheduler(sched).workers(3));
    let mut mem = Box::new([0u64; ADDRS]);
    // Start/end stamps per task, drawn from one global logical clock;
    // overwritten each iteration, so after the run they describe the
    // final (replayed) iteration.
    let clock = Arc::new(AtomicU64::new(1));
    let stamps: Arc<Vec<(AtomicU64, AtomicU64)>> = Arc::new(
        (0..n)
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect(),
    );
    let report = {
        let base = SendPtr::new(mem.as_mut_ptr());
        let program = program.clone();
        let clock = Arc::clone(&clock);
        let stamps = Arc::clone(&stamps);
        rt.run_iterative(iters, move |ctx| {
            for (ti, (accs, seed)) in program.iter().enumerate() {
                let mut d = Deps::new();
                for acc in accs {
                    let addr = unsafe { base.add(acc.addr_idx()).addr() };
                    d = match acc {
                        Acc::Read(_) => d.read_addr(addr),
                        Acc::Write(_) => d.write_addr(addr),
                        Acc::ReadWrite(_) => d.readwrite_addr(addr),
                    };
                }
                let accs = accs.clone();
                let seed = *seed;
                let clock = Arc::clone(&clock);
                let stamps = Arc::clone(&stamps);
                ctx.spawn(d, move |_| {
                    stamps[ti]
                        .0
                        .store(clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                    for acc in &accs {
                        if let Acc::Write(a) | Acc::ReadWrite(a) = *acc {
                            let p = unsafe { base.add(a).get() };
                            unsafe { *p = mix(*p, seed) };
                        }
                    }
                    stamps[ti]
                        .1
                        .store(clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                });
            }
        })
    };
    assert_eq!(*mem, want, "final memory differs from serial x{iters}");
    assert_eq!(report.iterations, iters);
    assert_eq!(report.diverged, 0, "deterministic body must not diverge");
    assert_eq!(
        report.replayed,
        iters - 1,
        "all but the record iteration replay"
    );
    assert_eq!(report.tasks, n);
    // Edge order: every recorded edge (a, b) means a finished before b
    // started — in the final, replayed iteration.
    for &(a, b) in &report.edge_list {
        let end_a = stamps[a as usize].1.load(Ordering::Relaxed);
        let start_b = stamps[b as usize].0.load(Ordering::Relaxed);
        assert!(end_a > 0 && start_b > 0, "edge endpoints executed");
        assert!(
            end_a < start_b,
            "edge ({a}, {b}) violated: end[{a}]={end_a} >= start[{b}]={start_b} (sched {sched:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replay_respects_edges_delegation(program in proptest::collection::vec(task_strategy(), 1..30)) {
        check(program, SchedKind::Delegation, 4);
    }

    #[test]
    fn replay_respects_edges_central(program in proptest::collection::vec(task_strategy(), 1..30)) {
        check(program, SchedKind::Central(nanotask::runtime_core::sched::LockKind::PtLock), 4);
    }

    #[test]
    fn replay_respects_edges_worksteal(program in proptest::collection::vec(task_strategy(), 1..30)) {
        check(program, SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::LifoLocal), 4);
    }
}
