//! Tracing integration: real workloads with the CTF-lite backend on,
//! trace structure sanity, timeline reconstruction and the Figure 10/11
//! analyses on live data.

use nanotask::trace::noise::NoiseConfig;
use nanotask::trace::timeline::Timeline;
use nanotask::trace::{EventKind, ctf};
use nanotask::workloads::workload_by_name;
use nanotask::{Deps, Runtime, RuntimeConfig};
use std::time::Duration;

#[test]
fn workload_trace_is_well_formed() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(3).tracing(true));
    let mut w = workload_by_name("miniamr", 1).unwrap();
    w.run(&rt, w.block_sizes()[0]);
    w.verify().unwrap();
    let trace = rt.trace();
    let starts = trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::TaskStart)
        .count();
    let ends = trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::TaskEnd)
        .count();
    assert_eq!(starts, ends, "every started task ends");
    assert!(starts > 64, "miniAMR spawns many tasks, saw {starts}");
    // Creation happens only on the creator (root runs on worker 0).
    let creates = trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::CreateBegin)
        .collect::<Vec<_>>();
    assert!(!creates.is_empty());
    assert!(
        creates.iter().all(|e| e.core == 0),
        "single-creator pattern: all creations on core 0"
    );
}

#[test]
fn ctf_roundtrip_of_real_trace() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(2).tracing(true));
    rt.run(|ctx| {
        for _ in 0..100 {
            ctx.spawn(Deps::new(), |_| {});
        }
    });
    let trace = rt.trace();
    let mut buf = Vec::new();
    ctf::write_trace(&trace, &mut buf).unwrap();
    let back = ctf::read_trace(&mut buf.as_slice()).unwrap();
    assert_eq!(back, trace);
}

#[test]
fn delegation_trace_contains_serves_under_pressure() {
    // Several starving workers + a slow creator: the scheduler owner
    // must serve at least some tasks directly (Figure 10's upper trace).
    let rt = Runtime::new(RuntimeConfig::optimized().workers(4).tracing(true));
    rt.run(|ctx| {
        for _ in 0..5_000 {
            ctx.spawn(Deps::new(), |_| {
                std::hint::black_box((0..100u32).sum::<u32>());
            });
        }
    });
    let tl = Timeline::build(&rt.trace());
    let drained: u64 = tl.drains().iter().map(|&(_, n)| n).sum();
    assert!(drained > 0, "tasks must flow through the SPSC buffers");
}

#[test]
fn timeline_accounts_for_work() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(2).tracing(true));
    let mut w = workload_by_name("heat", 1).unwrap();
    w.run(&rt, 16);
    let tl = Timeline::build(&rt.trace());
    let total = tl.total_stats();
    assert!(total.tasks_run > 0);
    assert!(total.running_ns > 0);
    // The ASCII rendering covers every core.
    let art = tl.render_ascii(60);
    assert_eq!(art.lines().count(), tl.ncores() as usize);
}

#[test]
fn noise_injection_shows_up_in_workload_trace() {
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(2)
            .tracing(true)
            .with_noise(NoiseConfig {
                // Fire essentially immediately so even a fast CI run
                // crosses the first deadline.
                target_core: 0,
                period: Duration::from_micros(1),
                duration: Duration::from_micros(50),
                max_events: 4,
            }),
    );
    let mut w = workload_by_name("miniamr", 1).unwrap();
    w.run(&rt, w.block_sizes()[0]);
    w.verify().unwrap();
    let trace = rt.trace();
    let begins = trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::KernelInterruptBegin)
        .count();
    assert!(
        begins > 0,
        "synthetic interrupts should fire during the run"
    );
    let tl = Timeline::build(&trace);
    assert!(tl.core_stats(0).interrupted_ns > 0);
}

#[test]
fn disabled_tracing_costs_no_events() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(2)); // trace off
    rt.run(|ctx| {
        for _ in 0..100 {
            ctx.spawn(Deps::new(), |_| {});
        }
    });
    assert!(rt.trace().events().is_empty());
}
