//! Conformance suite of the **steady-state replay hot loop** (CSR
//! graphs + memcpy reset, word-folded signature hashing, the O(log n)
//! heap partitioner with eviction seeding, and inline-successor
//! routing):
//!
//! 1. **Differential**: for random task programs — including
//!    phase-alternating bodies that exercise the cache, divergence and
//!    re-record paths — the hot-loop engine and the retained PR 4
//!    reference path (`RuntimeConfig::replay_compat`) produce
//!    field-by-field identical [`ReplayReport`]s (hash *values* aside:
//!    the two paths hash with different functions, so cached-graph keys
//!    are compared by shape), identical memory (writers apply a
//!    non-commutative update, pinning every write order) and identical
//!    per-task execution counts — across the full
//!    {Delegation, Central, WorkSteal} × {WaitFree, Locking} matrix,
//!    with the fast path + partitioning on AND off.
//! 2. **Partitioner parity**: on randomized small graphs the heap
//!    partitioner produces the *same assignment* as the retained naive
//!    reference (exact cover + cut parity + identical placement), with
//!    zero frontier rescans.
//! 3. **Wide flat graphs**: first-replay partitioning of ≥ 4k
//!    independent tasks does zero full-frontier rescans and O(n log n)
//!    heap ops (counter-verified through the engine report), while the
//!    reference path pays one rescan per pick.
//! 4. **Eviction survival**: a phase cycle under cache pressure reuses
//!    ≥ 90 % of every evicted assignment on re-entry.

use proptest::prelude::*;

use nanotask::replay::{CapturedSpawn, Partitioning, ReplayGraph, ReplayReport};
use nanotask::runtime_core::sched::{LockKind, WsVariant};
use nanotask::{Deps, DepsKind, RunIterative, Runtime, RuntimeConfig, SchedKind, SendPtr};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

const ADDRS: usize = 4;

#[derive(Debug, Clone, Copy)]
enum Acc {
    Read(usize),
    Write(usize),
    ReadWrite(usize),
}

impl Acc {
    fn addr_idx(&self) -> usize {
        match *self {
            Acc::Read(a) | Acc::Write(a) | Acc::ReadWrite(a) => a,
        }
    }

    fn mode(&self) -> nanotask::runtime_core::AccessMode {
        use nanotask::runtime_core::AccessMode;
        match self {
            Acc::Read(_) => AccessMode::Read,
            Acc::Write(_) => AccessMode::Write,
            Acc::ReadWrite(_) => AccessMode::ReadWrite,
        }
    }
}

fn acc_strategy() -> impl Strategy<Value = Acc> {
    (0usize..ADDRS, 0u8..3).prop_map(|(a, m)| match m {
        0 => Acc::Read(a),
        1 => Acc::Write(a),
        _ => Acc::ReadWrite(a),
    })
}

type Program = Vec<(Vec<Acc>, u64)>;

fn task_strategy() -> impl Strategy<Value = (Vec<Acc>, u64)> {
    (proptest::collection::vec(acc_strategy(), 1..3), 1u64..1000).prop_map(|(mut accs, seed)| {
        accs.dedup_by_key(|a| a.addr_idx());
        (accs, seed)
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(task_strategy(), 1..12)
}

/// Deterministic, non-commutative writer update.
fn mix(old: u64, seed: u64) -> u64 {
    old.wrapping_mul(6364136223846793005)
        .wrapping_add(seed)
        .rotate_left(13)
}

/// Serial reference over a phase-alternating run: iteration `i` executes
/// program `phases[i % phases.len()]`.
fn serial(phases: &[Program], iters: usize) -> [u64; ADDRS] {
    let mut mem = [0u64; ADDRS];
    for i in 0..iters {
        for (accs, seed) in &phases[i % phases.len()] {
            for acc in accs {
                if let Acc::Write(a) | Acc::ReadWrite(a) = *acc {
                    mem[a] = mix(mem[a], *seed);
                }
            }
        }
    }
    mem
}

/// Freeze a program's shape into a [`ReplayGraph`] directly (decl-derived
/// edges, no runtime involved) — the partitioner's input.
fn freeze(p: &Program) -> ReplayGraph {
    let base = 0x1000usize;
    let captured: Vec<CapturedSpawn> = p
        .iter()
        .map(|(accs, _)| {
            CapturedSpawn::bare(
                "t",
                0,
                accs.iter()
                    .map(|a| {
                        nanotask::runtime_core::AccessDecl::new(
                            base + 8 * a.addr_idx(),
                            8,
                            a.mode(),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    ReplayGraph::build(&captured, &[])
}

/// Everything one engine run produced that the differential compares.
struct Outcome {
    report: ReplayReport,
    mem: [u64; ADDRS],
    runs: Vec<u64>,
}

/// Run a phase-alternating body (`phases[i % len]` at iteration `i`)
/// under one configuration and collect the outcome.
fn run_engine(
    phases: &[Program],
    iters: usize,
    sched: SchedKind,
    deps: DepsKind,
    knobs_on: bool,
    compat: bool,
) -> Outcome {
    let mut cfg = RuntimeConfig::optimized()
        .scheduler(sched)
        .dependency_system(deps)
        .workers(3)
        .with_replay_compat(compat);
    if knobs_on {
        cfg = cfg
            .with_numa_nodes(2)
            .with_replay_partitioning(true)
            .fast_path(true);
    }
    let rt = Runtime::new(cfg);
    let mut mem = Box::new([0u64; ADDRS]);
    let base = SendPtr::new(mem.as_mut_ptr());
    let n: usize = phases.iter().map(Vec::len).max().unwrap_or(0);
    let runs: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let iter_ix = Arc::new(AtomicU64::new(0));
    let report = {
        let phases = phases.to_vec();
        let runs = Arc::clone(&runs);
        rt.run_iterative(iters, move |ctx| {
            let i = iter_ix.fetch_add(1, Ordering::Relaxed) as usize;
            for (ti, (accs, seed)) in phases[i % phases.len()].iter().enumerate() {
                let mut d = Deps::new();
                for acc in accs {
                    let addr = unsafe { base.add(acc.addr_idx()).addr() };
                    d = match acc {
                        Acc::Read(_) => d.read_addr(addr),
                        Acc::Write(_) => d.write_addr(addr),
                        Acc::ReadWrite(_) => d.readwrite_addr(addr),
                    };
                }
                let accs = accs.clone();
                let seed = *seed;
                let runs = Arc::clone(&runs);
                ctx.spawn(d, move |_| {
                    runs[ti].fetch_add(1, Ordering::Relaxed);
                    for acc in &accs {
                        if let Acc::Write(a) | Acc::ReadWrite(a) = *acc {
                            let p = unsafe { base.add(a).get() };
                            unsafe { *p = mix(*p, seed) };
                        }
                    }
                });
            }
        })
    };
    assert_eq!(rt.live_tasks(), 0, "tasks leak under {sched:?}/{deps:?}");
    Outcome {
        report,
        mem: *mem,
        runs: runs.iter().map(|r| r.load(Ordering::Relaxed)).collect(),
    }
}

/// Field-by-field report equality between the hot loop and the PR 4
/// reference. Structural-hash *values* are excluded (the two paths hash
/// with different functions); cached-graph entries are compared by
/// (tasks, replays) shape instead. The partitioner implementation
/// counters (`frontier_rescans`/`heap_ops`/seed counters) are the
/// documented difference and are checked for *sidedness* instead.
fn assert_reports_equivalent(hot: &ReplayReport, pr4: &ReplayReport, what: &str) {
    hot.assert_classification();
    pr4.assert_classification();
    assert_eq!(hot.iterations, pr4.iterations, "{what}: iterations");
    assert_eq!(hot.replayed, pr4.replayed, "{what}: replayed");
    assert_eq!(hot.rerecords, pr4.rerecords, "{what}: rerecords");
    assert_eq!(hot.diverged, pr4.diverged, "{what}: diverged");
    assert_eq!(hot.tasks, pr4.tasks, "{what}: tasks");
    assert_eq!(hot.edges, pr4.edges, "{what}: edges");
    assert_eq!(hot.edge_list, pr4.edge_list, "{what}: edge_list");
    assert_eq!(hot.foreign_edges, pr4.foreign_edges, "{what}: foreign");
    assert_eq!(hot.cache_hits, pr4.cache_hits, "{what}: cache_hits");
    assert_eq!(hot.cache_misses, pr4.cache_misses, "{what}: cache_misses");
    assert_eq!(
        hot.cache_evictions, pr4.cache_evictions,
        "{what}: evictions"
    );
    assert_eq!(
        hot.pinned_iterations, pr4.pinned_iterations,
        "{what}: pinned"
    );
    assert_eq!(hot.giveups, pr4.giveups, "{what}: giveups");
    assert_eq!(hot.nested_spawns, pr4.nested_spawns, "{what}: nested");
    assert_eq!(
        hot.pinned_nested, pr4.pinned_nested,
        "{what}: pinned_nested"
    );
    let shape = |r: &ReplayReport| {
        r.per_graph_replays
            .iter()
            .map(|&(_, t, n)| (t, n))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(hot), shape(pr4), "{what}: per-graph replay shape");
    assert_eq!(hot.partitions, pr4.partitions, "{what}: partitions");
    assert_eq!(
        hot.routed_releases, pr4.routed_releases,
        "{what}: routed_releases"
    );
    assert_eq!(
        hot.partition_cut_edges, pr4.partition_cut_edges,
        "{what}: cut edges (heap and naive partitioner agree)"
    );
    // Sidedness of the implementation counters.
    assert_eq!(hot.frontier_rescans, 0, "{what}: hot never rescans");
    assert_eq!(pr4.heap_ops, 0, "{what}: reference never heaps");
    if hot.partitions > 0 && hot.tasks > 1 {
        assert!(hot.heap_ops > 0, "{what}: heap partitioner ran");
        assert!(pr4.frontier_rescans > 0, "{what}: naive partitioner ran");
    }
    assert_eq!(pr4.partition_seeds, 0, "{what}: reference never seeds");
}

const SCHEDS: [SchedKind; 3] = [
    SchedKind::Delegation,
    SchedKind::Central(LockKind::PtLock),
    SchedKind::WorkSteal(WsVariant::LifoLocal),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1: the hot loop is behaviorally identical to the PR 4
    /// reference on phase-alternating random bodies, across the
    /// scheduler × deps matrix, knobs on and off.
    #[test]
    fn hotloop_differentially_identical_to_pr4(
        a in program_strategy(),
        b in program_strategy(),
    ) {
        let phases = [a, b];
        let iters = 6;
        let want = serial(&phases, iters);
        for sched in SCHEDS {
            for deps in [DepsKind::WaitFree, DepsKind::Locking] {
                for knobs_on in [true, false] {
                    let what = format!("{sched:?}/{deps:?}/knobs={knobs_on}");
                    let hot = run_engine(&phases, iters, sched, deps, knobs_on, false);
                    let pr4 = run_engine(&phases, iters, sched, deps, knobs_on, true);
                    assert_reports_equivalent(&hot.report, &pr4.report, &what);
                    prop_assert_eq!(hot.mem, want, "hot memory differs ({})", &what);
                    prop_assert_eq!(pr4.mem, want, "pr4 memory differs ({})", &what);
                    prop_assert_eq!(&hot.runs, &pr4.runs, "run counts differ ({})", &what);
                }
            }
        }
    }

    /// Property 2: the heap partitioner and the retained naive reference
    /// place every node identically on randomized graphs (exact cover +
    /// cut parity are implied by full assignment equality, and asserted
    /// anyway).
    #[test]
    fn heap_partitioner_matches_naive_reference(p in program_strategy()) {
        let g = freeze(&p);
        for parts in 1..=4usize {
            let heap = Partitioning::compute(&g, parts);
            let naive = Partitioning::compute_naive(&g, parts);
            prop_assert_eq!(&heap, &naive, "assignment parity, parts={}", parts);
            prop_assert_eq!(heap.stats().frontier_rescans, 0);
            prop_assert_eq!(naive.stats().heap_ops, 0);
            // Exact cover.
            let mut counts = vec![0usize; heap.parts()];
            for i in 0..g.len() {
                prop_assert!(heap.node_of(i) < heap.parts());
                counts[heap.node_of(i)] += 1;
            }
            prop_assert_eq!(counts.iter().sum::<usize>(), g.len());
            // Cut parity against a recount.
            let recount = g
                .edge_pairs()
                .iter()
                .filter(|&&(x, y)| heap.node_of(x as usize) != heap.node_of(y as usize))
                .count();
            prop_assert_eq!(heap.cut_edges(), recount);
            prop_assert_eq!(naive.cut_edges(), recount);
        }
    }
}

/// Property 3: a wide flat graph (≥ 4k independent tasks) partitions on
/// first replay with zero full-frontier rescans and O(n log n) heap ops
/// — counter-verified end to end through the engine report. The
/// reference path pays one full-frontier rescan per pick on the same
/// body.
#[test]
fn wide_flat_graph_first_replay_has_zero_rescans() {
    const N: usize = 4096;
    let cells = Box::leak(vec![0u64; N].into_boxed_slice());
    let base = SendPtr::new(cells.as_mut_ptr());
    let run = |compat: bool| {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true)
                .with_replay_compat(compat),
        );
        rt.run_iterative(3, move |ctx| {
            for i in 0..N {
                let p = unsafe { base.add(i) };
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        })
    };
    let hot = run(false);
    assert_eq!(hot.tasks, N);
    assert_eq!(hot.replayed, 2);
    assert_eq!(hot.frontier_rescans, 0, "zero rescans on the hot path");
    let bound = 8 * (N as u64) * (usize::BITS - N.leading_zeros()) as u64;
    assert!(
        hot.heap_ops > 0 && hot.heap_ops <= bound,
        "heap ops {} within the O(n log n) bound {bound}",
        hot.heap_ops
    );
    let pr4 = run(true);
    assert_eq!(
        pr4.frontier_rescans, N as u64,
        "reference pays one full-frontier rescan per pick"
    );
    assert_eq!(pr4.heap_ops, 0);
    for (i, c) in cells.iter().enumerate() {
        assert_eq!(*c, 6, "cell {i} ran in all six iterations");
    }
    unsafe { drop(Box::from_raw(cells as *mut [u64])) };
}

/// Property 4: under cache pressure (period-3 phase cycle, 2-entry
/// cache) every evicted graph re-enters with its partitioning seeded
/// from the evicted assignment, reusing ≥ 90 % of it (100 % here — the
/// graphs re-enter unchanged).
#[test]
fn eviction_reentry_reuses_at_least_ninety_percent() {
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(2)
            .with_numa_nodes(2)
            .with_replay_partitioning(true)
            .with_replay_cache_size(2)
            .with_replay_giveup_after(0),
    );
    let slots = Box::leak(vec![0u64; 3].into_boxed_slice());
    let base = SendPtr::new(slots.as_mut_ptr());
    let iter = Arc::new(AtomicU64::new(0));
    let report = rt.run_iterative(15, move |ctx| {
        let i = iter.fetch_add(1, Ordering::Relaxed) as usize;
        let p = unsafe { base.add(i % 3) };
        for _ in 0..6 {
            ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                *p.get() += 1;
            });
        }
    });
    assert!(report.cache_evictions > 0, "{report:?}");
    assert!(report.partition_seeds > 0, "{report}");
    assert!(
        report.partition_seed_reused as f64 >= 0.9 * report.partition_seed_total as f64,
        "seed reuse below 90%: {report}"
    );
    report.assert_classification();
    unsafe { drop(Box::from_raw(slots as *mut [u64])) };
}
