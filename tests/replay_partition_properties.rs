//! Property suite for **NUMA-aware replay partitioning**: the graph
//! partitioner's structural invariants, and end-to-end conformance of
//! partition-routed replay across the scheduler × dependency-system
//! matrix.
//!
//! Checked properties:
//!
//! 1. **Exact cover** — the partitioner assigns every node of a frozen
//!    graph to exactly one partition in `0..parts`, and its per-part
//!    bookkeeping (task counts, weights) sums back to the whole graph;
//! 2. **Cut accounting** — the reported cut-edge count equals an
//!    independent recount over the graph's edge list;
//! 3. **Serial equivalence + exec exactly once** with partitioning *on*
//!    across {Delegation, Central, WorkSteal} × {WaitFree, Locking}:
//!    routing releases to other nodes' buffers must change *where* tasks
//!    run, never *what* runs or how often;
//! 4. **Off = PR 3 behavior** — with the knob off the engine's
//!    classification counters are identical to the partitioned run's
//!    (partitioning changes placement only), the node-targeted scheduler
//!    counters stay at zero, and the report carries no partition info.

use proptest::prelude::*;

use nanotask::replay::{CapturedSpawn, Partitioning, ReplayGraph};
use nanotask::runtime_core::sched::LockKind;
use nanotask::{Deps, DepsKind, RunIterative, Runtime, RuntimeConfig, SchedKind, SendPtr};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

const ADDRS: usize = 5;

/// One randomly-generated access of a synthetic task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Acc {
    Read(usize),
    Write(usize),
    ReadWrite(usize),
}

impl Acc {
    fn addr_idx(&self) -> usize {
        match *self {
            Acc::Read(a) | Acc::Write(a) | Acc::ReadWrite(a) => a,
        }
    }
}

fn acc_strategy() -> impl Strategy<Value = Acc> {
    (0usize..ADDRS, 0u8..3).prop_map(|(a, m)| match m {
        0 => Acc::Read(a),
        1 => Acc::Write(a),
        _ => Acc::ReadWrite(a),
    })
}

type Program = Vec<(Vec<Acc>, u64)>;

fn task_strategy() -> impl Strategy<Value = (Vec<Acc>, u64)> {
    (proptest::collection::vec(acc_strategy(), 1..3), 1u64..1000).prop_map(|(mut accs, seed)| {
        accs.dedup_by_key(|a| a.addr_idx());
        (accs, seed)
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(task_strategy(), 1..20)
}

/// Freeze a program's shape into a [`ReplayGraph`] directly (decl-derived
/// edges, no runtime involved) — the partitioner's input.
fn freeze(p: &Program) -> ReplayGraph {
    // A stable fake address base: the graph builder only compares
    // addresses for equality.
    let base = 0x1000usize;
    let captured: Vec<CapturedSpawn> = p
        .iter()
        .map(|(accs, _)| {
            CapturedSpawn::bare(
                "t",
                0,
                accs.iter()
                    .map(|a| {
                        let addr = base + 8 * a.addr_idx();
                        let mode = match a {
                            Acc::Read(_) => nanotask::runtime_core::AccessMode::Read,
                            Acc::Write(_) => nanotask::runtime_core::AccessMode::Write,
                            Acc::ReadWrite(_) => nanotask::runtime_core::AccessMode::ReadWrite,
                        };
                        nanotask::runtime_core::AccessDecl::new(addr, 8, mode)
                    })
                    .collect(),
            )
        })
        .collect();
    ReplayGraph::build(&captured, &[])
}

/// Deterministic update applied by writers.
fn mix(old: u64, seed: u64) -> u64 {
    old.wrapping_mul(6364136223846793005)
        .wrapping_add(seed)
        .rotate_left(13)
}

/// Serial execution of `iters` repetitions of the program.
fn serial(p: &Program, iters: usize) -> [u64; ADDRS] {
    let mut mem = [0u64; ADDRS];
    for _ in 0..iters {
        for (accs, seed) in p {
            for acc in accs {
                if let Acc::Write(x) | Acc::ReadWrite(x) = *acc {
                    mem[x] = mix(mem[x], *seed);
                }
            }
        }
    }
    mem
}

/// Spawn one iteration of the program, bumping per-task exec counters.
fn spawn_program(
    ctx: &nanotask::TaskCtx,
    program: &Program,
    base: SendPtr<u64>,
    execs: &Arc<Vec<AtomicU64>>,
) {
    for (ti, (accs, seed)) in program.iter().enumerate() {
        let mut d = Deps::new();
        for acc in accs {
            let addr = unsafe { base.add(acc.addr_idx()).addr() };
            d = match acc {
                Acc::Read(_) => d.read_addr(addr),
                Acc::Write(_) => d.write_addr(addr),
                Acc::ReadWrite(_) => d.readwrite_addr(addr),
            };
        }
        let accs = accs.clone();
        let seed = *seed;
        let execs = Arc::clone(execs);
        ctx.spawn(d, move |_| {
            execs[ti].fetch_add(1, Ordering::Relaxed);
            for acc in &accs {
                if let Acc::Write(x) | Acc::ReadWrite(x) = *acc {
                    let p = unsafe { base.add(x).get() };
                    unsafe { *p = mix(*p, seed) };
                }
            }
        });
    }
}

/// Run `iters` iterations with partitioning on and check conformance;
/// returns the report for cross-variant comparisons.
fn check_partitioned(
    p: &Program,
    sched: SchedKind,
    deps: DepsKind,
    iters: usize,
    partitioned: bool,
) -> (nanotask::ReplayReport, nanotask::RunReport) {
    let want = serial(p, iters);
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .scheduler(sched)
            .dependency_system(deps)
            .workers(4)
            .with_numa_nodes(2)
            .with_replay_partitioning(partitioned),
    );
    let mut mem = Box::new([0u64; ADDRS]);
    let execs: Arc<Vec<AtomicU64>> = Arc::new((0..p.len()).map(|_| AtomicU64::new(0)).collect());
    let report = {
        let base = SendPtr::new(mem.as_mut_ptr());
        let p = p.clone();
        let execs = Arc::clone(&execs);
        rt.run_iterative(iters, move |ctx| spawn_program(ctx, &p, base, &execs))
    };
    let label = format!("{sched:?}/{deps:?} partitioned={partitioned}");
    assert_eq!(*mem, want, "{label}: serial equivalence");
    for (ti, c) in execs.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            iters as u64,
            "{label}: task {ti} exactly once per iteration"
        );
    }
    report.assert_classification();
    assert_eq!(report.iterations, iters, "{label}");
    assert_eq!(report.rerecords, 1, "{label}: identical shape each iter");
    assert_eq!(report.replayed, iters - 1, "{label}");
    (report, rt.run_report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Partitioner structural invariants on random decl-derived graphs:
    /// exact cover + bookkeeping + cut recount, for 1..=4 parts.
    #[test]
    fn partitions_cover_exactly_and_count_cuts(p in program_strategy()) {
        let g = freeze(&p);
        for parts in 1..=4usize {
            let part = Partitioning::compute(&g, parts);
            // Exact cover of the node set.
            prop_assert_eq!(part.assignments().len(), g.len());
            let mut counts = vec![0usize; part.parts()];
            let mut weights = vec![0u64; part.parts()];
            for i in 0..g.len() {
                let n = part.node_of(i);
                prop_assert!(n < part.parts(), "assignment in range");
                counts[n] += 1;
                let w: u64 = g.decls_of(i).iter().map(|d| d.len as u64).sum();
                weights[n] += w.max(1);
            }
            for n in 0..part.parts() {
                prop_assert_eq!(counts[n], part.tasks_in(n), "task bookkeeping");
                prop_assert_eq!(weights[n], part.weight_of(n), "weight bookkeeping");
            }
            prop_assert_eq!(counts.iter().sum::<usize>(), g.len());
            // Cut recount over the edge list.
            let recount = g
                .edge_pairs()
                .iter()
                .filter(|&&(a, b)| part.node_of(a as usize) != part.node_of(b as usize))
                .count();
            prop_assert_eq!(part.cut_edges(), recount, "cut accounting");
        }
    }

    #[test]
    fn partitioned_replay_conforms_delegation_waitfree(p in program_strategy()) {
        check_partitioned(&p, SchedKind::Delegation, DepsKind::WaitFree, 6, true);
    }

    #[test]
    fn partitioned_replay_conforms_delegation_locking(p in program_strategy()) {
        check_partitioned(&p, SchedKind::Delegation, DepsKind::Locking, 6, true);
    }

    #[test]
    fn partitioned_replay_conforms_central_waitfree(p in program_strategy()) {
        check_partitioned(&p, SchedKind::Central(LockKind::PtLock), DepsKind::WaitFree, 6, true);
    }

    #[test]
    fn partitioned_replay_conforms_central_locking(p in program_strategy()) {
        check_partitioned(&p, SchedKind::Central(LockKind::PtLock), DepsKind::Locking, 6, true);
    }

    #[test]
    fn partitioned_replay_conforms_worksteal_waitfree(p in program_strategy()) {
        check_partitioned(
            &p,
            SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::LifoLocal),
            DepsKind::WaitFree,
            6,
            true,
        );
    }

    #[test]
    fn partitioned_replay_conforms_worksteal_locking(p in program_strategy()) {
        check_partitioned(
            &p,
            SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::LifoLocal),
            DepsKind::Locking,
            6,
            true,
        );
    }

    /// Partitioning must change *placement only*: the engine's
    /// classification counters are identical with the knob on and off,
    /// the off-run never touches the node-targeted scheduler path, and
    /// the on-run routes every replayed release.
    #[test]
    fn partitioning_off_is_pr3_behavior(p in program_strategy()) {
        let (on, on_rr) = check_partitioned(&p, SchedKind::Delegation, DepsKind::WaitFree, 6, true);
        let (off, off_rr) = check_partitioned(&p, SchedKind::Delegation, DepsKind::WaitFree, 6, false);
        // Same classification, shape and cache behavior.
        prop_assert_eq!(off.iterations, on.iterations);
        prop_assert_eq!(off.replayed, on.replayed);
        prop_assert_eq!(off.rerecords, on.rerecords);
        prop_assert_eq!(off.diverged, on.diverged);
        prop_assert_eq!(off.cache_hits, on.cache_hits);
        prop_assert_eq!(off.cache_misses, on.cache_misses);
        prop_assert_eq!(off.tasks, on.tasks);
        prop_assert_eq!(off.edges, on.edges);
        // Off: no partition info, no targeted scheduler traffic.
        prop_assert_eq!(off.partitions, 0);
        prop_assert_eq!(off.routed_releases, 0);
        prop_assert_eq!(off_rr.sched.targeted_batch_adds, 0);
        prop_assert_eq!(off_rr.sched.targeted_tasks, 0);
        // On: every replayed release routed, scheduler agrees.
        prop_assert_eq!(on.partitions, 2);
        let expected = (on.tasks * on.replayed) as u64;
        prop_assert_eq!(on.routed_releases, expected, "all replay releases routed");
        prop_assert_eq!(on_rr.sched.targeted_tasks, on.routed_releases);
        let targeted: u64 = on_rr.node_stats.iter().map(|n| n.targeted_tasks).sum();
        prop_assert_eq!(targeted, on.routed_releases, "per-node counters agree");
    }
}

/// The partitioned release path composes with the zero-queue fast path
/// and with priority scheduling — a deterministic spot-check outside the
/// proptest matrix.
#[test]
fn partitioning_composes_with_fast_path_and_priority() {
    for (fast, policy) in [
        (true, nanotask::runtime_core::sched::Policy::Fifo),
        (false, nanotask::runtime_core::sched::Policy::Priority),
        (true, nanotask::runtime_core::sched::Policy::Priority),
    ] {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true)
                .fast_path(fast)
                .with_policy(policy),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(5, move |ctx| {
            for i in 0..12 {
                ctx.spawn_prioritized(
                    "t",
                    i % 3,
                    Deps::new().readwrite_addr(p.addr()),
                    move |_| {
                        unsafe { *p.get() += 1 };
                    },
                );
            }
        });
        assert_eq!(unsafe { *data }, 60, "fast={fast} policy={policy:?}");
        report.assert_classification();
        assert_eq!(report.partitions, 2);
        assert!(report.routed_releases > 0);
        assert_eq!(rt.live_tasks(), 0);
        unsafe { drop(Box::from_raw(data)) };
    }
}

/// Reduction groups replay correctly when their members span partitions.
#[test]
fn partitioned_reductions_span_nodes_correctly() {
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(4)
            .with_numa_nodes(2)
            .with_replay_partitioning(true),
    );
    let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
    let pa = SendPtr::new(acc);
    let iters = 6u64;
    let members = 16u64;
    rt.run_iterative(iters as usize, move |ctx| {
        for i in 0..members {
            ctx.spawn(
                Deps::new().reduce_addr(pa.addr(), 8, nanotask::RedOp::SumF64),
                move |c| unsafe {
                    *c.red_slot(&*(pa.addr() as *const f64)) += (i + 1) as f64;
                },
            );
        }
        ctx.spawn(Deps::new().read_addr(pa.addr()), move |_| {});
    });
    let per_iter = (members * (members + 1) / 2) as f64;
    assert_eq!(unsafe { *acc }, per_iter * iters as f64);
    unsafe { drop(Box::from_raw(acc)) };
}
