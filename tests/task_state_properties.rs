//! Differential property tests for the packed task life-cycle word.
//!
//! `TaskState` packs the old `blockers` / `live_children` /
//! `removal_refs` triple into one atomic u64. These tests pit it
//! against a three-separate-counters reference model: any legal
//! interleaving of life-cycle operations must produce identical
//! ready / fully-done / reclaim decisions, and each decision must fire
//! exactly once. Debug builds must also panic on protocol violations
//! (field under/overflow) instead of silently borrowing across fields.

use nanotask::runtime_core::task::TaskState;
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// The pre-packing representation: three independent counters.
#[derive(Debug)]
struct RefState {
    blockers: u64,
    children: u64,
    removal: u64,
    fully_done: bool,
}

impl RefState {
    fn with_counts(blockers: u64, children: u64, removal: u64) -> Self {
        Self {
            blockers,
            children,
            removal,
            fully_done: false,
        }
    }

    fn unblock(&mut self) -> bool {
        self.blockers -= 1;
        self.blockers == 0
    }

    fn add_child(&mut self) {
        self.children += 1;
    }

    fn drop_child_ref(&mut self) -> bool {
        self.children -= 1;
        if self.children == 0 {
            self.fully_done = true;
            true
        } else {
            false
        }
    }

    fn drop_removal_ref(&mut self) -> bool {
        self.removal -= 1;
        self.removal == 0
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    Unblock,
    AddChild,
    DropChild,
    DropRemoval,
}

/// Turn an arbitrary byte string into a *legal* operation sequence for
/// a task with `blockers` initial blockers, `extra_children` add/drop
/// pairs on top of the body guard, and `removal` removal refs. At each
/// step the next byte selects among the currently-legal operations, so
/// every generated sequence respects the life-cycle protocol while the
/// interleaving across the three fields stays adversarial.
fn legalize(blockers: u64, extra_children: u64, removal: u64, choices: &[u8]) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut unblocks_left = blockers;
    let mut adds_left = extra_children;
    let mut children = 1u64; // the body guard
    let mut removals_left = removal;
    let mut i = 0usize;
    loop {
        let mut legal = Vec::new();
        if unblocks_left > 0 {
            legal.push(Op::Unblock);
        }
        // Adding requires a still-live subtree; dropping to zero is
        // final, so it is only legal once no adds remain stranded.
        if adds_left > 0 && children >= 1 {
            legal.push(Op::AddChild);
        }
        if children >= 1 && (children > 1 || adds_left == 0) {
            legal.push(Op::DropChild);
        }
        if removals_left > 0 {
            legal.push(Op::DropRemoval);
        }
        if legal.is_empty() {
            return ops;
        }
        let pick = legal[choices.get(i).copied().unwrap_or(0) as usize % legal.len()];
        i += 1;
        match pick {
            Op::Unblock => unblocks_left -= 1,
            Op::AddChild => {
                adds_left -= 1;
                children += 1;
            }
            Op::DropChild => children -= 1,
            Op::DropRemoval => removals_left -= 1,
        }
        ops.push(pick);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The packed word and the three-counter reference make identical
    /// decisions on every legal interleaving, and each terminal
    /// decision (ready, fully-done, reclaim) fires exactly once.
    #[test]
    fn packed_word_matches_three_counter_reference(
        blockers in 1u64..24,
        extra_children in 0u64..16,
        removal in 1u64..24,
        choices in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        let ops = legalize(blockers, extra_children, removal, &choices);
        let packed = TaskState::with_counts(blockers, 1, removal);
        let mut reference = RefState::with_counts(blockers, 1, removal);
        let (mut readies, mut dones, mut reclaims) = (0u32, 0u32, 0u32);
        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Unblock => {
                    let (p, r) = (packed.unblock(), reference.unblock());
                    prop_assert_eq!(p, r, "unblock diverged at step {}", step);
                    readies += u32::from(p);
                }
                Op::AddChild => {
                    packed.add_child();
                    reference.add_child();
                }
                Op::DropChild => {
                    let (p, r) = (packed.drop_child_ref(), reference.drop_child_ref());
                    prop_assert_eq!(p, r, "drop_child_ref diverged at step {}", step);
                    dones += u32::from(p);
                }
                Op::DropRemoval => {
                    let (p, r) = (packed.drop_removal_ref(), reference.drop_removal_ref());
                    prop_assert_eq!(p, r, "drop_removal_ref diverged at step {}", step);
                    reclaims += u32::from(p);
                }
            }
            prop_assert_eq!(
                packed.is_fully_done(),
                reference.fully_done,
                "fully-done flag diverged at step {}",
                step
            );
            prop_assert_eq!(packed.pending_children(), reference.children as usize);
        }
        // Every sequence drains every field exactly once.
        prop_assert_eq!((readies, dones, reclaims), (1, 1, 1));
        prop_assert!(packed.is_fully_done());
    }

    /// Held-task initialization is the (2, 1, 1) protocol state.
    #[test]
    fn held_and_registered_constructors_match_reference(n in 0usize..40) {
        let held = TaskState::new_held();
        prop_assert!(!held.unblock());
        prop_assert!(held.unblock());

        let reg = TaskState::new_registered(n);
        for _ in 0..n {
            prop_assert!(!reg.unblock());
        }
        prop_assert!(reg.unblock());
        for _ in 0..n {
            prop_assert!(!reg.drop_removal_ref());
        }
        prop_assert!(reg.drop_removal_ref());
    }
}

/// Concurrent decrements: exactly one thread observes each terminal
/// transition, and simultaneous traffic on *different* fields never
/// corrupts a neighbour (no carries across the packed boundaries).
#[test]
fn racing_decrements_have_exactly_one_winner_per_field() {
    const THREADS: u64 = 8;
    const ROUNDS: usize = 50;
    for _ in 0..ROUNDS {
        let state = Arc::new(TaskState::with_counts(THREADS, THREADS, THREADS));
        let ready = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        let reclaim = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (s, rd, dn, rc) = (
                    Arc::clone(&state),
                    Arc::clone(&ready),
                    Arc::clone(&done),
                    Arc::clone(&reclaim),
                );
                thread::spawn(move || {
                    rd.fetch_add(u64::from(s.unblock()), Ordering::Relaxed);
                    dn.fetch_add(u64::from(s.drop_child_ref()), Ordering::Relaxed);
                    rc.fetch_add(u64::from(s.drop_removal_ref()), Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ready.load(Ordering::Relaxed), 1, "exactly one ready winner");
        assert_eq!(
            done.load(Ordering::Relaxed),
            1,
            "exactly one fully-done winner"
        );
        assert_eq!(
            reclaim.load(Ordering::Relaxed),
            1,
            "exactly one reclaim winner"
        );
        assert!(state.is_fully_done());
        assert_eq!(state.pending_children(), 0);
    }
}

// Debug builds turn protocol violations into panics instead of letting
// a borrow silently corrupt the neighbouring field.
#[cfg(debug_assertions)]
mod debug_guards {
    use super::TaskState;

    #[test]
    #[should_panic(expected = "blockers underflow")]
    fn unblock_past_zero_panics() {
        let s = TaskState::with_counts(0, 1, 1);
        s.unblock();
    }

    #[test]
    #[should_panic(expected = "live_children underflow")]
    fn drop_child_past_zero_panics() {
        let s = TaskState::with_counts(1, 0, 1);
        s.drop_child_ref();
    }

    #[test]
    #[should_panic(expected = "removal_refs underflow")]
    fn drop_removal_past_zero_panics() {
        let s = TaskState::with_counts(1, 1, 0);
        s.drop_removal_ref();
    }

    #[test]
    #[should_panic(expected = "live_children overflow")]
    fn add_child_at_field_max_panics() {
        let s = TaskState::with_counts(0, TaskState::MAX_CHILDREN, 0);
        s.add_child();
    }

    #[test]
    #[should_panic(expected = "child added to a finished task")]
    fn add_child_after_fully_done_panics() {
        let s = TaskState::with_counts(0, 1, 1);
        assert!(s.drop_child_ref());
        s.add_child();
    }

    #[test]
    #[should_panic(expected = "blockers overflow")]
    fn with_counts_rejects_oversized_blockers() {
        let _ = TaskState::with_counts(TaskState::MAX_BLOCKERS + 1, 1, 1);
    }
}
