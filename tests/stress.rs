//! Stress tests: oversubscription, deep nesting, taskwait storms,
//! scheduler/allocator churn — the conditions the paper's fine-grained
//! evaluation puts the runtime under, checked for liveness and
//! conservation rather than timing.

use nanotask::runtime_core::sched::LockKind;
use nanotask::{Deps, Runtime, RuntimeConfig, SchedKind, SendPtr};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn ten_thousand_tiny_independent_tasks() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(4));
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    rt.run(move |ctx| {
        for _ in 0..10_000 {
            let c = Arc::clone(&c);
            ctx.spawn(Deps::new(), move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 10_000);
    assert_eq!(rt.live_tasks(), 0);
}

#[test]
fn long_dependency_chain_5000() {
    let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
    let x = Box::leak(Box::new(0u64)) as *mut u64;
    let p = SendPtr::new(x);
    rt.run(move |ctx| {
        for _ in 0..5_000 {
            ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                *p.get() += 1;
            });
        }
    });
    assert_eq!(unsafe { *x }, 5_000);
    unsafe { drop(Box::from_raw(x)) };
}

#[test]
fn deep_nesting_pyramid() {
    // Each level spawns a child that spawns a child... 200 levels deep,
    // each level taskwaiting on the next.
    fn descend(ctx: &nanotask::TaskCtx<'_>, level: usize, hits: Arc<AtomicU64>) {
        hits.fetch_add(1, Ordering::Relaxed);
        if level == 0 {
            return;
        }
        let h = Arc::clone(&hits);
        ctx.spawn(Deps::new(), move |inner| descend(inner, level - 1, h));
        ctx.taskwait();
    }
    let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
    let hits = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hits);
    rt.run(move |ctx| descend(ctx, 200, h));
    assert_eq!(hits.load(Ordering::Relaxed), 201);
}

#[test]
fn taskwait_storm() {
    // Many tasks each spawning + waiting on children repeatedly.
    let rt = Runtime::new(RuntimeConfig::optimized().workers(4));
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    rt.run(move |ctx| {
        for _ in 0..50 {
            let c = Arc::clone(&c);
            ctx.spawn(Deps::new(), move |inner| {
                for _ in 0..10 {
                    let c2 = Arc::clone(&c);
                    inner.spawn(Deps::new(), move |_| {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                    inner.taskwait();
                }
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 500);
}

#[test]
fn heavy_oversubscription_sixteen_workers() {
    // 16 workers on (likely) far fewer cores: yielding spin loops must
    // keep everything live.
    let rt = Runtime::new(RuntimeConfig::optimized().workers(16));
    let x = Box::leak(Box::new(0u64)) as *mut u64;
    let p = SendPtr::new(x);
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    rt.run(move |ctx| {
        for i in 0..2_000 {
            if i % 4 == 0 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            } else {
                let c = Arc::clone(&c);
                ctx.spawn(Deps::new().read_addr(p.addr()), move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
    });
    assert_eq!(unsafe { *x }, 500);
    assert_eq!(count.load(Ordering::Relaxed), 1_500);
    unsafe { drop(Box::from_raw(x)) };
}

#[test]
fn every_scheduler_survives_fine_grained_burst() {
    for kind in [
        SchedKind::Delegation,
        SchedKind::DelegationFlat,
        SchedKind::Central(LockKind::PtLock),
        SchedKind::Central(LockKind::Ticket),
        SchedKind::Central(LockKind::Mcs),
        SchedKind::Central(LockKind::Twa),
        SchedKind::Central(LockKind::Spin),
        SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::LifoLocal),
        SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::FifoLocal),
    ] {
        let rt = Runtime::new(RuntimeConfig::optimized().scheduler(kind).workers(4));
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        rt.run(move |ctx| {
            for _ in 0..3_000 {
                let c = Arc::clone(&c);
                ctx.spawn(Deps::new(), move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 3_000, "{kind:?}");
    }
}

#[test]
fn allocator_churn_no_leaks_all_kinds() {
    for cfg in [
        RuntimeConfig::optimized(),
        RuntimeConfig::without_jemalloc(),
    ] {
        let rt = Runtime::new(cfg.workers(4));
        let x = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(x);
        for _ in 0..5 {
            rt.run(move |ctx| {
                for _ in 0..1_000 {
                    ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                        *p.get() += 1;
                    });
                }
            });
        }
        assert_eq!(unsafe { *x }, 5_000);
        assert_eq!(rt.live_tasks(), 0);
        let s = rt.stats();
        // Outstanding allocator blocks == task shells parked in the
        // recycling slab; the recycled/fresh split proves the churn ran
        // through the slab. The first run is all fresh (the spawner
        // outpaces completion), the remaining four mostly recycle.
        assert_eq!(s.alloc.live, s.alloc.recycle_misses);
        assert!(
            s.alloc.recycle_rate() >= 0.75,
            "recycle rate {:.2} too low",
            s.alloc.recycle_rate()
        );
        unsafe { drop(Box::from_raw(x)) };
    }
}

#[test]
fn wide_fan_in_and_out() {
    // 1 writer → 500 readers → 1 writer, twice.
    let rt = Runtime::new(RuntimeConfig::optimized().workers(4));
    let x = Box::leak(Box::new(0u64)) as *mut u64;
    let p = SendPtr::new(x);
    let reads = Arc::new(AtomicU64::new(0));
    let r = Arc::clone(&reads);
    rt.run(move |ctx| {
        for round in 1..=2u64 {
            ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                *p.get() = round;
            });
            for _ in 0..500 {
                let r = Arc::clone(&r);
                ctx.spawn(Deps::new().read_addr(p.addr()), move |_| {
                    let v = unsafe { *p.get() };
                    r.fetch_add(v, Ordering::Relaxed);
                });
            }
        }
    });
    assert_eq!(reads.load(Ordering::Relaxed), 500 + 1000);
    unsafe { drop(Box::from_raw(x)) };
}
