//! Property-based tests for the **zero-queue fast path**
//! (immediate-successor inline execution + batched ready-task release +
//! pop cache, `RuntimeConfig::fast_path`): for random task programs run
//! with the fast path *enabled*, across the full
//! {Delegation, Central, WorkSteal} × {WaitFree, Locking} ×
//! {`run`, `run_iterative`} matrix,
//!
//! 1. no task is lost or run twice (per-task execution counters);
//! 2. the final memory equals a serial execution (writers apply a
//!    non-commutative update, so this alone pins every write order);
//! 3. dependency-edge order is respected: for every ordering edge
//!    `(a, b)` of the program's dependency graph — derived with the same
//!    group semantics both dependency systems implement, via
//!    `ReplayGraph::build` — task `a` finishes before task `b` starts.
//!    For `run_iterative` the engine's own recorded `edge_list` is
//!    checked as well (its final iteration replays with held-task
//!    releases deferred into inline/batch hand-offs).

use proptest::prelude::*;

use nanotask::replay::{CapturedSpawn, ReplayGraph};
use nanotask::runtime_core::sched::{LockKind, WsVariant};
use nanotask::{Deps, DepsKind, RunIterative, Runtime, RuntimeConfig, SchedKind, SendPtr};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

const ADDRS: usize = 4;

#[derive(Debug, Clone, Copy)]
enum Acc {
    Read(usize),
    Write(usize),
    ReadWrite(usize),
}

impl Acc {
    fn addr_idx(&self) -> usize {
        match *self {
            Acc::Read(a) | Acc::Write(a) | Acc::ReadWrite(a) => a,
        }
    }

    fn mode(&self) -> nanotask::runtime_core::AccessMode {
        use nanotask::runtime_core::AccessMode;
        match self {
            Acc::Read(_) => AccessMode::Read,
            Acc::Write(_) => AccessMode::Write,
            Acc::ReadWrite(_) => AccessMode::ReadWrite,
        }
    }
}

fn acc_strategy() -> impl Strategy<Value = Acc> {
    (0usize..ADDRS, 0u8..3).prop_map(|(a, m)| match m {
        0 => Acc::Read(a),
        1 => Acc::Write(a),
        _ => Acc::ReadWrite(a),
    })
}

fn task_strategy() -> impl Strategy<Value = (Vec<Acc>, u64)> {
    (proptest::collection::vec(acc_strategy(), 1..3), 1u64..1000).prop_map(|(mut accs, seed)| {
        accs.dedup_by_key(|a| a.addr_idx());
        (accs, seed)
    })
}

/// Deterministic, non-commutative writer update.
fn mix(old: u64, seed: u64) -> u64 {
    old.wrapping_mul(6364136223846793005)
        .wrapping_add(seed)
        .rotate_left(13)
}

fn serial(program: &[(Vec<Acc>, u64)], iters: usize) -> [u64; ADDRS] {
    let mut mem = [0u64; ADDRS];
    for _ in 0..iters {
        for (accs, seed) in program {
            for acc in accs {
                if let Acc::Write(a) | Acc::ReadWrite(a) = *acc {
                    mem[a] = mix(mem[a], *seed);
                }
            }
        }
    }
    mem
}

/// The program's ordering edges with real addresses `base[idx]`, derived
/// through the replay builder's group semantics (readers concurrent,
/// exclusive accesses serialized — what both dependency systems enforce).
fn expected_edges(program: &[(Vec<Acc>, u64)], base: SendPtr<u64>) -> Vec<(u32, u32)> {
    let captured: Vec<CapturedSpawn> = program
        .iter()
        .map(|(accs, _)| {
            CapturedSpawn::bare(
                "t",
                0,
                accs.iter()
                    .map(|acc| {
                        nanotask::runtime_core::AccessDecl::new(
                            unsafe { base.add(acc.addr_idx()).addr() },
                            8,
                            acc.mode(),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    ReplayGraph::build(&captured, &[]).edge_pairs()
}

struct Stamps {
    clock: Arc<AtomicU64>,
    per_task: Arc<Vec<(AtomicU64, AtomicU64, AtomicU64)>>, // (start, end, runs)
}

fn check_order(edges: &[(u32, u32)], stamps: &Stamps, what: &str, sched: SchedKind) {
    for &(a, b) in edges {
        let end_a = stamps.per_task[a as usize].1.load(Ordering::Relaxed);
        let start_b = stamps.per_task[b as usize].0.load(Ordering::Relaxed);
        assert!(end_a > 0 && start_b > 0, "{what}: edge endpoints executed");
        assert!(
            end_a < start_b,
            "{what}: edge ({a}, {b}) violated under {sched:?}: \
             end[{a}]={end_a} >= start[{b}]={start_b}"
        );
    }
}

/// Run the program on one (scheduler, deps) combo with the fast path on,
/// through `run` or `run_iterative`, and check all three properties.
fn check(program: &[(Vec<Acc>, u64)], sched: SchedKind, deps: DepsKind, iterative: bool) {
    let n = program.len();
    let iters = if iterative { 3 } else { 1 };
    let want = serial(program, iters);
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .scheduler(sched)
            .dependency_system(deps)
            .workers(3)
            .fast_path(true),
    );
    let mut mem = Box::new([0u64; ADDRS]);
    let base = SendPtr::new(mem.as_mut_ptr());
    let stamps = Stamps {
        clock: Arc::new(AtomicU64::new(1)),
        per_task: Arc::new(
            (0..n)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        ),
    };
    let body = {
        let program = program.to_vec();
        let clock = Arc::clone(&stamps.clock);
        let per_task = Arc::clone(&stamps.per_task);
        move |ctx: &nanotask::TaskCtx| {
            for (ti, (accs, seed)) in program.iter().enumerate() {
                let mut d = Deps::new();
                for acc in accs {
                    let addr = unsafe { base.add(acc.addr_idx()).addr() };
                    d = match acc {
                        Acc::Read(_) => d.read_addr(addr),
                        Acc::Write(_) => d.write_addr(addr),
                        Acc::ReadWrite(_) => d.readwrite_addr(addr),
                    };
                }
                let accs = accs.clone();
                let seed = *seed;
                let clock = Arc::clone(&clock);
                let per_task = Arc::clone(&per_task);
                ctx.spawn(d, move |_| {
                    per_task[ti]
                        .0
                        .store(clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                    per_task[ti].2.fetch_add(1, Ordering::Relaxed);
                    for acc in &accs {
                        if let Acc::Write(a) | Acc::ReadWrite(a) = *acc {
                            let p = unsafe { base.add(a).get() };
                            unsafe { *p = mix(*p, seed) };
                        }
                    }
                    per_task[ti]
                        .1
                        .store(clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                });
            }
        }
    };

    let what = if iterative { "run_iterative" } else { "run" };
    if iterative {
        let report = rt.run_iterative(iters, body);
        assert_eq!(report.iterations, iters, "{what} {sched:?} {deps:?}");
        assert_eq!(report.diverged, 0, "deterministic body must not diverge");
        // Edge order per the engine's own recorded graph (stamps describe
        // the final, replayed iteration).
        check_order(&report.edge_list, &stamps, what, sched);
    } else {
        rt.run(body);
    }

    assert_eq!(
        *mem, want,
        "{what} {sched:?} {deps:?}: memory differs from serial x{iters}"
    );
    for (ti, s) in stamps.per_task.iter().enumerate() {
        assert_eq!(
            s.2.load(Ordering::Relaxed),
            iters as u64,
            "{what} {sched:?} {deps:?}: task {ti} not run exactly once per iteration"
        );
    }
    // Edge order per the program's dependency graph (for run_iterative
    // this re-checks the final iteration against the derived graph).
    check_order(&expected_edges(program, base), &stamps, what, sched);
    assert_eq!(rt.live_tasks(), 0, "{what} {sched:?} {deps:?}: tasks leak");
}

const SCHEDS: [SchedKind; 3] = [
    SchedKind::Delegation,
    SchedKind::Central(LockKind::PtLock),
    SchedKind::WorkSteal(WsVariant::LifoLocal),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full matrix per generated program: 3 schedulers × 2 dependency
    /// systems × {run, run_iterative}, all with the fast path enabled.
    #[test]
    fn fast_path_preserves_order_and_runs_each_task_once(
        program in proptest::collection::vec(task_strategy(), 1..20)
    ) {
        for sched in SCHEDS {
            for deps in [DepsKind::WaitFree, DepsKind::Locking] {
                for iterative in [false, true] {
                    check(&program, sched, deps, iterative);
                }
            }
        }
    }
}
