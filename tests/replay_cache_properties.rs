//! Replay conformance suite for the multi-graph cache: property-based
//! tests over the scheduler × dependency-system matrix driving
//! *phase-alternating* and *randomly-perturbed* bodies through
//! `Runtime::run_iterative`, plus a differential oracle against plain
//! `run` and the nested-domain fallback regression test.
//!
//! Checked properties:
//!
//! 1. **Serial equivalence** — final memory equals a serial execution of
//!    the alternating program sequence (every iteration, including the
//!    ones replayed from the cache and the divergent cache-probe paths);
//! 2. **Exec exactly once** — each task of the active phase executes
//!    exactly once per iteration, never zero, never twice;
//! 3. **Report invariants** — `cache_hits + cache_misses +
//!    pinned_iterations == iterations`; after warmup on a 2-phase body
//!    re-records equal the number of distinct shapes and divergences
//!    stop growing;
//! 4. **Differential oracle** — `run_iterative` with the cache enabled
//!    produces bit-identical workload output to running the same body
//!    once per iteration through plain `run`, including
//!    partial-reduction carryover across divergence→cache-hit paths;
//! 5. **Nested-domain fallback** — a body whose tasks spawn nested
//!    children with cross-sibling dependencies is pinned to the
//!    dependency system (report counter): caught at record time when it
//!    nests from iteration 0, and at the end of the first
//!    nesting-observed iteration when nesting appears later.

use proptest::prelude::*;

use nanotask::runtime_core::sched::LockKind;
use nanotask::{
    Deps, DepsKind, ReplayReport, RunIterative, Runtime, RuntimeConfig, SchedKind, SendPtr,
};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

const ADDRS: usize = 4;

/// One randomly-generated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Acc {
    Read(usize),
    Write(usize),
    ReadWrite(usize),
}

impl Acc {
    fn addr_idx(&self) -> usize {
        match *self {
            Acc::Read(a) | Acc::Write(a) | Acc::ReadWrite(a) => a,
        }
    }
}

fn acc_strategy() -> impl Strategy<Value = Acc> {
    (0usize..ADDRS, 0u8..3).prop_map(|(a, m)| match m {
        0 => Acc::Read(a),
        1 => Acc::Write(a),
        _ => Acc::ReadWrite(a),
    })
}

type Program = Vec<(Vec<Acc>, u64)>;

/// A task: up to 2 accesses (distinct addresses) + a seed for its update.
fn task_strategy() -> impl Strategy<Value = (Vec<Acc>, u64)> {
    (proptest::collection::vec(acc_strategy(), 1..3), 1u64..1000).prop_map(|(mut accs, seed)| {
        accs.dedup_by_key(|a| a.addr_idx());
        (accs, seed)
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(task_strategy(), 1..16)
}

/// Deterministic update applied by writers.
fn mix(old: u64, seed: u64) -> u64 {
    old.wrapping_mul(6364136223846793005)
        .wrapping_add(seed)
        .rotate_left(13)
}

/// Serial execution of the alternating program sequence.
fn serial_alternating(a: &Program, b: &Program, iters: usize) -> [u64; ADDRS] {
    let mut mem = [0u64; ADDRS];
    for it in 0..iters {
        let p = if it.is_multiple_of(2) { a } else { b };
        for (accs, seed) in p {
            for acc in accs {
                if let Acc::Write(x) | Acc::ReadWrite(x) = *acc {
                    mem[x] = mix(mem[x], *seed);
                }
            }
        }
    }
    mem
}

/// Structural shape of a program, as the replay engine's signature hash
/// sees it (labels and priorities are constant here).
fn shape(p: &Program) -> Vec<Vec<Acc>> {
    p.iter().map(|(accs, _)| accs.clone()).collect()
}

/// Spawn one phase of the alternating body, bumping the per-task
/// execution counter of that phase.
fn spawn_program(
    ctx: &nanotask::TaskCtx,
    program: &Program,
    base: SendPtr<u64>,
    execs: &Arc<Vec<AtomicU64>>,
) {
    for (ti, (accs, seed)) in program.iter().enumerate() {
        let mut d = Deps::new();
        for acc in accs {
            let addr = unsafe { base.add(acc.addr_idx()).addr() };
            d = match acc {
                Acc::Read(_) => d.read_addr(addr),
                Acc::Write(_) => d.write_addr(addr),
                Acc::ReadWrite(_) => d.readwrite_addr(addr),
            };
        }
        let accs = accs.clone();
        let seed = *seed;
        let execs = Arc::clone(execs);
        ctx.spawn(d, move |_| {
            execs[ti].fetch_add(1, Ordering::Relaxed);
            for acc in &accs {
                if let Acc::Write(x) | Acc::ReadWrite(x) = *acc {
                    let p = unsafe { base.add(x).get() };
                    unsafe { *p = mix(*p, seed) };
                }
            }
        });
    }
}

/// Drive `iters` iterations of the A/B-alternating body and check serial
/// equivalence, exec-exactly-once and the report invariants.
fn check_alternating(a: Program, b: Program, sched: SchedKind, deps: DepsKind, iters: usize) {
    let want = serial_alternating(&a, &b, iters);
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .scheduler(sched)
            .dependency_system(deps)
            .workers(3),
    );
    let mut mem = Box::new([0u64; ADDRS]);
    let exec_a: Arc<Vec<AtomicU64>> = Arc::new((0..a.len()).map(|_| AtomicU64::new(0)).collect());
    let exec_b: Arc<Vec<AtomicU64>> = Arc::new((0..b.len()).map(|_| AtomicU64::new(0)).collect());
    let distinct = shape(&a) != shape(&b);
    let report = {
        let base = SendPtr::new(mem.as_mut_ptr());
        let (a, b) = (a.clone(), b.clone());
        let (exec_a, exec_b) = (Arc::clone(&exec_a), Arc::clone(&exec_b));
        let iter = AtomicU64::new(0);
        rt.run_iterative(iters, move |ctx| {
            let it = iter.fetch_add(1, Ordering::Relaxed);
            if it.is_multiple_of(2) {
                spawn_program(ctx, &a, base, &exec_a);
            } else {
                spawn_program(ctx, &b, base, &exec_b);
            }
        })
    };
    let label = format!("{sched:?}/{deps:?} distinct={distinct}");
    assert_eq!(*mem, want, "{label}: serial equivalence");
    let a_phases = iters.div_ceil(2) as u64;
    let b_phases = (iters / 2) as u64;
    for (ti, c) in exec_a.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            a_phases,
            "{label}: A task {ti} exactly once per A-phase"
        );
    }
    for (ti, c) in exec_b.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            b_phases,
            "{label}: B task {ti} exactly once per B-phase"
        );
    }
    check_report(&report, &label);
    assert_eq!(report.iterations, iters, "{label}");
    assert_eq!(report.pinned_iterations, 0, "{label}: no give-up expected");
    if distinct {
        // Warmup records each shape once; hysteresis must keep the
        // divergence count from growing with the iteration count.
        assert_eq!(report.rerecords, 2, "{label}: one record per shape");
        assert!(
            report.diverged <= 2,
            "{label}: divergences stop after warmup: {report:?}"
        );
        assert!(
            report.replayed >= iters - 3,
            "{label}: steady-state replay: {report:?}"
        );
    } else {
        assert_eq!(report.rerecords, 1, "{label}: identical shapes");
        assert_eq!(report.diverged, 0, "{label}");
        assert_eq!(report.replayed, iters - 1, "{label}");
    }
}

/// The per-iteration classification must be total and exclusive —
/// asserted centrally by `ReplayReport::assert_classification`; the
/// label-tagged pre-check keeps the matrix coordinates in the failure
/// message.
fn check_report(report: &ReplayReport, label: &str) {
    assert!(
        report.classification_ok(),
        "{label}: classification violated: {report}"
    );
    report.assert_classification();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn alternating_bodies_conform_delegation_waitfree(
        a in program_strategy(), b in program_strategy()
    ) {
        check_alternating(a, b, SchedKind::Delegation, DepsKind::WaitFree, 8);
    }

    #[test]
    fn alternating_bodies_conform_delegation_locking(
        a in program_strategy(), b in program_strategy()
    ) {
        check_alternating(a, b, SchedKind::Delegation, DepsKind::Locking, 8);
    }

    #[test]
    fn alternating_bodies_conform_central_waitfree(
        a in program_strategy(), b in program_strategy()
    ) {
        check_alternating(a, b, SchedKind::Central(LockKind::PtLock), DepsKind::WaitFree, 8);
    }

    #[test]
    fn alternating_bodies_conform_central_locking(
        a in program_strategy(), b in program_strategy()
    ) {
        check_alternating(a, b, SchedKind::Central(LockKind::PtLock), DepsKind::Locking, 8);
    }

    #[test]
    fn alternating_bodies_conform_worksteal_waitfree(
        a in program_strategy(), b in program_strategy()
    ) {
        check_alternating(
            a, b,
            SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::LifoLocal),
            DepsKind::WaitFree,
            8,
        );
    }

    #[test]
    fn alternating_bodies_conform_worksteal_locking(
        a in program_strategy(), b in program_strategy()
    ) {
        check_alternating(
            a, b,
            SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::LifoLocal),
            DepsKind::Locking,
            8,
        );
    }

    /// Shared-prefix perturbation: phase B is phase A with extra tasks
    /// appended, so the first-spawn switch probe cannot distinguish them
    /// and the divergence→cache-probe path plus the phase predictor
    /// carry steady-state replay.
    #[test]
    fn perturbed_suffix_bodies_conform(
        a in program_strategy(),
        extra in proptest::collection::vec(task_strategy(), 1..4)
    ) {
        let mut b = a.clone();
        b.extend(extra);
        check_alternating(a, b, SchedKind::Delegation, DepsKind::WaitFree, 8);
    }

    /// Differential oracle: `run_iterative` (cache enabled, alternating
    /// body, divergence→cache-probe path exercised) must produce
    /// bit-identical memory to running the same alternating body once
    /// per iteration through plain `run`.
    #[test]
    fn differential_oracle_matches_plain_run(
        a in program_strategy(), b in program_strategy()
    ) {
        const ITERS: usize = 6;
        // Reference: plain `run`, one call per iteration.
        let rt_ref = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut ref_mem = Box::new([0u64; ADDRS]);
        {
            let base = SendPtr::new(ref_mem.as_mut_ptr());
            let dummy: Arc<Vec<AtomicU64>> =
                Arc::new((0..a.len().max(b.len())).map(|_| AtomicU64::new(0)).collect());
            for it in 0..ITERS {
                let p = if it.is_multiple_of(2) { a.clone() } else { b.clone() };
                let d = Arc::clone(&dummy);
                rt_ref.run(move |ctx| spawn_program(ctx, &p, base, &d));
            }
        }
        // Subject: record & replay with the graph cache.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let mut mem = Box::new([0u64; ADDRS]);
        {
            let base = SendPtr::new(mem.as_mut_ptr());
            let dummy: Arc<Vec<AtomicU64>> =
                Arc::new((0..a.len().max(b.len())).map(|_| AtomicU64::new(0)).collect());
            let iter = AtomicU64::new(0);
            let (a, b) = (a.clone(), b.clone());
            rt.run_iterative(ITERS, move |ctx| {
                let it = iter.fetch_add(1, Ordering::Relaxed);
                let p = if it.is_multiple_of(2) { &a } else { &b };
                spawn_program(ctx, p, base, &dummy);
            });
        }
        prop_assert_eq!(*mem, *ref_mem, "replay cache output differs from plain run");
    }
}

/// Partial-reduction carryover across the divergence→cache-probe *hit*
/// path: the body alternates between a 4-member and a 2-member SumF64
/// group for many iterations, so after warmup every divergence resolves
/// as a cache hit — and the partially-fed group contributions must reach
/// the target on every single one of them.
#[test]
fn partial_reduction_carryover_on_cache_hits() {
    const ITERS: usize = 12;
    for sched in [
        SchedKind::Delegation,
        SchedKind::Central(LockKind::PtLock),
        SchedKind::WorkSteal(nanotask::runtime_core::sched::WsVariant::LifoLocal),
    ] {
        let rt = Runtime::new(RuntimeConfig::optimized().scheduler(sched).workers(3));
        let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
        let pa = SendPtr::new(acc);
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(ITERS, move |ctx| {
            let it = iter.fetch_add(1, Ordering::Relaxed);
            let members = if it.is_multiple_of(2) { 4 } else { 2 };
            for i in 0..members {
                ctx.spawn(
                    Deps::new().reduce_addr(pa.addr(), 8, nanotask::RedOp::SumF64),
                    move |c| unsafe {
                        *c.red_slot(&*(pa.addr() as *const f64)) += (i + 1) as f64;
                    },
                );
            }
            ctx.spawn(Deps::new().read_addr(pa.addr()), move |_| {});
        });
        // Even iterations contribute 1+2+3+4 = 10, odd ones 1+2 = 3.
        let want = (ITERS / 2) as f64 * 10.0 + (ITERS / 2) as f64 * 3.0;
        assert_eq!(unsafe { *acc }, want, "{sched:?}: reduction carryover");
        check_report(&report, &format!("{sched:?}"));
        assert_eq!(report.rerecords, 2, "{sched:?}: both shapes frozen once");
        assert!(
            report.replayed >= ITERS - 4,
            "{sched:?}: steady state reached: {report:?}"
        );
        unsafe { drop(Box::from_raw(acc)) };
    }
}

/// Regression: a body whose tasks spawn nested children with
/// cross-sibling dependencies (two root tasks' children conflict on one
/// address) must be pinned to the dependency system — the frozen graph
/// cannot order the children, so silently replaying it would race.
/// Before this PR `foreign_edges` was only a diagnostic.
#[test]
fn nested_children_with_cross_sibling_deps_are_pinned() {
    const ITERS: usize = 6;
    let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
    let shared = Box::leak(Box::new(0u64)) as *mut u64;
    let p = SendPtr::new(shared);
    let report = rt.run_iterative(ITERS, move |ctx| {
        // Two independent root tasks; each spawns a nested child that
        // read-modify-writes the same address. Only the (global)
        // dependency system serializes the children.
        for _ in 0..2 {
            ctx.spawn(Deps::new(), move |tc| {
                tc.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            });
        }
    });
    assert_eq!(unsafe { *shared }, 2 * ITERS as u64, "children all ran");
    assert!(
        report.pinned_nested,
        "nested domains must pin the body: {report:?}"
    );
    assert!(report.nested_spawns >= 2, "{report:?}");
    assert_eq!(report.replayed, 0, "never silently replayed");
    assert_eq!(report.rerecords, 1, "one record, then permanent fallback");
    assert_eq!(report.pinned_iterations, ITERS - 1);
    assert_eq!(report.giveups, 1);
    check_report(&report, "nested");
    unsafe { drop(Box::from_raw(shared)) };
}

/// The give-up policy interacts correctly with the conformance
/// properties: a never-repeating body stays correct while pinned and the
/// classification invariant holds throughout.
#[test]
fn giveup_keeps_serial_equivalence() {
    const ITERS: usize = 16;
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(3)
            .with_replay_giveup_after(2)
            .with_replay_recheck_every(3),
    );
    let slots = Box::leak(vec![0u64; ITERS].into_boxed_slice());
    let base = SendPtr::new(slots.as_mut_ptr());
    let iter = Arc::new(AtomicU64::new(0));
    let report = rt.run_iterative(ITERS, move |ctx| {
        let i = iter.fetch_add(1, Ordering::Relaxed) as usize;
        // A unique chain per iteration: never replays.
        let p = unsafe { base.add(i) };
        for _ in 0..3 {
            ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                *p.get() += 1;
            });
        }
    });
    for (i, s) in slots.iter().enumerate() {
        assert_eq!(*s, 3, "slot {i}");
    }
    assert_eq!(report.replayed, 0);
    assert!(report.giveups >= 1, "{report:?}");
    assert!(report.pinned_iterations > 0, "{report:?}");
    check_report(&report, "giveup");
    unsafe { drop(Box::from_raw(slots as *mut [u64])) };
}
