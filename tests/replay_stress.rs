//! Stress tests for `Runtime::run_iterative` across the full scheduler ×
//! dependency-system configuration matrix, plus the Priority-policy
//! determinism contract under replay feeding.

use nanotask::runtime_core::sched::{LockKind, Policy, WsVariant};
use nanotask::{Deps, RedOp, RunIterative, Runtime, RuntimeConfig, SchedKind, SendPtr};
use std::sync::{Arc, Mutex};

/// A mixed graph: an inout chain, a reader fan, a reduction group and
/// independent tasks — per iteration.
fn mixed_iteration(
    ctx: &nanotask::TaskCtx,
    chain: SendPtr<u64>,
    fan: SendPtr<u64>,
    acc: SendPtr<f64>,
) {
    for _ in 0..6 {
        ctx.spawn(Deps::new().readwrite_addr(chain.addr()), move |_| unsafe {
            *chain.get() += 1;
        });
    }
    ctx.spawn(Deps::new().write_addr(fan.addr()), move |_| unsafe {
        *fan.get() += 10;
    });
    for _ in 0..4 {
        ctx.spawn(Deps::new().read_addr(fan.addr()), move |_| {});
    }
    ctx.spawn(Deps::new().readwrite_addr(fan.addr()), move |_| unsafe {
        *fan.get() *= 2;
    });
    for i in 0..5u64 {
        ctx.spawn(
            Deps::new().reduce_addr(acc.addr(), 8, RedOp::SumF64),
            move |c| unsafe {
                *c.red_slot(&*(acc.addr() as *const f64)) += (i + 1) as f64;
            },
        );
    }
    ctx.spawn(Deps::new().read_addr(acc.addr()), move |_| {});
    for _ in 0..3 {
        ctx.spawn(Deps::new(), |_| {});
    }
}

#[test]
fn replay_stress_all_sched_and_deps_kinds() {
    let scheds = [
        SchedKind::Delegation,
        SchedKind::DelegationFlat,
        SchedKind::Central(LockKind::PtLock),
        SchedKind::WorkSteal(WsVariant::LifoLocal),
        SchedKind::WorkSteal(WsVariant::FifoLocal),
    ];
    let deps_kinds = [nanotask::DepsKind::WaitFree, nanotask::DepsKind::Locking];
    const ITERS: usize = 8;
    for sched in scheds {
        for deps in deps_kinds {
            let rt = Runtime::new(
                RuntimeConfig::optimized()
                    .scheduler(sched)
                    .dependency_system(deps)
                    .workers(4),
            );
            let chain = Box::leak(Box::new(0u64)) as *mut u64;
            let fan = Box::leak(Box::new(0u64)) as *mut u64;
            let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
            let (pc, pf, pa) = (SendPtr::new(chain), SendPtr::new(fan), SendPtr::new(acc));
            let report = rt.run_iterative(ITERS, move |ctx| {
                mixed_iteration(ctx, pc, pf, pa);
            });
            let label = format!("{sched:?}/{deps:?}");
            assert_eq!(unsafe { *chain }, 6 * ITERS as u64, "{label}: chain");
            // Per iteration: fan = (fan + 10) * 2.
            let mut want_fan = 0u64;
            for _ in 0..ITERS {
                want_fan = (want_fan + 10) * 2;
            }
            assert_eq!(unsafe { *fan }, want_fan, "{label}: fan");
            assert_eq!(unsafe { *acc }, (15 * ITERS) as f64, "{label}: reduction");
            assert_eq!(report.iterations, ITERS, "{label}");
            assert_eq!(report.replayed, ITERS - 1, "{label}: replays");
            assert_eq!(report.diverged, 0, "{label}");
            assert_eq!(rt.live_tasks(), 0, "{label}: reclamation");
            unsafe {
                drop(Box::from_raw(chain));
                drop(Box::from_raw(fan));
                drop(Box::from_raw(acc));
            }
        }
    }
}

/// Cache-stress matrix: a period-3 phase cycle (mixed graph / inout
/// chain / reduction fan) across scheduler kinds and graph-cache sizes,
/// including the deliberately *undersized* `replay_cache_size = 2` — the
/// cycle cannot fit, so the engine thrashes (evictions) or gives up
/// (pinned), and either way every phase must stay serially correct.
#[test]
fn replay_stress_alternating_phases_across_cache_sizes() {
    const ITERS: usize = 9;
    let scheds = [
        SchedKind::Delegation,
        SchedKind::Central(LockKind::PtLock),
        SchedKind::WorkSteal(WsVariant::LifoLocal),
    ];
    for sched in scheds {
        for deps in [nanotask::DepsKind::WaitFree, nanotask::DepsKind::Locking] {
            for cache in [1usize, 2, 4] {
                let rt = Runtime::new(
                    RuntimeConfig::optimized()
                        .scheduler(sched)
                        .dependency_system(deps)
                        .workers(4)
                        .with_replay_cache_size(cache),
                );
                let chain = Box::leak(Box::new(0u64)) as *mut u64;
                let fan = Box::leak(Box::new(0u64)) as *mut u64;
                let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
                let (pc, pf, pa) = (SendPtr::new(chain), SendPtr::new(fan), SendPtr::new(acc));
                let iter = Arc::new(std::sync::atomic::AtomicU64::new(0));
                let report = rt.run_iterative(ITERS, move |ctx| {
                    let it = iter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match it % 3 {
                        0 => mixed_iteration(ctx, pc, pf, pa),
                        1 => {
                            for _ in 0..6 {
                                ctx.spawn(Deps::new().readwrite_addr(pc.addr()), move |_| unsafe {
                                    *pc.get() += 1;
                                });
                            }
                        }
                        _ => {
                            for i in 0..5u64 {
                                ctx.spawn(
                                    Deps::new().reduce_addr(pa.addr(), 8, RedOp::SumF64),
                                    move |c| unsafe {
                                        *c.red_slot(&*(pa.addr() as *const f64)) += (i + 1) as f64;
                                    },
                                );
                            }
                            ctx.spawn(Deps::new().read_addr(pa.addr()), move |_| {});
                        }
                    }
                });
                let label = format!("{sched:?}/{deps:?}/cache={cache}");
                // 3 full cycles: chain gets 6 per phase-0 and phase-1
                // iteration; fan transforms on phase-0 only; the
                // reduction adds 15 on phase-0 and phase-2 iterations.
                assert_eq!(unsafe { *chain }, 6 * 6, "{label}: chain");
                let mut want_fan = 0u64;
                for _ in 0..3 {
                    want_fan = (want_fan + 10) * 2;
                }
                assert_eq!(unsafe { *fan }, want_fan, "{label}: fan");
                assert_eq!(unsafe { *acc }, (15 * 6) as f64, "{label}: reduction");
                assert_eq!(report.iterations, ITERS, "{label}");
                assert_eq!(
                    report.cache_hits + report.cache_misses + report.pinned_iterations,
                    report.iterations,
                    "{label}: classification invariant: {report:?}"
                );
                if cache >= 4 {
                    // The whole cycle fits: warmup records each of the 3
                    // shapes exactly once, then the predictor locks the
                    // cycle (the chain phase shares its first spawn with
                    // the mixed phase, which can cost one extra warmup
                    // divergence before prediction kicks in).
                    assert_eq!(report.rerecords, 3, "{label}: {report:?}");
                    assert!(report.replayed >= ITERS - 4, "{label}: {report:?}");
                    assert!(report.diverged <= 3, "{label}: {report:?}");
                    assert_eq!(report.pinned_iterations, 0, "{label}");
                } else if cache == 2 {
                    // Undersized: the cycle cannot stabilize.
                    assert!(
                        report.cache_evictions > 0 || report.pinned_iterations > 0,
                        "{label}: thrash or give up: {report:?}"
                    );
                }
                assert_eq!(rt.live_tasks(), 0, "{label}: reclamation");
                unsafe {
                    drop(Box::from_raw(chain));
                    drop(Box::from_raw(fan));
                    drop(Box::from_raw(acc));
                }
            }
        }
    }
}

#[test]
fn replay_feeding_is_deterministic_under_priority_policy() {
    // One worker + Priority policy: the replay engine releases all
    // ready tasks during enumeration (nothing executes until the root
    // task-waits), so the pop order must be priority-descending with
    // FIFO among equals — identical every iteration.
    const ITERS: usize = 5;
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(1)
            .with_policy(Policy::Priority),
    );
    let order: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
    let o = Arc::clone(&order);
    let prios = [1, 5, 3, 5, 2, 4, 5];
    let report = rt.run_iterative(ITERS, move |ctx| {
        for (k, &p) in prios.iter().enumerate() {
            let o = Arc::clone(&o);
            // Tag equal priorities with their spawn rank to observe ties.
            ctx.spawn_prioritized("p", p, Deps::new(), move |_| {
                o.lock().unwrap().push(p * 100 + k as i32);
            });
        }
    });
    assert_eq!(report.replayed, ITERS - 1);
    // 5s in spawn order (ranks 1, 3, 6), then 4, 3, 2, 1.
    let per_iter = vec![501, 503, 506, 405, 302, 204, 100];
    let want: Vec<i32> = (0..ITERS).flat_map(|_| per_iter.clone()).collect();
    assert_eq!(
        *order.lock().unwrap(),
        want,
        "priority ties must pop in spawn order"
    );
}

#[test]
fn replay_with_priority_policy_all_scheds_complete() {
    for sched in [
        SchedKind::Delegation,
        SchedKind::Central(LockKind::PtLock),
        SchedKind::WorkSteal(WsVariant::LifoLocal),
    ] {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .scheduler(sched)
                .workers(3)
                .with_policy(Policy::Priority),
        );
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c = Arc::clone(&count);
        rt.run_iterative(4, move |ctx| {
            for i in 0..50 {
                let c = Arc::clone(&c);
                ctx.spawn_prioritized("p", i % 7, Deps::new(), move |_| {
                    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            count.load(std::sync::atomic::Ordering::Relaxed),
            200,
            "{sched:?}"
        );
    }
}
