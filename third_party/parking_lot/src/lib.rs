//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the small API subset it actually uses — `Mutex`, `RwLock` and
//! `Condvar` with non-poisoning guards — implemented over `std::sync`.
//! Semantics match parking_lot where the workspace relies on them:
//! `lock()` never returns a poison error (a poisoned std lock is
//! recovered by taking the inner guard).

use std::sync;

/// A mutex whose `lock` is infallible (poisoning is swallowed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with infallible acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block on the condition variable, atomically releasing the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free std translation: replace the guard in place.
        take_guard(guard, |g| match self.0.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Replace a guard in place through a consuming function.
fn take_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // std's Condvar::wait consumes the guard; emulate in-place update.
    unsafe {
        let g = core::ptr::read(slot);
        let g = f(g);
        core::ptr::write(slot, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_contended() {
        let m = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
