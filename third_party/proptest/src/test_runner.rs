//! Test-run configuration, errors and the deterministic RNG.

use core::fmt;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Resolve the case count, honouring the `PROPTEST_CASES` env override.
pub fn effective_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
        .max(1)
}

/// Why a test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// The input was rejected (unused by this stand-in, kept for API shape).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// splitmix64: tiny, fast, full-period — plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seed deterministically from a test name (FNV-1a of the name).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero. Modulo
    /// bias is irrelevant at test-input quality.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("below");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn error_display() {
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
    }
}
