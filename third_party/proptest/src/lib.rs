//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the proptest API subset its tests use: the [`Strategy`] trait
//! (ranges, tuples, `prop_map`, [`Just`], weighted unions, vectors,
//! options, `any::<T>()`), the [`proptest!`] test macro with
//! `#![proptest_config(..)]` support, and `prop_assert!`/
//! `prop_assert_eq!`. Inputs are generated from a deterministic
//! per-test-name seed (splitmix64), so failures reproduce across runs.
//! **No shrinking** is performed: a failing case reports the case index
//! and panics with the assertion message.
//!
//! Set `PROPTEST_CASES` to override the number of cases per test.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Strategy producing arbitrary values of `T` (see [`strategy::Arbitrary`]).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

/// The `proptest!` test-definition macro.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn adds(a in 0u32..100, b in 0u32..100) {
///         prop_assert!(a + b >= a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __cases = $crate::test_runner::effective_cases(__config.cases);
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                // Evaluate each strategy expression exactly once.
                let ($($arg,)+) = ($($strat,)+);
                for __case in 0..__cases {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&$arg, &mut __rng),)+
                    );
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest case {}/{} of {} failed: {}",
                            __case + 1, __cases, stringify!($name), e
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert within a property; on failure the case fails with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(10usize..20), &mut rng);
            assert!((10..20).contains(&v));
            let b = crate::Strategy::generate(&(0u8..3), &mut rng);
            assert!(b < 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let s = crate::collection::vec(0u64..1000, 1..50);
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }

    #[test]
    fn map_and_oneof_compose() {
        let s = prop_oneof![
            3 => (0u32..10).prop_map(|v| v as u64),
            1 => Just(99u64),
        ];
        let mut rng = crate::TestRng::from_name("oneof");
        let mut saw_just = false;
        let mut saw_range = false;
        for _ in 0..200 {
            match crate::Strategy::generate(&s, &mut rng) {
                99 => saw_just = true,
                v if v < 10 => saw_range = true,
                v => panic!("out of range: {v}"),
            }
        }
        assert!(saw_just && saw_range);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0usize..5, b in any::<bool>(), v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(a < 5);
            let _: bool = b;
            prop_assert!(v.len() < 6);
            for x in v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn option_of_generates_both(o in crate::option::of(0u16..9)) {
            if let Some(v) = o {
                prop_assert!(v < 9);
            }
        }
    }
}
