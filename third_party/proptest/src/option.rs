//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<T>`: `None` one time in four.
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` values from `inner` (75%) or `None` (25%).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
