//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// Length specification for [`vec`]: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeRange(r)
    }
}

/// Strategy for `Vec<T>` with a length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    elem: S,
    len: SizeRange,
}

/// A vector of values from `elem`, with length from `len` (a `usize` or
/// a `Range<usize>`).
pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        len: len.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.0.end - self.len.0.start) as u64;
        let n = self.len.0.start + rng.below(span) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
