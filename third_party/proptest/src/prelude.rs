//! The usual `use proptest::prelude::*;` surface.

pub use crate::any;
pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
