//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::Range;

/// A recipe for generating values of one type from a [`TestRng`].
///
/// Object-safe (only [`Strategy::generate`] is required), so strategies
/// can be boxed for heterogeneous unions.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (needed by [`Union`] / `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returning a clone of one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy applying a function to another strategy's output.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of strategies over one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping")
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for [`Arbitrary`] types; construct via [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly uniform in [-1e6, 1e6] — good enough for the
        // numeric properties this workspace checks.
        (rng.below(2_000_000_001) as f64) / 1000.0 - 1e6
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.below(0xD800)) as u32).unwrap_or('a')
    }
}

macro_rules! strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

strategy_tuple!(A);
strategy_tuple!(A, B);
strategy_tuple!(A, B, C);
strategy_tuple!(A, B, C, D);
strategy_tuple!(A, B, C, D, E);
strategy_tuple!(A, B, C, D, E, F);
