//! Offline stand-in for the `criterion` crate.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the subset its benches use: [`Criterion::bench_function`]
//! with [`Bencher::iter`] / [`Bencher::iter_custom`], plus the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple calibrated loop (no statistics, no HTML reports): each bench
//! prints `name ... median-ish ns/iter` to stdout.
//!
//! Set `CRITERION_TARGET_MS` (default 50) to change per-bench measure
//! time, e.g. `CRITERION_TARGET_MS=5` for smoke runs.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Per-instance measurement time; `None` falls back to
    /// `CRITERION_TARGET_MS` (default 50 ms).
    target: Option<Duration>,
}

impl Criterion {
    /// Builder: number of samples (ignored — one calibrated sample).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Builder: how long to measure each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target = Some(d);
        self
    }

    /// Builder: warm-up time (ignored — calibration warms up).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // The env knob wins over the configured measurement time so CI
        // and manual smoke runs can cap bench duration.
        let target = env_target_duration()
            .or(self.target)
            .unwrap_or(Duration::from_millis(50));
        let mut b = Bencher {
            target,
            measured: Duration::ZERO,
            iters_done: 0,
        };
        f(&mut b);
        let per_iter = if b.iters_done > 0 {
            b.measured.as_nanos() as f64 / b.iters_done as f64
        } else {
            0.0
        };
        println!("bench: {:<60} {:>14.1} ns/iter", name.as_ref(), per_iter);
        self
    }
}

fn env_target_duration() -> Option<Duration> {
    std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|ms| Duration::from_millis(ms.max(1)))
}

/// Timing context passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    target: Duration,
    measured: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Time `f` over enough iterations to fill the target duration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up & calibration: find an iteration count that runs for
        // roughly the target duration, doubling from 1.
        let target = self.target;
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= target || n >= 1 << 30 {
                self.measured = dt;
                self.iters_done = n;
                return;
            }
            // Aim directly for the target based on the observed rate.
            let per = dt.as_nanos().max(1) as u64 / n.max(1);
            n = (target.as_nanos() as u64 / per.max(1)).clamp(n * 2, 1 << 30);
        }
    }

    /// Like `iter`, but the closure does its own timing over `iters`
    /// iterations and returns the elapsed time.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        let target = self.target;
        let mut n: u64 = 1;
        loop {
            let dt = f(n);
            if dt >= target || n >= 1 << 30 {
                self.measured = dt;
                self.iters_done = n;
                return;
            }
            let per = dt.as_nanos().max(1) as u64 / n.max(1);
            n = (target.as_nanos() as u64 / per.max(1)).clamp(n * 2, 1 << 30);
        }
    }
}

/// Group benchmark functions under one runner function. Supports both
/// the simple form and the `name/config/targets` struct form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($fun:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($fun(&mut c);)+
        }
    };
    ($name:ident, $($fun:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($fun(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_nonzero() {
        // Keep the test fast regardless of the env override.
        unsafe { std::env::set_var("CRITERION_TARGET_MS", "1") };
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut ran = 0u64;
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                ran += iters;
                let t0 = std::time::Instant::now();
                for _ in 0..iters {
                    black_box(());
                }
                t0.elapsed().max(std::time::Duration::from_millis(2))
            })
        });
        assert!(ran > 0);
    }
}
