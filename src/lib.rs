//! # nanotask
//!
//! A from-scratch Rust reproduction of *Advanced Synchronization
//! Techniques for Task-based Runtime Systems* (Álvarez, Sala, Maroñas,
//! Roca, Beltran — PPoPP 2021): a Nanos6/OmpSs-2-style task runtime
//! whose three synchronization-heavy components are each implemented in
//! both the paper's optimized form and the baseline it replaced:
//!
//! * **Dependency system** — wait-free Atomic State Machines
//!   (`nanotask_core::deps::wait_free`) vs fine-grained locking
//!   (`nanotask_core::deps::locking`);
//! * **Scheduler** — SPSC ready-buffers + Delegation Ticket Lock
//!   (`nanotask_core::sched::sync_sched`, [`locks::DtLock`]) vs a central
//!   PTLock-protected queue vs work-stealing;
//! * **Allocator** — per-thread pooled slabs ([`alloc::PoolAllocator`])
//!   vs a lock-serialized system allocator.
//!
//! This facade crate re-exports the whole workspace and hosts the
//! runnable examples and cross-crate integration tests.
//!
//! ```
//! use nanotask::{Runtime, RuntimeConfig, Deps, SendPtr};
//!
//! let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
//! let total = Box::leak(Box::new(0u64)) as *mut u64;
//! let p = SendPtr::new(total);
//! rt.run(move |ctx| {
//!     for _ in 0..8 {
//!         // inout-chained tasks: the runtime serializes them.
//!         ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
//!             *p.get() += 1;
//!         });
//!     }
//! });
//! assert_eq!(unsafe { *total }, 8);
//! ```

/// Pooled / system / serialized allocators (§4).
pub use nanotask_alloc as alloc;
/// The task runtime: dependencies, schedulers, workers (§2–3).
pub use nanotask_core as runtime_core;
/// Lock designs: Ticket, PTLock, MCS, TWA, DTLock (§3.2–3.3).
pub use nanotask_locks as locks;
/// Task-graph record & replay for iterative applications.
pub use nanotask_replay as replay;
/// Bounded wait-free SPSC queue (§3.1).
pub use nanotask_spsc as spsc;
/// CTF-lite tracing, timelines, OS-noise injection (§5).
pub use nanotask_trace as trace;
/// The §6.1 benchmark applications.
pub use nanotask_workloads as workloads;

pub use nanotask_core::{
    Deps, DepsKind, FAULT_PANIC_PREFIX, FailureKind, FaultPlan, Platform, RedOp, RunOutcome,
    RunReport, Runtime, RuntimeConfig, RuntimeStats, SchedKind, SchedOpStats, SendPtr, TaskCtx,
    TaskFailure,
};
pub use nanotask_replay::{ReplayReport, RunIterative};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_work() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(1));
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let d = std::sync::Arc::clone(&done);
        rt.run(move |_| d.store(true, std::sync::atomic::Ordering::SeqCst));
        assert!(done.load(std::sync::atomic::Ordering::SeqCst));
    }
}
