//! Dependency-system microbenchmarks (§2): registration + release
//! throughput of the wait-free ASM system vs the fine-grained-locking
//! baseline, on the paper's canonical patterns (chains, fan-in readers).

use criterion::{Criterion, criterion_group, criterion_main};
use nanotask_core::{Deps, Runtime, RuntimeConfig};
use std::time::Instant;

fn chain(c: &mut Criterion, cfg_name: &str, cfg: fn() -> RuntimeConfig) {
    c.bench_function(format!("deps/{cfg_name}/chain1000"), |b| {
        let rt = Runtime::new(cfg().workers(2));
        let x = Box::leak(Box::new(0u64)) as *mut u64;
        let p = nanotask_core::SendPtr::new(x);
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters.max(1) {
                rt.run(move |ctx| {
                    for _ in 0..1000 {
                        ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| {});
                    }
                });
            }
            t0.elapsed()
        });
    });
    c.bench_function(format!("deps/{cfg_name}/fan_readers"), |b| {
        let rt = Runtime::new(cfg().workers(2));
        let x = Box::leak(Box::new(0u64)) as *mut u64;
        let p = nanotask_core::SendPtr::new(x);
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters.max(1) {
                rt.run(move |ctx| {
                    for i in 0..1000 {
                        if i % 100 == 0 {
                            ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| {});
                        } else {
                            ctx.spawn(Deps::new().read_addr(p.addr()), move |_| {});
                        }
                    }
                });
            }
            t0.elapsed()
        });
    });
    c.bench_function(format!("deps/{cfg_name}/independent"), |b| {
        let rt = Runtime::new(cfg().workers(2));
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters.max(1) {
                rt.run(|ctx| {
                    for _ in 0..1000 {
                        ctx.spawn(Deps::new(), |_| {});
                    }
                });
            }
            t0.elapsed()
        });
    });
}

fn bench(c: &mut Criterion) {
    chain(c, "waitfree", RuntimeConfig::optimized);
    chain(c, "locking", RuntimeConfig::without_waitfree_deps);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
