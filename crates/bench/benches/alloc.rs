//! Allocator study (§4): pooled vs system vs lock-serialized allocation
//! on task-shaped lifetimes (small short-lived objects, cross-thread
//! churn) — the "w/o jemalloc" ablation in microcosm.

use core::alloc::Layout;
use criterion::{Criterion, criterion_group, criterion_main};
use nanotask_alloc::{AllocatorKind, make_allocator};
use std::sync::Arc;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let layout = Layout::from_size_align(192, 8).unwrap(); // ≈ task object
    for kind in [
        AllocatorKind::Pool,
        AllocatorKind::System,
        AllocatorKind::Serialized,
    ] {
        c.bench_function(format!("alloc/single/{kind:?}"), |b| {
            let a = make_allocator(kind, 4);
            b.iter(|| {
                let p = a.alloc(layout);
                std::hint::black_box(p);
                unsafe { a.dealloc(p, layout) };
            });
        });
        c.bench_function(format!("alloc/churn4/{kind:?}"), |b| {
            b.iter_custom(|iters| {
                let a = make_allocator(kind, 4);
                let per = (iters as usize).max(1) * 100;
                let t0 = Instant::now();
                let hs: Vec<_> = (0..4)
                    .map(|_| {
                        let a = Arc::clone(&a);
                        std::thread::spawn(move || {
                            let mut held = Vec::with_capacity(32);
                            for i in 0..per {
                                held.push(a.alloc(layout));
                                if i % 2 == 0
                                    && let Some(p) = held.pop()
                                {
                                    unsafe { a.dealloc(p, layout) };
                                }
                                if held.len() >= 32 {
                                    for p in held.drain(..) {
                                        unsafe { a.dealloc(p, layout) };
                                    }
                                }
                            }
                            for p in held {
                                unsafe { a.dealloc(p, layout) };
                            }
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
                t0.elapsed()
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
