//! SPSC ready-buffer microbenchmarks (§3.1): single-element push/pop and
//! the `consume_all` batch drain of Listing 5.

use criterion::{Criterion, criterion_group, criterion_main};
use std::time::Instant;

fn bench(c: &mut Criterion) {
    c.bench_function("spsc/push_pop", |b| {
        let (p, mut cons) = nanotask_spsc::channel::<u64>(1024);
        b.iter(|| {
            p.push(7).unwrap();
            std::hint::black_box(cons.pop().unwrap());
        });
    });
    c.bench_function("spsc/batch_drain_100", |b| {
        let (p, mut cons) = nanotask_spsc::channel::<u64>(128);
        b.iter(|| {
            for i in 0..100 {
                p.push(i).unwrap();
            }
            let mut sum = 0;
            cons.consume_all(|v| sum += v);
            std::hint::black_box(sum)
        });
    });
    c.bench_function("spsc/cross_thread_1M", |b| {
        b.iter_custom(|iters| {
            let count = (iters as usize).max(1) * 1000;
            let (p, mut cons) = nanotask_spsc::channel::<usize>(1024);
            let t0 = Instant::now();
            let h = std::thread::spawn(move || {
                for i in 0..count {
                    let mut v = i;
                    while let Err(back) = p.push(v) {
                        v = back;
                        std::hint::spin_loop();
                    }
                }
            });
            let mut got = 0;
            while got < count {
                got += cons.consume_all(|_| {});
            }
            h.join().unwrap();
            t0.elapsed()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
