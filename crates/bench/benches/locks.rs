//! Lock design study (§3.2): Ticket vs PTLock vs MCS vs TWA vs DTLock
//! under no contention and under contention. The paper's claim: "PTLocks
//! perform as well as more complex designs such as MCS or TWA"; ticket
//! locks degrade under high load.

use criterion::{Criterion, criterion_group, criterion_main};
use nanotask_locks::{DtLock, McsLock, PtLock, RawLock, SpinLock, TicketLock, TwaLock};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn uncontended<L: RawLock + 'static>(c: &mut Criterion, name: &str) {
    c.bench_function(format!("locks/uncontended/{name}"), |b| {
        let l = L::default();
        b.iter(|| {
            l.lock();
            std::hint::black_box(());
            l.unlock();
        });
    });
}

fn contended<L: RawLock + 'static>(c: &mut Criterion, name: &str, threads: usize) {
    c.bench_function(format!("locks/contended{threads}/{name}"), |b| {
        b.iter_custom(|iters| {
            let l = Arc::new(L::default());
            let counter = Arc::new(AtomicU64::new(0));
            let per = (iters as usize / threads).max(1);
            let t0 = Instant::now();
            let hs: Vec<_> = (0..threads)
                .map(|_| {
                    let l = Arc::clone(&l);
                    let counter = Arc::clone(&counter);
                    std::thread::spawn(move || {
                        for _ in 0..per {
                            l.lock();
                            counter.fetch_add(1, Ordering::Relaxed);
                            l.unlock();
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            t0.elapsed()
        });
    });
}

fn bench(c: &mut Criterion) {
    uncontended::<SpinLock>(c, "spin");
    uncontended::<TicketLock>(c, "ticket");
    uncontended::<PtLock<64>>(c, "ptlock");
    uncontended::<McsLock>(c, "mcs");
    uncontended::<TwaLock>(c, "twa");
    uncontended::<DtLock<u64, 64>>(c, "dtlock");
    let threads = 4;
    contended::<SpinLock>(c, "spin", threads);
    contended::<TicketLock>(c, "ticket", threads);
    contended::<PtLock<64>>(c, "ptlock", threads);
    contended::<McsLock>(c, "mcs", threads);
    contended::<TwaLock>(c, "twa", threads);
    contended::<DtLock<u64, 64>>(c, "dtlock", threads);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
