//! Scheduler microbenchmark backing the §3.4 claim (DTLock ≈ 4× a
//! PTLock-protected scheduler; SPSC buffering ≈ 12× serial insertion).

use criterion::{Criterion, criterion_group, criterion_main};
use nanotask_core::sched::{LockKind, Policy, SchedKind, TaskPtr, make_scheduler};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

fn throughput(c: &mut Criterion, name: &str, kind: SchedKind) {
    c.bench_function(format!("sched/{name}/prod1_cons3"), |b| {
        b.iter_custom(|iters| {
            let tasks = (iters as usize).max(1) * 100;
            let sched = make_scheduler(kind, 4, 1, Policy::Fifo, 100, 0, None);
            let stop = Arc::new(AtomicBool::new(false));
            let consumers: Vec<_> = (1..4)
                .map(|w| {
                    let sched = Arc::clone(&sched);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            if sched.get_ready(w, None).is_none() {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            let t0 = Instant::now();
            for i in 0..tasks {
                sched.add_ready(TaskPtr(((i + 1) << 4) as *mut _), 0, None);
            }
            while sched.approx_len() > 0 {
                std::thread::yield_now();
            }
            let dt = t0.elapsed();
            stop.store(true, Ordering::Relaxed);
            for h in consumers {
                h.join().unwrap();
            }
            dt
        });
    });
}

fn bench(c: &mut Criterion) {
    throughput(c, "delegation", SchedKind::Delegation);
    throughput(c, "central_ptlock", SchedKind::Central(LockKind::PtLock));
    throughput(c, "central_ticket", SchedKind::Central(LockKind::Ticket));
    throughput(
        c,
        "worksteal",
        SchedKind::WorkSteal(nanotask_core::sched::WsVariant::LifoLocal),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
