//! Scheduler microbenchmark backing the §3.4 claim (DTLock ≈ 4× a
//! PTLock-protected scheduler; SPSC buffering ≈ 12× serial insertion),
//! plus the task-allocation path the scheduler feeds: a `TaskSlab`
//! recycle round-trip against the raw pool alloc/dealloc round-trip it
//! replaces on the steady-state spawn path.

use core::alloc::Layout;
use criterion::{Criterion, criterion_group, criterion_main};
use nanotask_alloc::{AllocatorKind, TaskSlab, make_allocator};
use nanotask_core::sched::{LockKind, Policy, SchedKind, TaskPtr, make_scheduler};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

fn throughput(c: &mut Criterion, name: &str, kind: SchedKind) {
    c.bench_function(format!("sched/{name}/prod1_cons3"), |b| {
        b.iter_custom(|iters| {
            let tasks = (iters as usize).max(1) * 100;
            let sched = make_scheduler(kind, 4, 1, Policy::Fifo, 100, 0, None);
            let stop = Arc::new(AtomicBool::new(false));
            let consumers: Vec<_> = (1..4)
                .map(|w| {
                    let sched = Arc::clone(&sched);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            if sched.get_ready(w, None).is_none() {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            let t0 = Instant::now();
            for i in 0..tasks {
                sched.add_ready(TaskPtr(((i + 1) << 4) as *mut _), 0, None);
            }
            while sched.approx_len() > 0 {
                std::thread::yield_now();
            }
            let dt = t0.elapsed();
            stop.store(true, Ordering::Relaxed);
            for h in consumers {
                h.join().unwrap();
            }
            dt
        });
    });
}

/// Task-object allocation on the spawn path: a slab recycle hit vs the
/// pool alloc/dealloc round-trip it replaces. Regressions here show up
/// without running the full fig18 harness.
fn task_alloc(c: &mut Criterion) {
    let layout = Layout::from_size_align(192, 8).unwrap(); // ≈ task object
    c.bench_function("sched/task_alloc/pool_roundtrip", |b| {
        let a = make_allocator(AllocatorKind::Pool, 4);
        b.iter(|| {
            let p = a.alloc(layout);
            std::hint::black_box(p);
            unsafe { a.dealloc(p, layout) };
        });
    });
    c.bench_function("sched/task_alloc/slab_recycle", |b| {
        unsafe fn drop_noop(_p: *mut u8) {}
        let slab = TaskSlab::new(layout, make_allocator(AllocatorKind::Pool, 4), 4, drop_noop);
        // Prime one shell so every measured round-trip is a recycle hit
        // (the steady state of a replayed graph).
        let (p, _) = slab.acquire(0);
        unsafe { slab.recycle(0, p) };
        b.iter(|| {
            let (p, hit) = slab.acquire(0);
            std::hint::black_box((p, hit));
            unsafe { slab.recycle(0, p) };
        });
    });
}

fn bench(c: &mut Criterion) {
    throughput(c, "delegation", SchedKind::Delegation);
    throughput(c, "central_ptlock", SchedKind::Central(LockKind::PtLock));
    throughput(c, "central_ticket", SchedKind::Central(LockKind::Ticket));
    throughput(
        c,
        "worksteal",
        SchedKind::WorkSteal(nanotask_core::sched::WsVariant::LifoLocal),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench, task_alloc
}
criterion_main!(benches);
