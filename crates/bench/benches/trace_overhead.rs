//! Instrumentation overhead (§5): cost of recording one event with the
//! lock-free per-core buffers, enabled vs disabled, plus flush cost —
//! the "very low overhead" requirement of the paper's backend.

use criterion::{Criterion, criterion_group, criterion_main};
use nanotask_trace::{EventKind, Tracer};

fn bench(c: &mut Criterion) {
    c.bench_function("trace/record_enabled", |b| {
        let tracer = Tracer::new(1, true);
        let mut rec = tracer.recorder(0);
        b.iter(|| rec.record(EventKind::UserMarker, 42));
    });
    c.bench_function("trace/record_disabled", |b| {
        let tracer = Tracer::new(1, false);
        let mut rec = tracer.recorder(0);
        b.iter(|| rec.record(EventKind::UserMarker, 42));
    });
    c.bench_function("trace/record_and_flush_4096", |b| {
        let tracer = Tracer::new(1, true);
        let mut rec = tracer.recorder(0);
        b.iter(|| {
            for i in 0..4096u64 {
                rec.record(EventKind::UserMarker, i);
            }
            rec.flush();
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
