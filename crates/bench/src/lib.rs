//! Benchmark harness regenerating every figure and quantitative claim of
//! the paper's evaluation (§6). See DESIGN.md for the experiment index.
//!
//! Each `fig*` binary prints the same series the corresponding figure
//! plots, as CSV: `benchmark,variant,granularity,block,perf,efficiency`.
//! Absolute numbers depend on the host; the reproduced claim is the
//! *shape* — which variant wins at fine granularities, and where the
//! curves converge.
//!
//! Environment knobs (all optional):
//! * `NANOTASK_WORKERS` — worker threads (default: scaled platform
//!   profile, bounded by host parallelism × 4).
//! * `NANOTASK_SCALE` — problem scale multiplier (default 1 = CI-sized).
//! * `NANOTASK_REPS` — repetitions per point (default 3; the paper uses
//!   a minimum of 5).

use nanotask_core::{Platform, Runtime, RuntimeConfig};
use nanotask_workloads::sweep::{SweepPoint, efficiency, sweep, to_csv};
use nanotask_workloads::workload_by_name;

pub mod json;
use json::Json;

/// Harness options read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Problem scale (1 = tiny/CI).
    pub scale: usize,
    /// Worker override (None = platform profile scaled to host).
    pub workers: Option<usize>,
    /// Repetitions per sweep point.
    pub reps: usize,
}

impl Opts {
    /// Read `NANOTASK_*` environment variables.
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        Self {
            scale: get("NANOTASK_SCALE").unwrap_or(1).max(1),
            workers: get("NANOTASK_WORKERS"),
            reps: get("NANOTASK_REPS").unwrap_or(3).max(1),
        }
    }

    /// Workers to use for a platform profile.
    pub fn workers_for(&self, p: Platform) -> usize {
        self.workers
            .unwrap_or_else(|| p.for_host(4).cores)
            .clamp(1, 128)
    }
}

/// Run one figure: `benchmarks × variants` granularity sweeps on a
/// platform profile, printing CSV with efficiency normalized per
/// benchmark across variants (exactly how the paper's plots are scaled).
pub fn run_figure(
    figure: &str,
    platform: Platform,
    benchmarks: &[&str],
    variants: &[RuntimeConfig],
    opts: Opts,
) {
    let workers = opts.workers_for(platform);
    println!(
        "# {figure}: platform={} workers={workers} numa={} scale={} reps={}",
        platform.name, platform.numa_nodes, opts.scale, opts.reps
    );
    println!("# benchmark,variant,ops_per_task,block,perf,efficiency");
    let mut rows: Vec<Json> = Vec::new();
    for bench in benchmarks {
        let mut all_points: Vec<Vec<SweepPoint>> = Vec::new();
        let mut labels = Vec::new();
        for cfg in variants {
            let cfg = cfg
                .clone()
                .workers(workers)
                .numa(platform.numa_nodes.min(workers));
            labels.push(cfg.label);
            let rt = Runtime::new(cfg);
            let mut w = workload_by_name(bench, opts.scale)
                .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
            let points = sweep(&mut *w, &rt, opts.reps);
            w.verify()
                .unwrap_or_else(|e| panic!("{bench} verification failed: {e}"));
            all_points.push(points);
        }
        let effs = efficiency(&all_points);
        for ((points, eff), label) in all_points.iter().zip(&effs).zip(&labels) {
            print!("{}", to_csv(bench, label, points, eff));
            for (p, e) in points.iter().zip(eff) {
                rows.push(Json::obj([
                    ("benchmark", Json::from(*bench)),
                    ("variant", Json::from(*label)),
                    ("ops_per_task", Json::from(p.ops_per_task)),
                    ("block", Json::from(p.block_size)),
                    ("seconds", Json::from(p.seconds)),
                    ("perf", Json::from(p.perf)),
                    ("efficiency", Json::from(*e)),
                ]));
            }
        }
    }
    let doc = Json::obj([
        ("figure", Json::from(figure)),
        ("platform", Json::from(platform.name)),
        ("workers", Json::from(workers)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(opts.reps)),
        ("rows", Json::Arr(rows)),
    ]);
    match json::write_bench_json(figure, &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }
}

/// Summarize which variant "wins" at the finest granularity of each
/// benchmark — the headline claim of Figures 4–9.
pub fn fine_grain_winner(series: &[(&'static str, Vec<SweepPoint>)]) -> &'static str {
    series
        .iter()
        .max_by(|a, b| {
            let pa = a.1.first().map(|p| p.perf).unwrap_or(0.0);
            let pb = b.1.first().map(|p| p.perf).unwrap_or(0.0);
            pa.total_cmp(&pb)
        })
        .map(|(label, _)| *label)
        .unwrap_or("none")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_defaults() {
        let o = Opts {
            scale: 1,
            workers: None,
            reps: 3,
        };
        let w = o.workers_for(Platform::XEON);
        assert!((1..=48).contains(&w));
        let forced = Opts {
            workers: Some(2),
            ..o
        };
        assert_eq!(forced.workers_for(Platform::ROME), 2);
    }

    #[test]
    fn winner_picks_best_fine_grain_perf() {
        let mk = |perf: f64| {
            vec![SweepPoint {
                block_size: 1,
                ops_per_task: 1,
                work: 1,
                seconds: 1.0,
                perf,
            }]
        };
        let s = vec![("a", mk(10.0)), ("b", mk(30.0)), ("c", mk(20.0))];
        assert_eq!(fine_grain_winner(&s), "b");
    }
}
