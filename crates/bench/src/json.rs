//! Machine-readable benchmark results: `BENCH_*.json`.
//!
//! A minimal hand-rolled JSON value/emitter — this build environment has
//! no crates.io access, so `serde`/`serde_json` are substituted by the
//! ~100 lines below (documented substitution; the output is plain JSON
//! consumable by any tooling). Every figure harness writes one
//! `BENCH_<figure>.json` next to its CSV stdout so the performance
//! trajectory of replay vs. the §6.2 ablations can be tracked across
//! PRs. Set `NANOTASK_JSON_DIR` to redirect the output directory, or
//! `NANOTASK_JSON_DIR=-` to disable writing.

use std::io;
use std::path::PathBuf;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if *v == v.trunc() && v.abs() < 9e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Parse a JSON document (the validator side of the hand-rolled emitter;
/// the CI smoke job uses it to prove every emitted `BENCH_*.json` is
/// well-formed). Accepts exactly the subset `render` emits plus
/// insignificant whitespace; rejects trailing garbage.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = core::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
        }
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            core::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = core::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Write `value` to `BENCH_<figure>.json` (in `NANOTASK_JSON_DIR` or the
/// working directory). Returns the path, or `None` when writing is
/// disabled (`NANOTASK_JSON_DIR=-`).
pub fn write_bench_json(figure: &str, value: &Json) -> io::Result<Option<PathBuf>> {
    let dir = std::env::var("NANOTASK_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    if dir == "-" {
        return Ok(None);
    }
    let safe: String = figure
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = PathBuf::from(dir).join(format!("BENCH_{safe}.json"));
    std::fs::write(&path, value.render() + "\n")?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn renders_nested() {
        let j = Json::obj([
            ("name", Json::from("fig12")),
            (
                "rows",
                Json::arr([Json::obj([("speedup", Json::from(1.5))])]),
            ),
        ]);
        assert_eq!(j.render(), r#"{"name":"fig12","rows":[{"speedup":1.5}]}"#);
    }

    #[test]
    fn parse_roundtrips_render() {
        let j = Json::obj([
            ("figure", Json::from("fig13")),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("n", Json::from(3.25)),
            (
                "rows",
                Json::arr([Json::obj([
                    ("speedup", Json::from(1.5)),
                    ("label", Json::from("a\"b\\c\n")),
                ])]),
            ),
        ]);
        let parsed = parse(&j.render()).expect("parse own output");
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_accepts_whitespace_and_ints() {
        let v = parse(" { \"a\" : [ 1 , -2.5e3 ] }\n").unwrap();
        assert_eq!(
            v,
            Json::obj([("a", Json::arr([Json::Num(1.0), Json::Num(-2500.0)]))])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn write_respects_disable() {
        unsafe { std::env::set_var("NANOTASK_JSON_DIR", "-") };
        assert!(write_bench_json("x", &Json::Null).unwrap().is_none());
        unsafe { std::env::remove_var("NANOTASK_JSON_DIR") };
    }
}
