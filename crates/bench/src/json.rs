//! Machine-readable benchmark results: `BENCH_*.json`.
//!
//! A minimal hand-rolled JSON value/emitter — this build environment has
//! no crates.io access, so `serde`/`serde_json` are substituted by the
//! ~100 lines below (documented substitution; the output is plain JSON
//! consumable by any tooling). Every figure harness writes one
//! `BENCH_<figure>.json` next to its CSV stdout so the performance
//! trajectory of replay vs. the §6.2 ablations can be tracked across
//! PRs. Set `NANOTASK_JSON_DIR` to redirect the output directory, or
//! `NANOTASK_JSON_DIR=-` to disable writing.

use std::io;
use std::path::PathBuf;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if *v == v.trunc() && v.abs() < 9e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Write `value` to `BENCH_<figure>.json` (in `NANOTASK_JSON_DIR` or the
/// working directory). Returns the path, or `None` when writing is
/// disabled (`NANOTASK_JSON_DIR=-`).
pub fn write_bench_json(figure: &str, value: &Json) -> io::Result<Option<PathBuf>> {
    let dir = std::env::var("NANOTASK_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    if dir == "-" {
        return Ok(None);
    }
    let safe: String = figure
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = PathBuf::from(dir).join(format!("BENCH_{safe}.json"));
    std::fs::write(&path, value.render() + "\n")?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn renders_nested() {
        let j = Json::obj([
            ("name", Json::from("fig12")),
            (
                "rows",
                Json::arr([Json::obj([("speedup", Json::from(1.5))])]),
            ),
        ]);
        assert_eq!(j.render(), r#"{"name":"fig12","rows":[{"speedup":1.5}]}"#);
    }

    #[test]
    fn write_respects_disable() {
        unsafe { std::env::set_var("NANOTASK_JSON_DIR", "-") };
        assert!(write_bench_json("x", &Json::Null).unwrap().is_none());
        unsafe { std::env::remove_var("NANOTASK_JSON_DIR") };
    }
}
