//! Figure 4: efficiency vs task granularity of the runtime with and
//! without each optimization, Intel Xeon profile.
//! Benchmarks: Lulesh, DotProduct, miniAMR, Cholesky.

use nanotask_bench::{Opts, run_figure};
use nanotask_core::{Platform, RuntimeConfig};

fn main() {
    run_figure(
        "fig04-ablation-xeon",
        Platform::XEON,
        &["lulesh", "dotprod", "miniamr", "cholesky"],
        &RuntimeConfig::ablations(),
        Opts::from_env(),
    );
}
