//! Figure 5: ablation efficiency vs granularity, AMD Rome profile.
//! Benchmarks: NBody, HPCCG, miniAMR, Matmul.

use nanotask_bench::{Opts, run_figure};
use nanotask_core::{Platform, RuntimeConfig};

fn main() {
    run_figure(
        "fig05-ablation-rome",
        Platform::ROME,
        &["nbody", "hpccg", "miniamr", "matmul"],
        &RuntimeConfig::ablations(),
        Opts::from_env(),
    );
}
