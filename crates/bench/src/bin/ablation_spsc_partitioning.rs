//! Design-choice ablation called out in DESIGN.md: how many SPSC add
//! buffers should the delegation scheduler use? §3.1 of the paper: "The
//! number of SPSC queues can be configured from a single one to one per
//! core. [...] In our experiments, we use one SPSC queue and lock per
//! NUMA node." This binary sweeps the partitioning on the
//! scheduler-bound DotProduct workload, and also compares the classic
//! serve loop against the flat-combining extension (§8 future work).

use nanotask_bench::Opts;
use nanotask_core::{Runtime, RuntimeConfig, SchedKind};
use nanotask_workloads::workload_by_name;
use std::time::Instant;

fn measure(cfg: RuntimeConfig, scale: usize, reps: usize) -> f64 {
    let rt = Runtime::new(cfg);
    let mut w = workload_by_name("dotprod", scale).unwrap();
    let bs = w.block_sizes()[0]; // finest tasks: scheduler-bound
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        w.run(&rt, bs);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    w.verify().expect("verify");
    best
}

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers.unwrap_or(4).max(2);
    println!("# SPSC add-buffer partitioning ablation (dotprod, finest blocks, {workers} workers)");
    println!("# {:<28} {:>12}", "configuration", "seconds");
    for nodes in [1, 2, workers] {
        let cfg = RuntimeConfig::optimized().workers(workers).numa(nodes);
        let t = measure(cfg, opts.scale, opts.reps);
        let what = match nodes {
            1 => "1 buffer (global)".to_string(),
            n if n == workers => format!("{n} buffers (per core)"),
            n => format!("{n} buffers (per NUMA)"),
        };
        println!("  {:<28} {:>12.4}", what, t);
    }
    let t_classic = measure(
        RuntimeConfig::optimized().workers(workers).numa(2),
        opts.scale,
        opts.reps,
    );
    let t_flat = measure(
        RuntimeConfig::flat_combining().workers(workers).numa(2),
        opts.scale,
        opts.reps,
    );
    println!("  {:<28} {:>12.4}", "serve loop (Listing 5)", t_classic);
    println!("  {:<28} {:>12.4}", "flat combining (§8)", t_flat);
    let _ = SchedKind::DelegationFlat;
}
