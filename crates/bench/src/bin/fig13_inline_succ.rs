//! Figure 13 (new experiment): the **zero-queue hot path** —
//! immediate-successor inline execution + batched ready-task release +
//! per-worker pop cache ([`RuntimeConfig::fast_path`]) — measured on
//! chain-heavy fine-grained workloads across the §6.2 ablation presets.
//!
//! Five workloads, finest granularity first:
//!
//! * `chains` — the distilled hot path: independent `inout` chains of
//!   tiny tasks, each spawned by its own nested *driver* task so task
//!   creation is spread across the workers (a single root creator would
//!   be the critical path at this granularity and hide the scheduler
//!   cost this figure measures). Every completion wakes exactly one
//!   successor; with the fast path on, each chain runs almost entirely
//!   inline (no `add_ready` push, no SPSC traversal, no delegation-lock
//!   drain, no `get_ready` pop per link).
//! * `chains_replay` — the same chain pattern, root-spawned and driven
//!   through `run_iterative`: the replay engine's held-task releases are
//!   the path the fast path defers into inline/batch hand-offs.
//! * `heat` / `heat_replay` — the Gauss–Seidel wavefront at its finest
//!   block size: real successor chains with 1–2 wakes per completion.
//! * `dotprod` — reduction-chain spawning at the finest block size
//!   (mostly exercises batched release + the pop cache; the reduction
//!   group itself is released at spawn time, not completion time).
//!
//! Each (preset, workload) point runs with the fast path off and on;
//! the claim is machine-checkable through the scheduler op counters in
//! [`nanotask_core::RunReport`], not just wall clock: the MET line
//! requires ≥ 1.2× speedup on at least one chain-heavy workload on the
//! optimized preset at 4 workers **and** ≥ 50 % of queue-or-inline task
//! activations bypassing the scheduler queue there.
//!
//! CSV: `benchmark,variant,fast,seconds,speedup,inline_runs,pops,bypass`;
//! also writes `BENCH_fig13_inline_succ.json`.
//!
//! Extra knobs: `NANOTASK_WORKERS` (default 4), `NANOTASK_REPS`
//! (best-of, default 3), `NANOTASK_CHAIN_LEN` (default 2048),
//! `NANOTASK_ITERS` (replay timesteps, default 8).

use std::time::Instant;

use nanotask_bench::Opts;
use nanotask_bench::json::{self, Json};
use nanotask_core::{Deps, RunReport, Runtime, RuntimeConfig, SendPtr};
use nanotask_replay::RunIterative;
use nanotask_workloads::{iterative_workload_by_name, workload_by_name};

/// Stride (in doubles) between chain cells: one 128-byte line each.
const CELL_STRIDE: usize = 16;

/// Dependent-flop body of one chain link (~tens of ns: fine granularity
/// where the scheduler round-trip is a comparable cost).
#[inline]
fn link_body(cell: SendPtr<f64>) {
    unsafe {
        let mut x = *cell.get();
        for _ in 0..16 {
            x = x.mul_add(1.000_000_1, 0.125);
        }
        *cell.get() = x * 0.5 + 0.000_001;
    }
}

/// Spawn `chains` independent readwrite chains of `len` tasks each into
/// `ctx`. Every completion wakes exactly one successor — the distilled
/// immediate-successor pattern.
fn spawn_chains(ctx: &nanotask_core::TaskCtx, base: SendPtr<f64>, chains: usize, len: usize) {
    for c in 0..chains {
        let cell = unsafe { base.add(c * CELL_STRIDE) };
        for _ in 0..len {
            ctx.spawn_labeled("link", Deps::new().readwrite_addr(cell.addr()), move |_| {
                link_body(cell)
            });
        }
    }
}

fn check_cells(cells: &[f64], chains: usize) {
    for c in 0..chains {
        let got = cells[c * CELL_STRIDE];
        assert!(
            got > 0.0 && got.is_finite(),
            "chain {c} produced garbage: {got}"
        );
    }
}

/// Direct mode, nested creators: one *driver* task per chain spawns that
/// chain's links and task-waits. Creation is spread across the workers
/// (the single-creator root would otherwise be the critical path at this
/// granularity, hiding the scheduler cost this figure measures), so the
/// per-link queue round-trip the fast path removes shows up directly in
/// wall clock. Returns wall seconds.
fn run_chains(rt: &Runtime, chains: usize, len: usize) -> f64 {
    let mut cells = vec![0.0f64; chains * CELL_STRIDE];
    let base = SendPtr::new(cells.as_mut_ptr());
    let t0 = Instant::now();
    rt.run(move |ctx| {
        for c in 0..chains {
            let cell = unsafe { base.add(c * CELL_STRIDE) };
            ctx.spawn_labeled("driver", Deps::new(), move |d| {
                for _ in 0..len {
                    d.spawn_labeled("link", Deps::new().readwrite_addr(cell.addr()), move |_| {
                        link_body(cell)
                    });
                }
                d.taskwait();
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    check_cells(&cells, chains);
    secs
}

/// Replay mode: `iters` timesteps through `run_iterative` — iteration 0
/// records, the rest replay with held-task releases (which the fast path
/// defers into inline/batch hand-offs). Returns *per-replayed-iteration*
/// wall seconds, the fig12-style metric the fast-path claim is about.
fn run_chains_replay(rt: &Runtime, chains: usize, len: usize, iters: usize) -> f64 {
    let mut cells = vec![0.0f64; chains * CELL_STRIDE];
    let base = SendPtr::new(cells.as_mut_ptr());
    let t0 = Instant::now();
    let report = rt.run_iterative(iters, move |ctx| spawn_chains(ctx, base, chains, len));
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.replayed, iters - 1, "chains body must replay");
    check_cells(&cells, chains);
    secs / iters as f64
}

/// One measured point: best-of-`reps` seconds plus the counters of the
/// *final rep alone* (snapshot before/after, subtracted), so the emitted
/// counters and the wall clock describe the same amount of work.
struct Point {
    seconds: f64,
    report: RunReport,
}

/// Counter delta `after - before`. `max_inline_depth` is a maximum, not
/// a counter; the cumulative value is kept.
fn report_diff(before: &RunReport, after: &RunReport) -> RunReport {
    let mut d = after.clone();
    d.stats.tasks_created = after.stats.tasks_created - before.stats.tasks_created;
    d.stats.tasks_executed = after.stats.tasks_executed - before.stats.tasks_executed;
    d.stats.tasks_freed = after.stats.tasks_freed - before.stats.tasks_freed;
    d.inline_runs = after.inline_runs - before.inline_runs;
    d.sched.adds = after.sched.adds - before.sched.adds;
    d.sched.batch_adds = after.sched.batch_adds - before.sched.batch_adds;
    d.sched.batch_tasks = after.sched.batch_tasks - before.sched.batch_tasks;
    d.sched.pops = after.sched.pops - before.sched.pops;
    d.sched.pop_cache_hits = after.sched.pop_cache_hits - before.sched.pop_cache_hits;
    d.sched.lock_acquisitions = after.sched.lock_acquisitions - before.sched.lock_acquisitions;
    d
}

fn measure(cfg: RuntimeConfig, reps: usize, mut run: impl FnMut(&Runtime) -> f64) -> Point {
    let mut best = f64::INFINITY;
    let rt = Runtime::new(cfg);
    for _ in 0..reps.max(1) - 1 {
        best = best.min(run(&rt));
    }
    let before = rt.run_report();
    best = best.min(run(&rt));
    let after = rt.run_report();
    Point {
        seconds: best,
        report: report_diff(&before, &after),
    }
}

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers.unwrap_or(4).clamp(1, 128);
    let chain_len = std::env::var("NANOTASK_CHAIN_LEN")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2048)
        .max(4);
    println!(
        "# fig13_inline_succ: workers={workers} chain_len={chain_len} scale={} reps={}",
        opts.scale, opts.reps
    );
    println!("# benchmark,variant,fast,seconds,speedup,inline_runs,pops,bypass");

    let mut rows: Vec<Json> = Vec::new();
    // (benchmark, speedup, bypass) on the optimized preset — the MET set.
    let mut optimized_points: Vec<(&'static str, f64, f64)> = Vec::new();

    let iters = std::env::var("NANOTASK_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .max(2);

    for base in RuntimeConfig::ablations() {
        let variant = base.label;
        // benchmark name → runner closure measured off/on.
        type Runner<'a> = Box<dyn FnMut(&Runtime) -> f64 + 'a>;
        let mut heat = workload_by_name("heat", opts.scale).unwrap();
        let heat_bs = heat.block_sizes()[0];
        let mut heat_replay = iterative_workload_by_name("heat", opts.scale).unwrap();
        heat_replay.set_iterations(iters);
        let heat_replay_bs = heat_replay.block_sizes()[0];
        let mut dot = workload_by_name("dotprod", opts.scale).unwrap();
        let dot_bs = dot.block_sizes()[0];
        let heat_ref = &mut heat;
        let heat_replay_ref = &mut heat_replay;
        let dot_ref = &mut dot;
        let benches: Vec<(&'static str, Runner)> = vec![
            (
                "chains",
                Box::new(move |rt: &Runtime| run_chains(rt, 2 * workers.max(2), chain_len)),
            ),
            (
                "chains_replay",
                Box::new(move |rt: &Runtime| {
                    run_chains_replay(rt, workers.max(2), chain_len.min(512), iters)
                }),
            ),
            (
                "heat",
                Box::new(move |rt: &Runtime| {
                    let t0 = Instant::now();
                    heat_ref.run(rt, heat_bs);
                    let s = t0.elapsed().as_secs_f64();
                    heat_ref.verify().expect("heat verification");
                    s
                }),
            ),
            (
                "heat_replay",
                Box::new(move |rt: &Runtime| {
                    let t0 = Instant::now();
                    heat_replay_ref.run_replay(rt, heat_replay_bs);
                    let s = t0.elapsed().as_secs_f64() / iters as f64;
                    heat_replay_ref.verify().expect("heat replay verification");
                    s
                }),
            ),
            (
                "dotprod",
                Box::new(move |rt: &Runtime| {
                    let t0 = Instant::now();
                    dot_ref.run(rt, dot_bs);
                    let s = t0.elapsed().as_secs_f64();
                    dot_ref.verify().expect("dotprod verification");
                    s
                }),
            ),
        ];

        for (name, mut runner) in benches {
            let off = measure(
                base.clone().workers(workers).fast_path(false),
                opts.reps,
                &mut runner,
            );
            let on = measure(
                base.clone().workers(workers).fast_path(true),
                opts.reps,
                &mut runner,
            );
            let speedup = off.seconds / on.seconds;
            let bypass = on.report.queue_bypass_fraction();
            for (fast, p) in [(false, &off), (true, &on)] {
                println!(
                    "{name},{variant},{fast},{:.6},{speedup:.3},{},{},{:.3}",
                    p.seconds,
                    p.report.inline_runs,
                    p.report.sched.pops,
                    p.report.queue_bypass_fraction(),
                );
                rows.push(Json::obj([
                    ("benchmark", Json::from(name)),
                    ("variant", Json::from(variant)),
                    ("fast_path", Json::from(fast)),
                    ("seconds", Json::from(p.seconds)),
                    ("speedup_on_vs_off", Json::from(speedup)),
                    ("tasks_executed", Json::from(p.report.stats.tasks_executed)),
                    ("inline_runs", Json::from(p.report.inline_runs)),
                    ("max_inline_depth", Json::from(p.report.max_inline_depth)),
                    (
                        "queue_bypass_fraction",
                        Json::from(p.report.queue_bypass_fraction()),
                    ),
                    ("sched_adds", Json::from(p.report.sched.adds)),
                    ("sched_batch_adds", Json::from(p.report.sched.batch_adds)),
                    ("sched_batch_tasks", Json::from(p.report.sched.batch_tasks)),
                    ("sched_pops", Json::from(p.report.sched.pops)),
                    (
                        "sched_pop_cache_hits",
                        Json::from(p.report.sched.pop_cache_hits),
                    ),
                    (
                        "sched_lock_acquisitions",
                        Json::from(p.report.sched.lock_acquisitions),
                    ),
                ]));
            }
            if variant == "optimized" {
                optimized_points.push((name, speedup, bypass));
            }
        }
    }

    for (name, s, b) in &optimized_points {
        println!(
            "# optimized {name}: {s:.2}x speedup, {:.0}% queue bypass",
            b * 100.0
        );
    }
    let target_met = optimized_points
        .iter()
        .filter(|(n, _, _)| n.starts_with("chains") || n.starts_with("heat"))
        .any(|(_, s, b)| *s >= 1.2 && *b >= 0.5);
    println!(
        "# inline+batch >=1.2x with >=50% queue bypass on a chain-heavy workload \
         at {workers} workers (optimized): {}",
        if target_met { "MET" } else { "NOT MET" }
    );

    let doc = Json::obj([
        ("figure", Json::from("fig13_inline_succ")),
        ("workers", Json::from(workers)),
        ("chain_len", Json::from(chain_len)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(opts.reps)),
        ("target_met", Json::from(target_met)),
        ("rows", Json::Arr(rows)),
    ]);
    match json::write_bench_json("fig13_inline_succ", &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }
}
