//! Figure 16 (new experiment): the **steady-state replay hot loop** —
//! CSR-frozen graphs, O(log n) partitioning and inline-successor
//! routing, measured against the retained PR 4 reference data path.
//!
//! The replay engine already eliminates per-iteration dependency-system
//! *discovery* cost (fig12) and turns the frozen graph into a static
//! NUMA schedule (fig15); this experiment measures what the steady-state
//! *iteration itself* still paid on the way in, and what the hot-loop
//! rebuild removes:
//!
//! * **CSR layout + memcpy reset** — successor lists, access
//!   declarations and reduction memberships live in shared
//!   compressed-sparse-row arenas built once at freeze time; the
//!   per-iteration counter reset is a single `memcpy` from a template
//!   instead of a node-by-node sweep.
//! * **Heap partitioner** — `Partitioning::compute` serves each pick
//!   from a score-indexed heap with lazy invalidation (O(log n)) instead
//!   of re-scoring the whole ready frontier (O(n²) on wide flat graphs),
//!   and an evicted graph re-entering the cache seeds from its saved
//!   assignment instead of recomputing.
//! * **Inline-successor routing** — a routed release keeps one
//!   *same-node* successor as the releasing worker's inline next task,
//!   so dependence locality composes with partition locality instead of
//!   bypassing it (ROADMAP item (d)).
//!
//! The baseline is `RuntimeConfig::replay_compat`: the same engine
//! driven through the retained PR 4 path (sweep reset, full-rescan
//! partitioner, no inline routing) — behaviorally identical, proven by
//! the differential suite in `tests/replay_hotloop_properties.rs`, so
//! the wall-clock delta is exactly the steady-state overhead this PR
//! removes. Unlike fig15's placement clause, that overhead is
//! allocation/setup work on the critical path and is measurable on a
//! single-hardware-thread host.
//!
//! Four workloads at the finest granularity (chains — the distilled
//! successor pattern, root-spawned through `run_iterative` — plus heat,
//! miniAMR and cholesky; heat/cholesky run one step finer than their
//! advertised `block_sizes()` sweep so the earlier figures' baselines
//! stay untouched) run across the §6.2 ablation presets with the fast
//! path and replay partitioning enabled on both sides. CSV:
//! `benchmark,variant,hot_s,pr4_s,speedup,inline_routed,heap_ops,rescans`;
//! also writes `BENCH_fig16_replay_hotloop.json`.
//!
//! **Counter guards** (hard asserts — CI runs this harness at smoke
//! sizes, so a regression fails the build):
//!
//! * every hot-loop row partitioned ≥ 2 ways does **zero** full-frontier
//!   rescans and > 0 heap ops;
//! * every reference row does zero heap ops;
//! * `inline_routed > 0` on the chain workload (optimized preset) —
//!   same-node successors actually ran inline.
//!
//! Acceptance: ≥ 1.15× steady-state per-iteration throughput vs the
//! PR 4 path on at least two of {heat, miniAMR, cholesky} (optimized
//! preset, 4 workers).
//!
//! Extra knobs: `NANOTASK_WORKERS` (default 4), `NANOTASK_NUMA_NODES`
//! (default 2), `NANOTASK_ITERS` (timesteps, default 48),
//! `NANOTASK_CHAIN_LEN` (default 512), `NANOTASK_REPS` (best-of,
//! default 3).

use std::time::Instant;

use nanotask_bench::Opts;
use nanotask_bench::json::{self, Json};
use nanotask_core::{Deps, RunReport, Runtime, RuntimeConfig, SendPtr};
use nanotask_replay::{ReplayReport, RunIterative};
use nanotask_workloads::iterative_workload_by_name;

/// Stride (in doubles) between chain cells: one 128-byte line each.
const CELL_STRIDE: usize = 16;

/// Dependent-flop body of one chain link (~tens of ns: fine granularity
/// where the steady-state replay overhead is a comparable cost).
#[inline]
fn link_body(cell: SendPtr<f64>) {
    unsafe {
        let mut x = *cell.get();
        for _ in 0..16 {
            x = x.mul_add(1.000_000_1, 0.125);
        }
        *cell.get() = x * 0.5 + 0.000_001;
    }
}

/// Replayed chains: `chains` independent readwrite chains of `len` tiny
/// tasks, driven through `run_iterative` — every completion wakes
/// exactly one successor, the distilled inline-routing pattern. Returns
/// (per-iteration seconds, replay report).
fn run_chains(rt: &Runtime, chains: usize, len: usize, iters: usize) -> (f64, ReplayReport) {
    let mut cells = vec![0.0f64; chains * CELL_STRIDE];
    let base = SendPtr::new(cells.as_mut_ptr());
    let t0 = Instant::now();
    let report = rt.run_iterative(iters, move |ctx| {
        for c in 0..chains {
            let cell = unsafe { base.add(c * CELL_STRIDE) };
            for _ in 0..len {
                ctx.spawn_labeled("link", Deps::new().readwrite_addr(cell.addr()), move |_| {
                    link_body(cell)
                });
            }
        }
    });
    let secs = t0.elapsed().as_secs_f64() / iters as f64;
    assert_eq!(report.replayed, iters - 1, "chains body must replay");
    for c in 0..chains {
        let got = cells[c * CELL_STRIDE];
        assert!(got > 0.0 && got.is_finite(), "chain {c} garbage: {got}");
    }
    (secs, report)
}

struct Point {
    /// Per-iteration seconds, best across rounds.
    per_iter: f64,
    /// Per-iteration seconds of every round, round order.
    samples: Vec<f64>,
    report: ReplayReport,
    run_report: RunReport,
}

/// Measure hot vs reference **interleaved**: each round runs the hot
/// configuration and the reference back to back on fresh runtimes, so
/// host-level throughput modes (frequency scaling, noisy neighbors on
/// this shared core) hit both sides of a round together — and the
/// within-round order *alternates* between rounds so drift during a
/// round cannot systematically favor one side. The speedup is then
/// taken as the *median of per-round ratios* — robust even when
/// absolute times swing 2× between rounds. Each point's reports come
/// from the round that produced its retained (minimum) time, so the
/// emitted counters and wall clock describe the same run.
fn measure_pair(
    mk: &dyn Fn(bool) -> Runtime,
    run: &mut dyn FnMut(&Runtime) -> (f64, ReplayReport),
    rounds: usize,
) -> (Point, Point) {
    let mut hot = Point {
        per_iter: f64::INFINITY,
        samples: Vec::new(),
        report: ReplayReport::default(),
        run_report: RunReport::default(),
    };
    let mut pr4 = Point {
        per_iter: f64::INFINITY,
        samples: Vec::new(),
        report: ReplayReport::default(),
        run_report: RunReport::default(),
    };
    for round in 0..rounds.max(1) {
        let order = if round % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for compat in order {
            let point = if compat { &mut pr4 } else { &mut hot };
            let rt = mk(compat);
            let (s, r) = run(&rt);
            point.samples.push(s);
            if s < point.per_iter {
                point.per_iter = s;
                point.report = r;
                point.run_report = rt.run_report();
            }
        }
    }
    (hot, pr4)
}

/// Median of per-round `pr4 / hot` time ratios.
fn median_ratio(hot: &Point, pr4: &Point) -> f64 {
    let mut ratios: Vec<f64> = hot
        .samples
        .iter()
        .zip(&pr4.samples)
        .map(|(h, p)| p / h)
        .collect();
    ratios.sort_by(f64::total_cmp);
    let n = ratios.len();
    if n == 0 {
        return 1.0;
    }
    if n % 2 == 1 {
        ratios[n / 2]
    } else {
        (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
    }
}

struct Row {
    benchmark: String,
    variant: String,
    hot: Point,
    pr4: Point,
    partitions: usize,
}

impl Row {
    /// Median of per-round time ratios (see [`measure_pair`]).
    fn speedup(&self) -> f64 {
        median_ratio(&self.hot, &self.pr4)
    }

    /// The counter guards this figure's claims rest on; hard asserts so
    /// CI smoke runs catch regressions.
    fn guard(&self) {
        self.hot.report.assert_classification();
        self.pr4.report.assert_classification();
        if self.partitions >= 2 {
            assert_eq!(
                self.hot.report.frontier_rescans, 0,
                "{}/{}: heap partitioner must never rescan the frontier",
                self.benchmark, self.variant
            );
            assert!(
                self.hot.report.heap_ops > 0,
                "{}/{}: heap partitioner must have run",
                self.benchmark,
                self.variant
            );
        }
        assert_eq!(
            self.pr4.report.heap_ops, 0,
            "{}/{}: reference path must use the rescan partitioner",
            self.benchmark, self.variant
        );
        assert_eq!(
            self.pr4.run_report.sched.inline_routed, 0,
            "{}/{}: reference path must not inline-route",
            self.benchmark, self.variant
        );
    }

    fn json(&self) -> Json {
        let samples = |p: &Point| Json::Arr(p.samples.iter().map(|&s| Json::from(s)).collect());
        Json::obj([
            ("benchmark", Json::from(self.benchmark.clone())),
            ("variant", Json::from(self.variant.clone())),
            ("hot_per_iter_seconds", Json::from(self.hot.per_iter)),
            ("pr4_per_iter_seconds", Json::from(self.pr4.per_iter)),
            // Median of per-round pr4/hot ratios — may differ from the
            // ratio of the best-of-round times above; the raw samples
            // below (round order) make it reproducible.
            ("speedup", Json::from(self.speedup())),
            ("hot_samples", samples(&self.hot)),
            ("pr4_samples", samples(&self.pr4)),
            ("iterations", Json::from(self.hot.report.iterations)),
            ("replayed", Json::from(self.hot.report.replayed)),
            ("tasks", Json::from(self.hot.report.tasks)),
            ("partitions", Json::from(self.hot.report.partitions)),
            (
                "routed_releases",
                Json::from(self.hot.report.routed_releases),
            ),
            (
                "inline_routed",
                Json::from(self.hot.run_report.sched.inline_routed),
            ),
            ("heap_ops", Json::from(self.hot.report.heap_ops)),
            (
                "frontier_rescans",
                Json::from(self.hot.report.frontier_rescans),
            ),
            (
                "pr4_frontier_rescans",
                Json::from(self.pr4.report.frontier_rescans),
            ),
            (
                "partition_seeds",
                Json::from(self.hot.report.partition_seeds),
            ),
            ("inline_runs", Json::from(self.hot.run_report.inline_runs)),
            (
                "pr4_inline_runs",
                Json::from(self.pr4.run_report.inline_runs),
            ),
        ])
    }
}

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers.unwrap_or(4).clamp(1, 128);
    let numa = std::env::var("NANOTASK_NUMA_NODES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2)
        .clamp(1, workers.max(1));
    let iters = std::env::var("NANOTASK_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(48)
        .max(6);
    let chain_len = std::env::var("NANOTASK_CHAIN_LEN")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(512)
        .max(4);
    println!(
        "# fig16_replay_hotloop: workers={workers} numa_nodes={numa} iters={iters} \
         chain_len={chain_len} scale={} reps={}",
        opts.scale, opts.reps
    );
    println!("# benchmark,variant,hot_s,pr4_s,speedup,inline_routed,heap_ops,rescans");

    let benches = ["chains", "heat", "miniamr", "cholesky"];
    let mut rows: Vec<Row> = Vec::new();
    for preset in RuntimeConfig::ablations() {
        for bench in benches {
            // Both sides run with the fast path and replay partitioning
            // on — the config where all three hot-loop layers engage;
            // `compat` alone selects the PR 4 data path.
            let mk = |compat: bool| {
                Runtime::new(
                    preset
                        .clone()
                        .workers(workers)
                        .with_numa_nodes(numa)
                        .with_replay_partitioning(true)
                        .fast_path(true)
                        .with_replay_compat(compat),
                )
            };

            let (hot, pr4) = if bench == "chains" {
                let chains = 4usize;
                let mut run = |rt: &Runtime| run_chains(rt, chains, chain_len.min(2048), iters);
                measure_pair(&mk, &mut run, opts.reps)
            } else {
                let mut w = iterative_workload_by_name(bench, opts.scale).expect("workload");
                w.set_iterations(iters);
                // One step finer than the workload's advertised sweep:
                // the steady-state overhead this figure measures only
                // dominates when bodies are this tiny, and the workloads
                // accept any divisor block size — the advertised
                // `block_sizes()` (and with them every fig04–fig15
                // baseline) stay untouched. miniAMR's finest point is a
                // semantic minimum (quarter-block reps) and is kept.
                let finest = w.block_sizes()[0];
                let bs = if bench == "miniamr" {
                    finest
                } else {
                    (finest / 2).max(1)
                };
                let mut run = |rt: &Runtime| {
                    let t0 = Instant::now();
                    let report = w.run_replay_report(rt, bs);
                    let s = t0.elapsed().as_secs_f64() / iters as f64;
                    (s, report)
                };
                let pair = measure_pair(&mk, &mut run, opts.reps);
                w.verify().unwrap_or_else(|e| panic!("{bench}: {e}"));
                pair
            };
            let partitions = hot.report.partitions;

            let row = Row {
                benchmark: bench.to_string(),
                variant: preset.label.to_string(),
                hot,
                pr4,
                partitions,
            };
            row.guard();
            rows.push(row);
        }
    }

    for r in &rows {
        println!(
            "{},{},{:.6},{:.6},{:.3},{},{},{}",
            r.benchmark,
            r.variant,
            r.hot.per_iter,
            r.pr4.per_iter,
            r.speedup(),
            r.hot.run_report.sched.inline_routed,
            r.hot.report.heap_ops,
            r.hot.report.frontier_rescans,
        );
    }

    // Acceptance: three machine-checkable clauses on the optimized rows.
    let optimized: Vec<&Row> = rows.iter().filter(|r| r.variant == "optimized").collect();
    let chains_row = optimized
        .iter()
        .find(|r| r.benchmark == "chains")
        .expect("chains row");
    // 1. Inline routing composed: same-node successors of the chain
    //    workload ran inline (counter-verified; guard() already asserts
    //    this is exclusive to the hot path).
    let inline_ok = chains_row.hot.run_report.sched.inline_routed > 0;
    assert!(
        inline_ok || chains_row.partitions < 2,
        "chains must inline-route when partitioned: {:?}",
        chains_row.hot.run_report.sched
    );
    // 2. Zero frontier rescans on every hot-loop row (guard() asserted
    //    per row; summarized here).
    let rescans_ok = rows.iter().all(|r| r.hot.report.frontier_rescans == 0);
    // 3. ≥ 1.15× steady-state per-iteration throughput on at least two
    //    of {heat, miniamr, cholesky}.
    let fast: Vec<&&Row> = optimized
        .iter()
        .filter(|r| r.benchmark != "chains" && r.speedup() >= 1.15)
        .collect();
    let speed_ok = fast.len() >= 2;
    println!(
        "# inline-routed successors on chains (optimized): {} ({})",
        if inline_ok { "MET" } else { "NOT MET" },
        chains_row.hot.run_report.sched.inline_routed
    );
    println!(
        "# zero full-frontier rescans across all hot-loop rows: {}",
        if rescans_ok { "MET" } else { "NOT MET" }
    );
    println!(
        "# >=1.15x per-iteration throughput vs PR 4 path on >=2 of heat/miniamr/cholesky \
         (optimized, {workers} workers): {} ({})",
        if speed_ok { "MET" } else { "NOT MET" },
        optimized
            .iter()
            .filter(|r| r.benchmark != "chains")
            .map(|r| format!("{} {:.2}x", r.benchmark, r.speedup()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let target_met = inline_ok && rescans_ok && speed_ok;

    let doc = Json::obj([
        ("figure", Json::from("fig16_replay_hotloop")),
        ("workers", Json::from(workers)),
        ("numa_nodes", Json::from(numa)),
        ("iters", Json::from(iters)),
        ("chain_len", Json::from(chain_len)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(opts.reps)),
        ("inline_routed_met", Json::from(inline_ok)),
        ("zero_rescans_met", Json::from(rescans_ok)),
        ("speedup_met", Json::from(speed_ok)),
        ("target_met", Json::from(target_met)),
        ("rows", Json::Arr(rows.iter().map(Row::json).collect())),
    ]);
    match json::write_bench_json("fig16_replay_hotloop", &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }
}
