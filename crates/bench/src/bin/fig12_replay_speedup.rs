//! Figure 12 (new experiment, beyond the paper's three optimization
//! axes): per-iteration speedup of **task-graph record & replay**
//! (`nanotask-replay`) over the fully-optimized runtime (wait-free
//! dependencies + delegation scheduler + pooled allocator).
//!
//! Both modes run the same iterative workloads (heat, HPCCG, N-body) at
//! the same block sizes for the same number of timesteps; the normal
//! driver registers/releases the dependency graph every timestep, the
//! replay driver records it once and replays it with atomic in-degree
//! counters. At fine granularity the dependency system is a dominant
//! cost (the premise of the paper's §2), so replay wins most where
//! tasks are smallest.
//!
//! CSV: `benchmark,block,ops_per_task,normal_s,replay_s,speedup`; also
//! writes `BENCH_fig12_replay_speedup.json` (see `nanotask_bench::json`).
//!
//! Extra knobs: `NANOTASK_ITERS` (timesteps per run, default 16),
//! `NANOTASK_WORKERS` (default 4 — the claim is about 4+ workers),
//! `NANOTASK_REPS` (best-of repetitions, default 3).

use std::time::Instant;

use nanotask_bench::Opts;
use nanotask_bench::json::{self, Json};
use nanotask_core::{Runtime, RuntimeConfig};
use nanotask_workloads::IterativeWorkload;
use nanotask_workloads::iterative_workload_by_name;

fn best_of(reps: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers.unwrap_or(4).clamp(1, 128);
    let iters = std::env::var("NANOTASK_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16)
        .max(2);
    println!(
        "# fig12_replay_speedup: workers={workers} iters={iters} scale={} reps={}",
        opts.scale, opts.reps
    );
    println!("# benchmark,block,ops_per_task,normal_s,replay_s,speedup");

    let mut rows: Vec<Json> = Vec::new();
    let mut finest: Vec<(&'static str, f64)> = Vec::new();
    for name in ["heat", "hpccg", "nbody"] {
        let mut w: Box<dyn IterativeWorkload> =
            iterative_workload_by_name(name, opts.scale).expect("known workload");
        w.set_iterations(iters);
        // The two finest granularities: where the dependency system hurts
        // most and replay is designed to win.
        let sizes: Vec<usize> = w.block_sizes().into_iter().take(2).collect();
        for (k, &bs) in sizes.iter().enumerate() {
            let rt = Runtime::new(RuntimeConfig::optimized().workers(workers));
            let normal_s = best_of(opts.reps, || w.run(&rt, bs));
            w.verify()
                .unwrap_or_else(|e| panic!("{name} normal bs={bs}: {e}"));
            drop(rt);
            let rt = Runtime::new(RuntimeConfig::optimized().workers(workers));
            let replay_s = best_of(opts.reps, || w.run_replay(&rt, bs));
            w.verify()
                .unwrap_or_else(|e| panic!("{name} replay bs={bs}: {e}"));
            drop(rt);
            let speedup = normal_s / replay_s;
            let bench_name = w.name();
            if k == 0 {
                finest.push((bench_name, speedup));
            }
            println!(
                "{bench_name},{bs},{},{normal_s:.6},{replay_s:.6},{speedup:.3}",
                w.ops_per_task(bs)
            );
            rows.push(Json::obj([
                ("benchmark", Json::from(bench_name)),
                ("block", Json::from(bs)),
                ("ops_per_task", Json::from(w.ops_per_task(bs))),
                ("iters", Json::from(iters)),
                ("normal_seconds", Json::from(normal_s)),
                ("replay_seconds", Json::from(replay_s)),
                ("speedup", Json::from(speedup)),
            ]));
        }
    }

    for (name, s) in &finest {
        println!("# finest-granularity per-iteration speedup {name}: {s:.2}x");
    }
    let target_met = finest
        .iter()
        .filter(|(n, _)| *n == "Heat" || *n == "HPCCG")
        .all(|(_, s)| *s >= 1.5);
    println!(
        "# replay >=1.5x on fine-grained heat+hpccg at {workers} workers: {}",
        if target_met { "MET" } else { "NOT MET" }
    );

    let doc = Json::obj([
        ("figure", Json::from("fig12_replay_speedup")),
        ("workers", Json::from(workers)),
        ("iters", Json::from(iters)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(opts.reps)),
        ("target_met", Json::from(target_met)),
        ("rows", Json::Arr(rows)),
    ]);
    match json::write_bench_json("fig12_replay_speedup", &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }
}
