//! Figure 11: operating-system noise effect on the scheduler.
//!
//! Injects synthetic kernel interrupts into worker 0 (the documented
//! perf_event substitution) while miniAMR runs repeatedly, then prints
//! the interrupt intervals and the DTLock serve histogram: while the
//! serving thread is stalled, ready tasks accumulate; after the
//! interrupt the surplus feeds all cores, changing the serve pattern —
//! the yellow-line regularity difference the paper describes.

use nanotask_bench::Opts;
use nanotask_core::{Platform, Runtime, RuntimeConfig};
use nanotask_trace::noise::NoiseConfig;
use nanotask_trace::timeline::{CoreState, Timeline};
use nanotask_workloads::workload_by_name;
use std::time::Duration;

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers_for(Platform::XEON);
    let noise = NoiseConfig {
        target_core: 0,
        period: Duration::from_micros(300),
        duration: Duration::from_micros(150),
        max_events: 16,
    };
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(workers)
            .tracing(true)
            .with_noise(noise),
    );
    let mut w = workload_by_name("miniamr", opts.scale).unwrap();
    let bs = w.block_sizes()[0];
    for _ in 0..20 {
        w.run(&rt, bs);
    }
    w.verify().expect("verification");
    let trace = rt.trace();
    let tl = Timeline::build(&trace);
    let interrupts: Vec<_> = tl
        .core_intervals(0)
        .iter()
        .filter(|iv| matches!(iv.state, CoreState::Interrupted))
        .collect();
    println!("# fig11: OS noise on the scheduler (miniAMR + synthetic interrupts)");
    println!("# interrupts observed on core 0: {}", interrupts.len());
    let stalled: u64 = interrupts.iter().map(|iv| iv.len()).sum();
    println!("# total stall: {} us", stalled / 1_000);
    println!("# serve histogram over 24 windows (bursts follow the stalls):");
    for (i, n) in tl.serve_histogram(24).iter().enumerate() {
        println!(
            "window {i:>2}: {:>4} {}",
            n,
            "*".repeat((*n as usize).min(70))
        );
    }
    println!("\n{}", tl.render_ascii(100));
}
