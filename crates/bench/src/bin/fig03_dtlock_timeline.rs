//! Figure 3: "timeline of five threads using a DelegationLock to add and
//! get ready task into the scheduler."
//!
//! Reproduces the paper's exact scenario deterministically against the
//! real `SyncScheduler`: Th0 inserts tasks T0–T3 through the wait-free
//! SPSC buffer, Th1–Th4 call `getReadyTask` one after the other. The
//! first to arrive acquires the DTLock, drains the buffer into the
//! scheduler, serves the registered waiters, takes one task itself and
//! unlocks. Th0 then inserts T4–T7 and a second round happens.
//!
//! Every step is verified, so this binary doubles as an executable
//! specification of Listing 5's behaviour.

use nanotask_core::sched::sync_sched::SyncScheduler;
use nanotask_core::sched::{Policy, Scheduler, TaskPtr};
use nanotask_core::task::Task;
use std::sync::Arc;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

fn t(n: usize) -> TaskPtr {
    TaskPtr(((n + 1) << 4) as *mut Task)
}

fn main() {
    let sched = Arc::new(SyncScheduler::new(5, 1, Policy::Fifo, 100));
    let t0 = Instant::now();
    let stamp = move || t0.elapsed().as_micros();

    println!("# fig03: five threads on the delegation scheduler (Listing 5 walk-through)");

    // Th0 creates and inserts T0..T3 into the SPSC buffer.
    for i in 0..4 {
        sched.add_ready(t(i), 0, None);
        println!(
            "[{:>6}us] Th0 addReadyTask(T{i})  -> wait-free SPSC buffer",
            stamp()
        );
    }

    // Th1..Th4 call getReadyTask concurrently. The first to get the
    // DTLock drains the buffer and serves the others.
    let phase = Arc::new(AtomicU32::new(0));
    let handles: Vec<_> = (1..=4)
        .map(|w| {
            let sched = Arc::clone(&sched);
            let phase = Arc::clone(&phase);
            std::thread::spawn(move || {
                // Stagger arrivals so the delegation order is stable.
                while phase.load(Ordering::Acquire) + 1 < w as u32 {
                    std::hint::spin_loop();
                }
                phase.fetch_add(1, Ordering::AcqRel);
                let got = sched.get_ready(w, None);
                (w, got)
            })
        })
        .collect();
    let mut got: Vec<(usize, Option<TaskPtr>)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    got.sort_by_key(|&(w, _)| w);
    for (w, task) in &got {
        let which = task
            .map(|p| format!("T{}", ((p.0 as usize) >> 4) - 1))
            .unwrap_or_else(|| "none".into());
        println!("[{:>6}us] Th{w} getReadyTask -> {which}", stamp());
    }
    assert!(
        got.iter().all(|(_, t)| t.is_some()),
        "all four threads got a task"
    );

    // Second wave: T4..T7, consumed via a mix of delegation and direct
    // acquisition, mirroring the figure's tail (Th3 re-enters first).
    for i in 4..8 {
        sched.add_ready(t(i), 0, None);
        println!(
            "[{:>6}us] Th0 addReadyTask(T{i})  -> wait-free SPSC buffer",
            stamp()
        );
    }
    let mut served = Vec::new();
    for w in [3usize, 2, 1, 4] {
        let task = sched.get_ready(w, None).expect("task available");
        served.push(((task.0 as usize) >> 4) - 1);
        println!(
            "[{:>6}us] Th{w} getReadyTask -> T{} (drain + serve inside the lock)",
            stamp(),
            ((task.0 as usize) >> 4) - 1
        );
    }
    served.sort();
    assert_eq!(served, vec![4, 5, 6, 7], "second wave fully delivered");
    assert_eq!(sched.approx_len(), 0);
    assert!(sched.get_ready(0, None).is_none());
    println!("# all 8 tasks delivered exactly once; scheduler empty — matches Figure 3");
}
