//! Figure 15 (new experiment): **NUMA-aware replay partitioning** — the
//! frozen replay graph as a locality-aware static schedule.
//!
//! The replay engine (fig12/fig14) freezes a whole iteration's task
//! graph up front but, before this experiment, still fed every released
//! task through the *releasing worker's* per-node SPSC buffer — throwing
//! away the one thing replay uniquely knows: the complete future
//! schedule. With `RuntimeConfig::with_replay_partitioning(true)` the
//! frozen graph is partitioned across the runtime's NUMA nodes (greedy
//! BFS growth from the roots, weighted by granule/affinity hints from
//! the recorded access declarations) and every released batch goes
//! straight to its partition's add buffer via the scheduler's
//! node-targeted insertion.
//!
//! Three replay-capable workloads (heat, miniAMR, cholesky) run across
//! the §6.2 ablation presets with partitioning off vs on. CSV:
//! `benchmark,variant,partitioned_s,baseline_s,speedup,routed_fraction,cut_edges,partitions`;
//! also writes `BENCH_fig15_numa_replay.json`.
//!
//! Acceptance (optimized preset, 4 workers, 2 NUMA nodes), three
//! machine-checkable clauses: (1) the per-node scheduler counters in
//! `RunReport` confirm ≥ 90 % of replayed releases were routed to their
//! assigned node's buffer; (2) the static schedule performs ≥ 5× fewer
//! *global* scheduler-lock (DTLock) acquisitions than the
//! non-partitioned release path — routed work synchronizes on
//! node-local partition-queue locks instead of the machine-wide DTLock;
//! (3) partitioned replay ≥ 1.15× over non-partitioned replay on at
//! least one workload — clause 3 needs real parallel hardware (on a
//! single-hardware-thread host, workers time-share one core and
//! placement cannot change wall time; the harness prints the host's
//! parallelism next to the verdict).
//!
//! Extra knobs: `NANOTASK_NUMA_NODES` (default 2), `NANOTASK_ITERS`
//! (timesteps per run, default 16), `NANOTASK_WORKERS` (default 4),
//! `NANOTASK_REPS` (best-of, default 3).

use std::time::Instant;

use nanotask_bench::Opts;
use nanotask_bench::json::{self, Json};
use nanotask_core::{NodeOpStats, RunReport, Runtime, RuntimeConfig};
use nanotask_replay::ReplayReport;
use nanotask_workloads::{IterativeWorkload, iterative_workload_by_name};

/// One measured configuration: best wall time over `reps` fresh
/// runtimes, plus the replay report and runtime report of the last rep
/// (a fresh runtime per rep keeps the cumulative counters per-run).
fn measure(
    mk: impl Fn() -> Runtime,
    w: &mut dyn IterativeWorkload,
    bs: usize,
    reps: usize,
) -> (f64, ReplayReport, RunReport) {
    let mut best = f64::INFINITY;
    let mut report = ReplayReport::default();
    let mut run_report = RunReport::default();
    for _ in 0..reps.max(1) {
        let rt = mk();
        let t0 = Instant::now();
        report = w.run_replay_report(&rt, bs);
        best = best.min(t0.elapsed().as_secs_f64());
        run_report = rt.run_report();
    }
    (best, report, run_report)
}

struct Row {
    benchmark: String,
    variant: String,
    part_s: f64,
    base_s: f64,
    report: ReplayReport,
    run_report: RunReport,
    base_report: ReplayReport,
    base_run_report: RunReport,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.base_s / self.part_s
    }

    /// How many times fewer *global* scheduler-lock (DTLock)
    /// acquisitions the partitioned run performed. This is a
    /// serialization-domain claim, not total-lock-op elimination: routed
    /// batches take node-local partition-queue locks instead
    /// (`SchedOpStats::lock_acquisitions` deliberately excludes those —
    /// shrinking the contention domain from machine-wide to node-wide is
    /// the mechanism being measured).
    fn lock_reduction(&self) -> f64 {
        let base = self.base_run_report.sched.lock_acquisitions.max(1) as f64;
        let part = self.run_report.sched.lock_acquisitions.max(1) as f64;
        base / part
    }

    /// Every release the engine routed, as counted by the *scheduler*:
    /// the fraction of `routed_releases` confirmed by node-targeted
    /// insertion counters (per-node `node_stats` where the scheduler has
    /// per-node structures, the aggregate `targeted_tasks` otherwise —
    /// Central has one queue, so only the aggregate exists). In [0, 1];
    /// 1.0 means the scheduler saw a targeted insert for every routed
    /// release.
    fn routed_fraction(&self) -> f64 {
        let routed = self.report.routed_releases;
        if routed == 0 {
            return 0.0;
        }
        let per_node: u64 = self
            .run_report
            .node_stats
            .iter()
            .map(|n| n.targeted_tasks)
            .sum();
        let targeted = if self.run_report.node_stats.is_empty() {
            self.run_report.sched.targeted_tasks
        } else {
            per_node
        };
        targeted.min(routed) as f64 / routed as f64
    }

    /// Releases the engine must have routed for every fully replayed
    /// iteration: tasks × replays of every cached graph. `routed_releases`
    /// can exceed this (diverged iterations route their fed prefix too);
    /// falling below it means some replayed release escaped routing.
    fn expected_replay_releases(&self) -> u64 {
        self.report
            .per_graph_replays
            .iter()
            .map(|&(_, t, r)| t as u64 * r)
            .sum()
    }

    /// Completeness: the engine routed at least every complete replay's
    /// releases.
    fn coverage_ok(&self) -> bool {
        self.report.routed_releases >= self.expected_replay_releases()
    }

    fn json(&self) -> Json {
        let nodes: Vec<Json> = self
            .run_report
            .node_stats
            .iter()
            .map(|n: &NodeOpStats| {
                Json::obj([
                    ("targeted_tasks", Json::from(n.targeted_tasks)),
                    ("home_tasks", Json::from(n.home_tasks)),
                ])
            })
            .collect();
        Json::obj([
            ("benchmark", Json::from(self.benchmark.clone())),
            ("variant", Json::from(self.variant.clone())),
            ("partitioned_seconds", Json::from(self.part_s)),
            ("baseline_seconds", Json::from(self.base_s)),
            ("speedup", Json::from(self.speedup())),
            ("iterations", Json::from(self.report.iterations)),
            ("replayed", Json::from(self.report.replayed)),
            ("rerecords", Json::from(self.report.rerecords)),
            ("partitions", Json::from(self.report.partitions)),
            ("routed_releases", Json::from(self.report.routed_releases)),
            ("cut_edges", Json::from(self.report.partition_cut_edges)),
            ("routed_fraction", Json::from(self.routed_fraction())),
            (
                "expected_replay_releases",
                Json::from(self.expected_replay_releases()),
            ),
            ("coverage_ok", Json::from(self.coverage_ok())),
            (
                "targeted_tasks",
                Json::from(self.run_report.sched.targeted_tasks),
            ),
            (
                "lock_acquisitions",
                Json::from(self.run_report.sched.lock_acquisitions),
            ),
            (
                "baseline_lock_acquisitions",
                Json::from(self.base_run_report.sched.lock_acquisitions),
            ),
            ("lock_reduction", Json::from(self.lock_reduction())),
            ("baseline_replayed", Json::from(self.base_report.replayed)),
            ("node_stats", Json::Arr(nodes)),
        ])
    }
}

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers.unwrap_or(4).clamp(1, 128);
    let numa = std::env::var("NANOTASK_NUMA_NODES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2)
        .clamp(1, workers.max(1));
    let iters = std::env::var("NANOTASK_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16)
        .max(4);
    println!(
        "# fig15_numa_replay: workers={workers} numa_nodes={numa} iters={iters} scale={} reps={}",
        opts.scale, opts.reps
    );
    println!(
        "# benchmark,variant,partitioned_s,baseline_s,speedup,routed_fraction,cut_edges,partitions"
    );

    let benches = ["heat", "miniamr", "cholesky"];
    let mut rows: Vec<Row> = Vec::new();
    for preset in RuntimeConfig::ablations() {
        for bench in benches {
            let mut w = iterative_workload_by_name(bench, opts.scale).expect("known workload");
            w.set_iterations(iters);
            // Mid granularity by default (NANOTASK_BS_IDX overrides):
            // partitioning pays through iteration-to-iteration cache
            // affinity, which needs data-heavy tasks — the finest blocks
            // are pure scheduler stress instead.
            let sizes = w.block_sizes();
            let bs_idx = std::env::var("NANOTASK_BS_IDX")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(sizes.len() / 2)
                .min(sizes.len() - 1);
            let bs = sizes[bs_idx];

            let mk = |partitioned: bool| {
                let preset = preset.clone();
                move || {
                    Runtime::new(
                        preset
                            .clone()
                            .workers(workers)
                            .with_numa_nodes(numa)
                            .with_replay_partitioning(partitioned),
                    )
                }
            };

            // Partitioning ON.
            let (part_s, report, run_report) = measure(mk(true), &mut *w, bs, opts.reps);
            w.verify()
                .unwrap_or_else(|e| panic!("{bench} partitioned: {e}"));
            report.assert_classification();

            // Partitioning OFF — the baseline.
            let (base_s, base_report, base_run_report) = measure(mk(false), &mut *w, bs, opts.reps);
            w.verify()
                .unwrap_or_else(|e| panic!("{bench} baseline: {e}"));
            base_report.assert_classification();

            rows.push(Row {
                benchmark: bench.to_string(),
                variant: preset.label.to_string(),
                part_s,
                base_s,
                report,
                run_report,
                base_report,
                base_run_report,
            });
        }
    }

    for r in &rows {
        println!(
            "{},{},{:.6},{:.6},{:.3},{:.3},{},{}",
            r.benchmark,
            r.variant,
            r.part_s,
            r.base_s,
            r.speedup(),
            r.routed_fraction(),
            r.report.partition_cut_edges,
            r.report.partitions,
        );
    }

    // Acceptance, three machine-checkable clauses on the optimized rows:
    //
    // 1. Routing — ≥ 90 % of replayed releases reached their assigned
    //    node's buffer (per-node `RunReport` counters). Hardware-
    //    independent.
    // 2. Serialization-domain reduction — the static schedule performs
    //    ≥ 5× fewer *global* scheduler-lock (DTLock) acquisitions than
    //    the non-partitioned release path: routed work synchronizes on
    //    node-local partition-queue locks instead of the machine-wide
    //    DTLock. Hardware-independent.
    // 3. Wall clock — partitioned replay ≥ 1.15× on at least one
    //    workload. This one needs real parallel hardware: on a host with
    //    a single hardware thread the workers time-share one core, so
    //    *placement* cannot change wall time (the same documented
    //    substitution as the paper-scale platform profiles — the claim
    //    is about the shape, and the routing/lock evidence above is the
    //    part a serialized host can still check).
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let optimized: Vec<&Row> = rows.iter().filter(|r| r.variant == "optimized").collect();
    let best = optimized
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("optimized rows");
    let routed_ok = optimized
        .iter()
        .all(|r| r.routed_fraction() >= 0.9 && r.coverage_ok());
    let best_locks = optimized
        .iter()
        .map(|r| r.lock_reduction())
        .fold(0.0f64, f64::max);
    let locks_ok = best_locks >= 5.0;
    let fast_enough = best.speedup() >= 1.15;
    println!(
        "# >=90% of replayed releases routed to assigned node (all optimized rows): {}",
        if routed_ok { "MET" } else { "NOT MET" }
    );
    println!(
        "# >=5x fewer global (DTLock) acquisitions under the static schedule \
         (work moves to node-local locks): {} ({best_locks:.1}x)",
        if locks_ok { "MET" } else { "NOT MET" }
    );
    println!(
        "# partitioned replay >=1.15x on at least one workload at {workers} workers/{numa} nodes: {} ({} {:.2}x)",
        if fast_enough { "MET" } else { "NOT MET" },
        best.benchmark,
        best.speedup()
    );
    if !fast_enough && host_threads < 2 {
        println!(
            "# note: host exposes {host_threads} hardware thread(s) — workers time-share one \
             core, so NUMA placement cannot change wall time here; the routing and lock-count \
             clauses above are the machine-checkable evidence on this host"
        );
    }
    let target_met = routed_ok && locks_ok && fast_enough;

    let doc = Json::obj([
        ("figure", Json::from("fig15_numa_replay")),
        ("workers", Json::from(workers)),
        ("numa_nodes", Json::from(numa)),
        ("iters", Json::from(iters)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(opts.reps)),
        ("host_threads", Json::from(host_threads)),
        ("routing_met", Json::from(routed_ok)),
        ("lock_reduction_met", Json::from(locks_ok)),
        ("speedup_met", Json::from(fast_enough)),
        ("target_met", Json::from(target_met)),
        ("rows", Json::Arr(rows.iter().map(Row::json).collect())),
    ]);
    match json::write_bench_json("fig15_numa_replay", &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }
}
