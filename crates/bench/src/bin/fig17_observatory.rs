//! Figure 17 (new experiment): the **observability layer proves
//! itself** — the sharded metrics registry against the legacy counter
//! structs, the exporters against their format contracts, and the whole
//! stack against a hard overhead budget.
//!
//! Three machine-checkable clauses (hard asserts — CI runs this harness
//! at smoke sizes, so a regression fails the build):
//!
//! 1. **Differential** — on a replayed heat run with metrics on, the
//!    registry snapshot must agree *field-by-field* with the legacy
//!    views: `RunReport` (task life cycle, all eight scheduler-op
//!    families, inline-successor counters, per-NUMA-node insertions) and
//!    `ReplayReport` (iteration classification, cache, partitioning).
//!    Both paths stay live — the structs are rebuilt from registry
//!    handles while the replay engine accumulates its bespoke report —
//!    so a drift in either one breaks the comparison.
//! 2. **Overhead** — turning metrics on (sampled latency histograms,
//!    ready-timestamp stamping, registry counters) must cost ≤ 5% on
//!    the fig16 chains workload — fine-granularity tasks where the
//!    per-task instrumentation is the largest relative cost. Measured
//!    interleaved with alternating within-round order and judged by the
//!    median of per-round ratios (the fig16 methodology);
//!    `NANOTASK_OBS_TOL` overrides the tolerance (default 1.05).
//! 3. **Exporters** — the Perfetto `trace.json` export parses as JSON
//!    and contains ≥ 1 complete task span per worker; the Prometheus
//!    text exposition passes line-by-line validation; the flight
//!    recorder captured ≥ 1 frame.
//!
//! CSV: `metric,registry,legacy` for the differential, then the
//! overhead summary; also writes `BENCH_fig17_observatory.json`.
//!
//! Extra knobs: `NANOTASK_WORKERS` (default 4), `NANOTASK_NUMA_NODES`
//! (default 2), `NANOTASK_ITERS` (timesteps, default 24),
//! `NANOTASK_CHAIN_LEN` (default 384), `NANOTASK_REPS` (rounds, min 5),
//! `NANOTASK_OBS_TOL` (overhead tolerance, default 1.05).

use std::time::Instant;

use nanotask_bench::Opts;
use nanotask_bench::json::{self, Json};
use nanotask_core::{Deps, Runtime, RuntimeConfig, SendPtr};
use nanotask_obs::{perfetto, prometheus};
use nanotask_replay::{ReplayReport, RunIterative};
use nanotask_workloads::iterative_workload_by_name;

/// One differential row: the same quantity read through the registry
/// snapshot and through the legacy struct view.
struct Field {
    name: String,
    registry: u64,
    legacy: u64,
}

/// Read every migrated counter family both ways on a freshly finished
/// runtime (fresh runtime → registry cumulative == this run's report).
fn differential_fields(rt: &Runtime, report: &ReplayReport) -> Vec<Field> {
    let snap = rt.metrics_snapshot();
    let rr = rt.run_report();
    let c = |name: &str| snap.counter(name).unwrap_or(u64::MAX);
    let g = |name: &str| snap.gauge(name).unwrap_or(u64::MAX);
    let mut f: Vec<Field> = Vec::new();
    let mut push = |name: &str, registry: u64, legacy: u64| {
        f.push(Field {
            name: name.to_string(),
            registry,
            legacy,
        })
    };

    // Task life cycle (RuntimeStats).
    push(
        "nanotask_tasks_created_total",
        c("nanotask_tasks_created_total"),
        rr.stats.tasks_created,
    );
    push(
        "nanotask_tasks_executed_total",
        c("nanotask_tasks_executed_total"),
        rr.stats.tasks_executed,
    );
    push(
        "nanotask_tasks_freed_total",
        c("nanotask_tasks_freed_total"),
        rr.stats.tasks_freed,
    );

    // Scheduler operations (SchedOpStats).
    push(
        "nanotask_sched_adds_total",
        c("nanotask_sched_adds_total"),
        rr.sched.adds,
    );
    push(
        "nanotask_sched_batch_adds_total",
        c("nanotask_sched_batch_adds_total"),
        rr.sched.batch_adds,
    );
    push(
        "nanotask_sched_batch_tasks_total",
        c("nanotask_sched_batch_tasks_total"),
        rr.sched.batch_tasks,
    );
    push(
        "nanotask_sched_pops_total",
        c("nanotask_sched_pops_total"),
        rr.sched.pops,
    );
    push(
        "nanotask_sched_pop_cache_hits_total",
        c("nanotask_sched_pop_cache_hits_total"),
        rr.sched.pop_cache_hits,
    );
    push(
        "nanotask_sched_lock_acquisitions_total",
        c("nanotask_sched_lock_acquisitions_total"),
        rr.sched.lock_acquisitions,
    );
    push(
        "nanotask_sched_targeted_batch_adds_total",
        c("nanotask_sched_targeted_batch_adds_total"),
        rr.sched.targeted_batch_adds,
    );
    push(
        "nanotask_sched_targeted_tasks_total",
        c("nanotask_sched_targeted_tasks_total"),
        rr.sched.targeted_tasks,
    );

    // Inline-successor counters (folded into RunReport).
    push(
        "nanotask_inline_runs_total",
        c("nanotask_inline_runs_total"),
        rr.inline_runs,
    );
    push(
        "nanotask_max_inline_depth",
        g("nanotask_max_inline_depth"),
        rr.max_inline_depth,
    );
    push(
        "nanotask_inline_routed_total",
        c("nanotask_inline_routed_total"),
        rr.sched.inline_routed,
    );

    // Per-NUMA-node insertions (labeled counters vs `node_stats`).
    for (node, ns) in rr.node_stats.iter().enumerate() {
        let label = node.to_string();
        let labels: [(&str, &str); 1] = [("node", &label)];
        push(
            &format!("nanotask_node_targeted_tasks_total{{node={node}}}"),
            snap.counter_with("nanotask_node_targeted_tasks_total", &labels)
                .unwrap_or(u64::MAX),
            ns.targeted_tasks,
        );
        push(
            &format!("nanotask_node_home_tasks_total{{node={node}}}"),
            snap.counter_with("nanotask_node_home_tasks_total", &labels)
                .unwrap_or(u64::MAX),
            ns.home_tasks,
        );
    }

    // Replay engine (registry mirror vs bespoke report).
    push(
        "nanotask_replay_iterations_total",
        c("nanotask_replay_iterations_total"),
        report.iterations as u64,
    );
    push(
        "nanotask_replay_replayed_total",
        c("nanotask_replay_replayed_total"),
        report.replayed as u64,
    );
    push(
        "nanotask_replay_rerecords_total",
        c("nanotask_replay_rerecords_total"),
        report.rerecords as u64,
    );
    push(
        "nanotask_replay_diverged_total",
        c("nanotask_replay_diverged_total"),
        report.diverged as u64,
    );
    push(
        "nanotask_replay_cache_hits_total",
        c("nanotask_replay_cache_hits_total"),
        report.cache_hits as u64,
    );
    push(
        "nanotask_replay_cache_misses_total",
        c("nanotask_replay_cache_misses_total"),
        report.cache_misses as u64,
    );
    push(
        "nanotask_replay_cache_evictions_total",
        c("nanotask_replay_cache_evictions_total"),
        report.cache_evictions,
    );
    push(
        "nanotask_replay_pinned_iterations_total",
        c("nanotask_replay_pinned_iterations_total"),
        report.pinned_iterations as u64,
    );
    push(
        "nanotask_replay_giveups_total",
        c("nanotask_replay_giveups_total"),
        report.giveups as u64,
    );
    push(
        "nanotask_replay_nested_spawns_total",
        c("nanotask_replay_nested_spawns_total"),
        report.nested_spawns,
    );
    push(
        "nanotask_replay_routed_releases_total",
        c("nanotask_replay_routed_releases_total"),
        report.routed_releases,
    );
    push(
        "nanotask_replay_frontier_rescans_total",
        c("nanotask_replay_frontier_rescans_total"),
        report.frontier_rescans,
    );
    push(
        "nanotask_replay_heap_ops_total",
        c("nanotask_replay_heap_ops_total"),
        report.heap_ops,
    );
    push(
        "nanotask_replay_partition_seeds_total",
        c("nanotask_replay_partition_seeds_total"),
        report.partition_seeds,
    );

    // Freeze/memory accounting (million-task scaling work).
    push(
        "nanotask_replay_freeze_ns_total",
        c("nanotask_replay_freeze_ns_total"),
        report.freeze_ns,
    );
    push(
        "nanotask_replay_tasks_recycled_total",
        c("nanotask_replay_tasks_recycled_total"),
        report.tasks_recycled,
    );
    push(
        "nanotask_replay_graph_bytes",
        g("nanotask_replay_graph_bytes"),
        report.graph_bytes,
    );
    push(
        "nanotask_replay_peak_task_bytes",
        g("nanotask_replay_peak_task_bytes"),
        report.peak_task_bytes,
    );

    // Allocator gauges, published absolutely at snapshot time from the
    // same AllocStats the legacy view reads.
    let a = &rr.stats.alloc;
    push(
        "nanotask_alloc_pool_hits",
        g("nanotask_alloc_pool_hits"),
        a.pool_hits,
    );
    push(
        "nanotask_alloc_pool_misses",
        g("nanotask_alloc_pool_misses"),
        a.pool_misses,
    );
    push(
        "nanotask_alloc_slab_bytes",
        g("nanotask_alloc_slab_bytes"),
        a.slab_bytes,
    );
    push(
        "nanotask_alloc_live_blocks",
        g("nanotask_alloc_live_blocks"),
        a.live,
    );
    push(
        "nanotask_alloc_oversize",
        g("nanotask_alloc_oversize"),
        a.oversize,
    );
    push(
        "nanotask_alloc_tasks_recycled",
        g("nanotask_alloc_tasks_recycled"),
        a.recycle_hits,
    );
    push(
        "nanotask_alloc_task_recycle_misses",
        g("nanotask_alloc_task_recycle_misses"),
        a.recycle_misses,
    );
    push(
        "nanotask_alloc_peak_live_tasks",
        g("nanotask_alloc_peak_live_tasks"),
        a.peak_live_tasks,
    );
    f
}

/// Count complete (`"ph":"X"`) spans per track in a parsed Trace-Event
/// document: `(tid, spans)` pairs, plus the distinct-track count.
fn spans_per_tid(doc: &Json) -> Vec<(u64, u64)> {
    let Json::Obj(pairs) = doc else {
        return Vec::new();
    };
    let Some(Json::Arr(events)) = pairs
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
    else {
        return Vec::new();
    };
    let mut out: Vec<(u64, u64)> = Vec::new();
    for e in events {
        let Json::Obj(fields) = e else { continue };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        if !matches!(get("ph"), Some(Json::Str(s)) if s == "X") {
            continue;
        }
        let Some(Json::Num(tid)) = get("tid") else {
            continue;
        };
        let tid = *tid as u64;
        match out.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, n)) => *n += 1,
            None => out.push((tid, 1)),
        }
    }
    out.sort_unstable();
    out
}

/// The fig16 chains workload at fine granularity: `chains` independent
/// readwrite chains of `len` tiny tasks through `run_iterative`. Returns
/// per-iteration seconds.
fn run_chains(rt: &Runtime, chains: usize, len: usize, iters: usize) -> f64 {
    const CELL_STRIDE: usize = 16;
    let mut cells = vec![0.0f64; chains * CELL_STRIDE];
    let base = SendPtr::new(cells.as_mut_ptr());
    let t0 = Instant::now();
    let report = rt.run_iterative(iters, move |ctx| {
        for c in 0..chains {
            let cell = unsafe { base.add(c * CELL_STRIDE) };
            for _ in 0..len {
                ctx.spawn_labeled(
                    "link",
                    Deps::new().readwrite_addr(cell.addr()),
                    move |_| unsafe {
                        let mut x = *cell.get();
                        for _ in 0..16 {
                            x = x.mul_add(1.000_000_1, 0.125);
                        }
                        *cell.get() = x * 0.5 + 0.000_001;
                    },
                );
            }
        }
    });
    let secs = t0.elapsed().as_secs_f64() / iters as f64;
    assert_eq!(report.replayed, iters - 1, "chains body must replay");
    secs
}

/// Median of per-round `on / off` time ratios.
fn median_ratio(on: &[f64], off: &[f64]) -> f64 {
    let mut ratios: Vec<f64> = on.iter().zip(off).map(|(a, b)| a / b).collect();
    ratios.sort_by(f64::total_cmp);
    let n = ratios.len();
    if n == 0 {
        return 1.0;
    }
    if n % 2 == 1 {
        ratios[n / 2]
    } else {
        (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
    }
}

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers.unwrap_or(4).clamp(1, 128);
    let numa = std::env::var("NANOTASK_NUMA_NODES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2)
        .clamp(1, workers.max(1));
    let iters = std::env::var("NANOTASK_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(24)
        .max(4);
    let chain_len = std::env::var("NANOTASK_CHAIN_LEN")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(384)
        .max(4);
    let tol = std::env::var("NANOTASK_OBS_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.05)
        .max(1.0);
    println!(
        "# fig17_observatory: workers={workers} numa_nodes={numa} iters={iters} \
         chain_len={chain_len} scale={} reps={} tol={tol:.2}",
        opts.scale, opts.reps
    );

    // ---- 1. Differential: replayed heat run, metrics + tracing on. ----
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(workers)
            .with_numa_nodes(numa)
            .with_replay_partitioning(true)
            .tracing(true)
            .with_metrics(true)
            .with_metrics_sample(1)
            .with_flight_recorder(256, 64),
    );
    let mut heat = iterative_workload_by_name("heat", opts.scale).expect("heat workload");
    heat.set_iterations(iters);
    let bs = heat.block_sizes()[0]; // finest blocks = most counter traffic
    let report = heat.run_replay_report(&rt, bs);
    heat.verify().unwrap_or_else(|e| panic!("heat: {e}"));
    report.assert_classification();

    println!("# metric,registry,legacy");
    let fields = differential_fields(&rt, &report);
    let mut mismatches: Vec<String> = Vec::new();
    for f in &fields {
        println!("{},{},{}", f.name, f.registry, f.legacy);
        if f.registry != f.legacy {
            mismatches.push(format!(
                "{}: registry={} legacy={}",
                f.name, f.registry, f.legacy
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "registry snapshot disagrees with the legacy views:\n{}",
        mismatches.join("\n")
    );
    let differential_ok = true;
    println!(
        "# differential: {} fields, registry == legacy on all: MET",
        fields.len()
    );

    // Sanity: the gated paths actually ran on this configuration.
    let snap = rt.metrics_snapshot();
    let exec_hist = snap
        .histogram("nanotask_task_exec_ns")
        .expect("exec histogram registered");
    assert!(
        exec_hist.count > 0,
        "metrics on: exec histogram must sample"
    );
    let feed_hist = snap
        .histogram("nanotask_replay_feed_ns")
        .expect("feed histogram registered");
    assert!(
        feed_hist.count > 0,
        "metrics on: feed histogram must sample"
    );

    // ---- 3a. Perfetto export: valid JSON, ≥1 span per worker. ----
    // Heat's dependence chains inline-route onto few workers; give the
    // trace a wide independent fan-out so every worker demonstrably runs
    // tasks (spinning bodies keep each batch in flight long enough for
    // idle workers to pick work up; repeat until all tracks are covered).
    let mut spans = Vec::new();
    for _attempt in 0..32 {
        rt.run(move |ctx| {
            for _ in 0..workers * 16 {
                ctx.spawn(Deps::new(), |_| {
                    let t0 = Instant::now();
                    while t0.elapsed().as_micros() < 50 {
                        std::hint::spin_loop();
                    }
                });
            }
        });
        let perfetto_json = perfetto::trace_json(&rt.trace());
        let doc = json::parse(&perfetto_json)
            .unwrap_or_else(|e| panic!("perfetto export is not valid JSON: {e}"));
        spans = spans_per_tid(&doc);
        if (0..workers as u64).all(|w| spans.iter().any(|&(tid, n)| tid == w && n > 0)) {
            break;
        }
    }
    let total_spans: u64 = spans.iter().map(|&(_, n)| n).sum();
    for w in 0..workers as u64 {
        assert!(
            spans.iter().any(|&(tid, n)| tid == w && n > 0),
            "worker {w} has no complete span in the Perfetto export \
             (tracks: {spans:?})"
        );
    }
    let perfetto_ok = true;
    println!(
        "# perfetto: valid JSON, {total_spans} complete spans across {} tracks: MET",
        spans.len()
    );

    // ---- 3b. Prometheus exposition: line-by-line validation. ----
    let prom_text = prometheus::render(&snap);
    let prom_lines = prometheus::validate(&prom_text)
        .unwrap_or_else(|e| panic!("prometheus exposition malformed: {e}"));
    assert!(prom_lines > 0, "prometheus dump must contain sample lines");
    let prometheus_ok = true;
    println!("# prometheus: {prom_lines} sample lines validated: MET");

    // ---- 3c. Flight recorder captured frames. ----
    let frames = rt.flight_frames();
    assert!(
        !frames.is_empty(),
        "flight recorder on (every=256) must have captured frames"
    );
    let flight_frames = frames.len();
    println!("# flight recorder: {flight_frames} frames: MET");

    // ---- 2. Overhead: metrics on vs off on the chains workload. ----
    let mk = |metrics: bool| {
        Runtime::new(
            RuntimeConfig::optimized()
                .workers(workers)
                .with_numa_nodes(numa)
                .with_replay_partitioning(true)
                .fast_path(true)
                .with_metrics(metrics),
        )
    };
    // The overhead clause gets floor sizes of its own: at CI smoke
    // scales (chain_len 64, 4 iterations) a single round is microseconds
    // and the ratio is pure noise. One warmup pair is discarded (first
    // touch of the runtime's arenas lands on whichever side goes first).
    let rounds = opts.reps.max(7);
    let o_len = chain_len.clamp(256, 2048);
    let o_iters = iters.max(16);
    let chains = 4usize;
    let mut on_samples = Vec::new();
    let mut off_samples = Vec::new();
    for round in 0..rounds + 1 {
        let order = if round % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for metrics in order {
            // Best of two back-to-back runs per side per round: the
            // minimum discards one-sided scheduler-noise spikes that a
            // single draw would fold into the round's ratio.
            let s = (0..2)
                .map(|_| run_chains(&mk(metrics), chains, o_len, o_iters))
                .fold(f64::INFINITY, f64::min);
            if round == 0 {
                continue; // warmup pair
            }
            if metrics {
                on_samples.push(s);
            } else {
                off_samples.push(s);
            }
        }
    }
    let overhead = median_ratio(&on_samples, &off_samples);
    let overhead_ok = overhead <= tol;
    println!(
        "# metrics-on overhead on chains: {overhead:.4}x (tolerance {tol:.2}x): {}",
        if overhead_ok { "MET" } else { "NOT MET" }
    );
    assert!(
        overhead_ok,
        "metrics-on overhead {overhead:.4}x exceeds the {tol:.2}x budget \
         (on: {on_samples:?}, off: {off_samples:?})"
    );

    let target_met = differential_ok && perfetto_ok && prometheus_ok && overhead_ok;
    let samples = |v: &[f64]| Json::Arr(v.iter().map(|&s| Json::from(s)).collect());
    let doc = Json::obj([
        ("figure", Json::from("fig17_observatory")),
        ("workers", Json::from(workers)),
        ("numa_nodes", Json::from(numa)),
        ("iters", Json::from(iters)),
        ("chain_len", Json::from(chain_len)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(rounds)),
        ("differential_fields", Json::from(fields.len())),
        ("differential_met", Json::from(differential_ok)),
        ("perfetto_spans", Json::from(total_spans)),
        ("perfetto_met", Json::from(perfetto_ok)),
        ("prometheus_lines", Json::from(prom_lines)),
        ("prometheus_met", Json::from(prometheus_ok)),
        ("flight_frames", Json::from(flight_frames)),
        ("overhead_ratio", Json::from(overhead)),
        ("overhead_tolerance", Json::from(tol)),
        ("overhead_met", Json::from(overhead_ok)),
        ("target_met", Json::from(target_met)),
        // The differential table doubles as the figure's `rows` array
        // (the common BENCH shape `validate_bench_json` checks).
        (
            "rows",
            Json::Arr(
                fields
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("metric", Json::from(f.name.clone())),
                            ("registry", Json::from(f.registry)),
                            ("legacy", Json::from(f.legacy)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("metrics_on_samples", samples(&on_samples)),
        ("metrics_off_samples", samples(&off_samples)),
    ]);
    match json::write_bench_json("fig17_observatory", &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }
}
