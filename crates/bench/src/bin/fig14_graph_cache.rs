//! Figure 14 (new experiment): the replay engine's **multi-graph cache**
//! on phase-alternating iterative bodies.
//!
//! PR 1's single-graph engine re-recorded on every structural
//! divergence, so a body alternating between a few shapes (miniAMR-style
//! refine/coarsen phases) re-recorded *every* iteration and never
//! replayed. This harness measures the graph cache against exactly that
//! baseline — the same runtime with `replay_cache_size = 1`, which is
//! byte-identical to the old engine — on two phase-alternating bodies:
//!
//! * **heat-2phase** — Gauss–Seidel timesteps alternating between two
//!   block sizes (2 distinct graph shapes);
//! * **miniAMR** — the AMR proxy whose refinement front moves with
//!   period 4 (4 distinct graph shapes, irregular task counts).
//!
//! Both run across the §6.2 ablation presets with the zero-queue fast
//! path off and on. CSV:
//! `benchmark,variant,fast_path,cached_s,baseline_s,speedup,rerecords,replayed,cache_hit_fraction`;
//! also writes `BENCH_fig14_graph_cache.json`.
//!
//! Acceptance (checked on the optimized preset, fast path off): the
//! 2-phase body reaches steady state — exactly 2 re-records, ≥ 90 % of
//! post-warmup iterations served from the cache — and cached replay is
//! ≥ 1.3× the re-record-every-time baseline per iteration at 4 workers.
//!
//! Extra knobs: `NANOTASK_ITERS` (timesteps per run, default 16),
//! `NANOTASK_WORKERS` (default 4), `NANOTASK_REPS` (best-of, default 3).

use std::time::Instant;

use nanotask_bench::Opts;
use nanotask_bench::json::{self, Json};
use nanotask_core::{Runtime, RuntimeConfig};
use nanotask_replay::ReplayReport;
use nanotask_workloads::heat::Heat;
use nanotask_workloads::miniamr::MiniAmr;
use nanotask_workloads::{IterativeWorkload, Workload};

/// One measured phase-alternating run: best wall time over `reps` plus
/// the (identical-per-rep) replay report of the last repetition.
fn best_of(reps: usize, mut f: impl FnMut() -> ReplayReport) -> (f64, ReplayReport) {
    let mut best = f64::INFINITY;
    let mut report = ReplayReport::default();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        report = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, report)
}

/// Fraction of post-warmup iterations (everything after the re-records)
/// served from the graph cache.
fn hit_fraction(r: &ReplayReport) -> f64 {
    let post = r.iterations.saturating_sub(r.rerecords);
    if post == 0 {
        0.0
    } else {
        r.replayed as f64 / post as f64
    }
}

struct Row {
    benchmark: &'static str,
    variant: String,
    fast: bool,
    cached_s: f64,
    baseline_s: f64,
    cached: ReplayReport,
    baseline: ReplayReport,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.cached_s
    }

    fn json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::from(self.benchmark)),
            ("variant", Json::from(self.variant.clone())),
            ("fast_path", Json::from(self.fast)),
            ("cached_seconds", Json::from(self.cached_s)),
            ("baseline_seconds", Json::from(self.baseline_s)),
            ("speedup", Json::from(self.speedup())),
            ("iterations", Json::from(self.cached.iterations)),
            ("rerecords", Json::from(self.cached.rerecords)),
            ("replayed", Json::from(self.cached.replayed)),
            ("diverged", Json::from(self.cached.diverged)),
            ("cache_hits", Json::from(self.cached.cache_hits)),
            ("cache_misses", Json::from(self.cached.cache_misses)),
            ("cache_evictions", Json::from(self.cached.cache_evictions)),
            (
                "pinned_iterations",
                Json::from(self.cached.pinned_iterations),
            ),
            ("cache_hit_fraction", Json::from(hit_fraction(&self.cached))),
            ("baseline_rerecords", Json::from(self.baseline.rerecords)),
            ("baseline_replayed", Json::from(self.baseline.replayed)),
        ])
    }
}

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers.unwrap_or(4).clamp(1, 128);
    let iters = std::env::var("NANOTASK_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16)
        .max(4);
    println!(
        "# fig14_graph_cache: workers={workers} iters={iters} scale={} reps={}",
        opts.scale, opts.reps
    );
    println!(
        "# benchmark,variant,fast_path,cached_s,baseline_s,speedup,rerecords,replayed,cache_hit_fraction"
    );

    let mut rows: Vec<Row> = Vec::new();
    for preset in RuntimeConfig::ablations() {
        for fast in [false, true] {
            let mk = |cache_size: usize| {
                Runtime::new(
                    preset
                        .clone()
                        .workers(workers)
                        .fast_path(fast)
                        .with_replay_cache_size(cache_size),
                )
            };

            // heat-2phase: alternating block sizes, 2 graph shapes.
            let mut heat = Heat::new(opts.scale).with_steps(iters);
            let sizes = heat.block_sizes();
            let phases = [sizes[0], sizes[1.min(sizes.len() - 1)]];
            let rt = mk(4);
            let (cached_s, cached) = best_of(opts.reps, || heat.run_phased_replay(&rt, &phases));
            heat.verify().unwrap_or_else(|e| panic!("heat cached: {e}"));
            drop(rt);
            let rt = mk(1);
            let (baseline_s, baseline) =
                best_of(opts.reps, || heat.run_phased_replay(&rt, &phases));
            heat.verify()
                .unwrap_or_else(|e| panic!("heat baseline: {e}"));
            drop(rt);
            rows.push(Row {
                benchmark: "heat-2phase",
                variant: preset.label.to_string(),
                fast,
                cached_s,
                baseline_s,
                cached,
                baseline,
            });

            // miniAMR: moving refinement front, 4 graph shapes.
            let mut amr = MiniAmr::new(opts.scale);
            nanotask_workloads::IterativeWorkload::set_iterations(&mut amr, iters);
            let bs = amr.block_sizes()[0];
            let rt = mk(4);
            let (cached_s, cached) = best_of(opts.reps, || amr.run_replay_report(&rt, bs));
            amr.verify()
                .unwrap_or_else(|e| panic!("miniAMR cached: {e}"));
            drop(rt);
            let rt = mk(1);
            let (baseline_s, baseline) = best_of(opts.reps, || amr.run_replay_report(&rt, bs));
            amr.verify()
                .unwrap_or_else(|e| panic!("miniAMR baseline: {e}"));
            drop(rt);
            rows.push(Row {
                benchmark: "miniAMR",
                variant: preset.label.to_string(),
                fast,
                cached_s,
                baseline_s,
                cached,
                baseline,
            });
        }
    }

    for r in &rows {
        println!(
            "{},{},{},{:.6},{:.6},{:.3},{},{},{:.3}",
            r.benchmark,
            r.variant,
            r.fast,
            r.cached_s,
            r.baseline_s,
            r.speedup(),
            r.cached.rerecords,
            r.cached.replayed,
            hit_fraction(&r.cached),
        );
    }

    // Acceptance: optimized preset, fast path off, 2-phase heat.
    let probe = rows
        .iter()
        .find(|r| r.benchmark == "heat-2phase" && r.variant == "optimized" && !r.fast)
        .expect("optimized heat-2phase row");
    let steady = probe.cached.rerecords == 2 && hit_fraction(&probe.cached) >= 0.9;
    let fast_enough = probe.speedup() >= 1.3;
    println!(
        "# 2-phase steady state (2 rerecords, >=90% cached post-warmup): {}",
        if steady { "MET" } else { "NOT MET" }
    );
    println!(
        "# cached replay >=1.3x over re-record-every-time at {workers} workers: {} ({:.2}x)",
        if fast_enough { "MET" } else { "NOT MET" },
        probe.speedup()
    );
    let target_met = steady && fast_enough;

    let doc = Json::obj([
        ("figure", Json::from("fig14_graph_cache")),
        ("workers", Json::from(workers)),
        ("iters", Json::from(iters)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(opts.reps)),
        ("target_met", Json::from(target_met)),
        ("rows", Json::Arr(rows.iter().map(Row::json).collect())),
    ]);
    match json::write_bench_json("fig14_graph_cache", &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }
}
