//! Figure 8: vs OpenMP-style runtimes, AMD Rome profile (AOCC shares the
//! LLVM runtime). Benchmarks: HPCCG, NBody, miniAMR, Matmul.

use nanotask_bench::{Opts, run_figure};
use nanotask_core::{Platform, RuntimeConfig};

fn main() {
    run_figure(
        "fig08-vs-openmp-rome",
        Platform::ROME,
        &["hpccg", "nbody", "miniamr", "matmul"],
        &[
            RuntimeConfig::optimized(),
            RuntimeConfig::openmp_gcc_like(),
            RuntimeConfig::openmp_llvm_like(),
        ],
        Opts::from_env(),
    );
}
