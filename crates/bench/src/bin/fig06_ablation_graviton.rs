//! Figure 6: ablation efficiency vs granularity, ARM Graviton2 profile
//! (single NUMA domain). Benchmarks: Heat, HPCCG, miniAMR, Matmul.

use nanotask_bench::{Opts, run_figure};
use nanotask_core::{Platform, RuntimeConfig};

fn main() {
    run_figure(
        "fig06-ablation-graviton",
        Platform::GRAVITON2,
        &["heat", "hpccg", "miniamr", "matmul"],
        &RuntimeConfig::ablations(),
        Opts::from_env(),
    );
}
