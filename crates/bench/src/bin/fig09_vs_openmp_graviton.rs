//! Figure 9: vs OpenMP-style runtimes, ARM Graviton2 profile.
//! Benchmarks: Heat, HPCCG, miniAMR, Matmul.

use nanotask_bench::{Opts, run_figure};
use nanotask_core::{Platform, RuntimeConfig};

fn main() {
    run_figure(
        "fig09-vs-openmp-graviton",
        Platform::GRAVITON2,
        &["heat", "hpccg", "miniamr", "matmul"],
        &[
            RuntimeConfig::optimized(),
            RuntimeConfig::openmp_gcc_like(),
            RuntimeConfig::openmp_llvm_like(),
        ],
        Opts::from_env(),
    );
}
