//! Figure 7: optimized runtime vs work-stealing OpenMP-style runtimes,
//! Intel Xeon profile. Benchmarks: Heat, DotProduct, miniAMR, Cholesky.
//! Variants: nanotask (≙ Nanos6), GCC-like, LLVM-like (≙ also Intel,
//! which shares the LLVM runtime architecture).

use nanotask_bench::{Opts, run_figure};
use nanotask_core::{Platform, RuntimeConfig};

fn main() {
    run_figure(
        "fig07-vs-openmp-xeon",
        Platform::XEON,
        &["heat", "dotprod", "miniamr", "cholesky"],
        &[
            RuntimeConfig::optimized(),
            RuntimeConfig::openmp_gcc_like(),
            RuntimeConfig::openmp_llvm_like(),
        ],
        Opts::from_env(),
    );
}
