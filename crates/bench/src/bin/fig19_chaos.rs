//! Figure 19 (new experiment): **fault-tolerant execution** under
//! deterministic fault injection.
//!
//! Four row families, every one a hard acceptance guard:
//!
//! * **fault-matrix** — an injected mid-chain panic
//!   ([`FaultPlan::panic_at`]) on every scheduler × dependency-system
//!   combination: the run must terminate with exactly one recorded
//!   failure, the exact transitive-successor cancellation count, zero
//!   leaked tasks (create/free counters balance), and a subsequent
//!   fault-free `run_iterative` on the *same* runtime must replay from
//!   a fresh recording.
//! * **replay-recovery** — a planted body panic mid-`run_iterative`:
//!   the faulted iteration cancels the frozen graph's successors, the
//!   cached graph is invalidated, and the engine re-records and returns
//!   to steady-state replay on the next shape occurrence.
//! * **watchdog** — a planted never-completing task: the stall watchdog
//!   converts the hang into a [`FailureKind::WatchdogStall`] diagnostic
//!   within a bounded wall-clock window.
//! * **overhead** — an armed-but-never-firing plan + watchdog versus a
//!   plain runtime on a fault-free task soup: per-run best-of ratio
//!   must stay ≤ 1.03 (the paper-style "robustness is free" claim).
//!
//! CSV: `row,variant,detail,value,target,met`; also writes
//! `BENCH_fig19_chaos.json`.
//!
//! Extra knobs: `NANOTASK_WORKERS` (default 4), `NANOTASK_REPS`
//! (overhead best-of, default 5), `NANOTASK_SCALE` (overhead task
//! count multiplier).

use std::time::Instant;

use nanotask_bench::Opts;
use nanotask_bench::json::{self, Json};
use nanotask_core::sched::{LockKind, WsVariant};
use nanotask_core::{
    Deps, DepsKind, FAULT_PANIC_PREFIX, FailureKind, FaultPlan, Runtime, RuntimeConfig, SchedKind,
    SendPtr,
};
use nanotask_replay::RunIterative;

/// Chain length for the fault-matrix rows.
const CHAIN: u64 = 64;
/// 0-based index of the eligible body the injector kills. Chosen so the
/// follow-up `run_iterative` (3 × 12 = 36 eligible bodies) stays below
/// it and the still-armed plan never re-fires.
const KILL_AT: u64 = 40;
/// Follow-up iterative shape: iterations × chain tasks per iteration.
const ITER_ROUNDS: usize = 3;
const ITER_CHAIN: u64 = 12;

struct Row {
    row: &'static str,
    variant: String,
    detail: String,
    value: f64,
    target: f64,
    met: bool,
    extra: Vec<(&'static str, Json)>,
}

impl Row {
    fn json(&self) -> Json {
        let mut fields = vec![
            ("row", Json::from(self.row)),
            ("variant", Json::from(self.variant.clone())),
            ("detail", Json::from(self.detail.clone())),
            ("value", Json::from(self.value)),
            ("target", Json::from(self.target)),
            ("met", Json::from(self.met)),
        ];
        fields.extend(self.extra.iter().map(|(k, v)| (*k, v.clone())));
        Json::obj(fields)
    }

    fn print(&self) {
        println!(
            "{},{},{},{:.6},{:.6},{}",
            self.row, self.variant, self.detail, self.value, self.target, self.met
        );
    }
}

/// The §6 fault-matrix axes: one representative per scheduler family,
/// crossed with both dependency systems.
fn matrix() -> Vec<(String, SchedKind, DepsKind)> {
    let scheds = [
        ("delegation", SchedKind::Delegation),
        ("central-ptlock", SchedKind::Central(LockKind::PtLock)),
        ("worksteal-lifo", SchedKind::WorkSteal(WsVariant::LifoLocal)),
    ];
    let deps = [
        ("waitfree", DepsKind::WaitFree),
        ("locking", DepsKind::Locking),
    ];
    let mut v = Vec::new();
    for (sn, s) in scheds {
        for (dn, d) in deps {
            v.push((format!("{sn}+{dn}"), s, d));
        }
    }
    v
}

/// Fault-matrix row: serialized `CHAIN`-long writer chain with the
/// injector armed at `KILL_AT`, then a fault-free iterative follow-up on
/// the same (still-armed) runtime. Every assertion here is an ISSUE-10
/// acceptance criterion — the harness panics on violation.
fn fault_matrix_row(variant: &str, sched: SchedKind, deps: DepsKind, workers: usize) -> Row {
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .scheduler(sched)
            .dependency_system(deps)
            .workers(workers)
            .with_fault_plan(FaultPlan::panic_at(KILL_AT)),
    );

    let cell = Box::into_raw(Box::new(0u64));
    let p = SendPtr::new(cell);
    let outcome = rt.run_outcome(move |ctx| {
        let addr = p.addr();
        for _ in 0..CHAIN {
            let q = SendPtr::new(p.get());
            ctx.spawn(Deps::new().readwrite_addr(addr), move |_| {
                // SAFETY: serialized by the readwrite chain.
                unsafe { *q.get() += 1 };
            });
        }
    });
    let executed = unsafe { *cell };

    assert_eq!(
        outcome.failures.len(),
        1,
        "{variant}: exactly one failure, got: {}",
        outcome.summary()
    );
    assert_eq!(outcome.failures[0].kind, FailureKind::Panic, "{variant}");
    let expect_cancelled = CHAIN - KILL_AT - 1;
    assert_eq!(
        outcome.tasks_cancelled, expect_cancelled,
        "{variant}: cancelled set = transitive successors of the victim"
    );
    assert!(outcome.completed, "{variant}: graph drained");
    assert_eq!(
        executed, KILL_AT,
        "{variant}: predecessors ran, victim + successors did not"
    );
    assert_eq!(rt.live_tasks(), 0, "{variant}: no leaked tasks");
    let s = rt.stats();
    assert_eq!(
        s.tasks_created, s.tasks_freed,
        "{variant}: create/free counters balance"
    );

    // Fault-free `run_iterative` on the same runtime: a fresh recording,
    // steady-state replay, no residual poison from the failed run.
    let (report, iter_outcome) = rt.run_iterative_outcome(ITER_ROUNDS, move |ctx| {
        let addr = p.addr();
        for _ in 0..ITER_CHAIN {
            let q = SendPtr::new(p.get());
            ctx.spawn(Deps::new().readwrite_addr(addr), move |_| {
                // SAFETY: serialized by the readwrite chain.
                unsafe { *q.get() += 1 };
            });
        }
    });
    assert!(
        iter_outcome.is_ok(),
        "{variant}: follow-up iterative run is fault-free: {}",
        iter_outcome.summary()
    );
    assert_eq!(report.faulted, 0, "{variant}: {report}");
    assert_eq!(report.rerecords, 1, "{variant}: fresh recording: {report}");
    assert_eq!(
        report.replayed,
        ITER_ROUNDS - 1,
        "{variant}: steady-state replay: {report}"
    );
    let after = unsafe { *cell };
    assert_eq!(
        after,
        KILL_AT + ITER_ROUNDS as u64 * ITER_CHAIN,
        "{variant}: every follow-up body ran"
    );
    assert_eq!(rt.live_tasks(), 0, "{variant}");
    unsafe { drop(Box::from_raw(cell)) };

    Row {
        row: "fault-matrix",
        variant: variant.to_string(),
        detail: format!("panic_at={KILL_AT} chain={CHAIN}"),
        value: outcome.tasks_cancelled as f64,
        target: expect_cancelled as f64,
        met: true,
        extra: vec![
            ("failures", Json::from(outcome.failures.len())),
            ("executed_before_fault", Json::from(executed)),
            ("iter_rerecords", Json::from(report.rerecords)),
            ("iter_replayed", Json::from(report.replayed)),
        ],
    }
}

/// Replay-recovery row: a planted panic in iteration 2 of 6 must fault
/// exactly that iteration, cancel the frozen graph's successor set, and
/// re-record back to steady state.
fn replay_recovery_row(workers: usize) -> Row {
    let rt = Runtime::new(
        RuntimeConfig::optimized()
            .workers(workers)
            // Never fires; installs the quiet-panic hook for the plant.
            .with_fault_plan(FaultPlan::never()),
    );
    const ITERS: usize = 6;
    const TASKS: u64 = 10;
    const FAULT_ITER: usize = 2;
    const FAULT_TASK: u64 = 4;

    let cell = Box::into_raw(Box::new(0u64));
    let p = SendPtr::new(cell);
    let it = std::sync::atomic::AtomicUsize::new(0);
    let (report, outcome) = rt.run_iterative_outcome(ITERS, move |ctx| {
        let round = it.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let addr = p.addr();
        for k in 0..TASKS {
            let q = SendPtr::new(p.get());
            ctx.spawn(Deps::new().readwrite_addr(addr), move |_| {
                if round == FAULT_ITER && k == FAULT_TASK {
                    std::panic::panic_any(format!("{FAULT_PANIC_PREFIX}: planted"));
                }
                // SAFETY: serialized by the readwrite chain.
                unsafe { *q.get() += 1 };
            });
        }
    });

    assert_eq!(report.faulted, 1, "one faulted iteration: {report}");
    assert_eq!(outcome.failures.len(), 1, "{}", outcome.summary());
    let expect_cancelled = TASKS - FAULT_TASK - 1;
    assert_eq!(outcome.tasks_cancelled, expect_cancelled, "{report}");
    assert!(outcome.completed);
    // 5 clean iterations ran all TASKS bodies; the faulted one ran only
    // the victim's predecessors.
    let expect = (ITERS as u64 - 1) * TASKS + FAULT_TASK;
    assert_eq!(unsafe { *cell }, expect, "{report}");
    // Initial record + post-fault re-record; everything else replayed
    // (the faulted iteration itself ran from the frozen graph, so it
    // counts as replayed too).
    assert_eq!(report.rerecords, 2, "{report}");
    assert_eq!(report.replayed, ITERS - 2, "{report}");
    assert_eq!(rt.live_tasks(), 0);
    unsafe { drop(Box::from_raw(cell)) };

    Row {
        row: "replay-recovery",
        variant: "optimized".to_string(),
        detail: format!("iters={ITERS} fault_iter={FAULT_ITER}"),
        value: report.faulted as f64,
        target: 1.0,
        met: true,
        extra: vec![
            ("cancelled", Json::from(outcome.tasks_cancelled)),
            ("rerecords", Json::from(report.rerecords)),
            ("replayed", Json::from(report.replayed)),
        ],
    }
}

/// Watchdog row: a never-released held task must trip the stall
/// watchdog instead of hanging the run forever.
fn watchdog_row() -> Row {
    let timeout = std::time::Duration::from_millis(80);
    let rt = Runtime::new(RuntimeConfig::optimized().workers(2).with_watchdog(timeout));
    let t0 = Instant::now();
    let outcome = rt.run_outcome(|ctx| {
        let _stuck = ctx.spawn_held("stuck", 0, vec![], |_| {});
    });
    let elapsed = t0.elapsed().as_secs_f64();

    assert_eq!(outcome.failures.len(), 1, "{}", outcome.summary());
    assert_eq!(outcome.failures[0].kind, FailureKind::WatchdogStall);
    assert!(!outcome.completed);
    // Trip must be bounded: well under 100 windows even on a loaded CI
    // box (the monitor polls at timeout/4 granularity).
    let bound = timeout.as_secs_f64() * 100.0;
    assert!(elapsed < bound, "watchdog tripped in {elapsed:.3}s");

    Row {
        row: "watchdog",
        variant: "optimized".to_string(),
        detail: format!("timeout={}ms", timeout.as_millis()),
        value: elapsed,
        target: bound,
        met: true,
        extra: vec![(
            "diagnostic_len",
            Json::from(outcome.failures[0].message.len()),
        )],
    }
}

/// Overhead row: armed-but-silent plan + watchdog vs plain runtime on a
/// fault-free soup of small compute tasks. Best-of-`reps` wall ratio.
fn overhead_row(workers: usize, reps: usize, scale: usize) -> Row {
    let tasks = 4000 * scale;
    let soup = move |rt: &Runtime| {
        let outcome = rt.run_outcome(move |ctx| {
            for i in 0..tasks {
                ctx.spawn(Deps::new(), move |_| {
                    // ~200 adds: enough work that one injection check
                    // is marginal, small enough to stress the per-task
                    // fault bookkeeping.
                    let mut acc = i as u64;
                    for j in 0..200u64 {
                        acc = acc.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(j);
                    }
                    std::hint::black_box(acc);
                });
            }
        });
        assert!(outcome.is_ok(), "{}", outcome.summary());
    };
    let best = |rt: &Runtime| {
        soup(rt); // warmup
        let mut b = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            soup(rt);
            b = b.min(t0.elapsed().as_secs_f64());
        }
        b
    };

    let plain = Runtime::new(RuntimeConfig::optimized().workers(workers));
    let plain_s = best(&plain);
    drop(plain);
    let armed = Runtime::new(
        RuntimeConfig::optimized()
            .workers(workers)
            .with_fault_plan(FaultPlan::never())
            .with_watchdog(std::time::Duration::from_secs(10)),
    );
    let armed_s = best(&armed);
    drop(armed);

    let ratio = armed_s / plain_s;
    Row {
        row: "overhead",
        variant: "optimized".to_string(),
        detail: format!("tasks={tasks} reps={reps}"),
        value: ratio,
        target: 1.03,
        met: ratio <= 1.03,
        extra: vec![
            ("plain_seconds", Json::from(plain_s)),
            ("armed_seconds", Json::from(armed_s)),
        ],
    }
}

fn main() {
    let opts = Opts::from_env();
    let workers = opts.workers.unwrap_or(4).clamp(1, 128);
    let reps = opts.reps.max(5);
    println!(
        "# fig19_chaos: workers={workers} reps={reps} scale={}",
        opts.scale
    );
    println!("# row,variant,detail,value,target,met");

    let mut rows = Vec::new();
    for (variant, sched, deps) in matrix() {
        let r = fault_matrix_row(&variant, sched, deps, workers.min(4));
        r.print();
        rows.push(r);
    }
    let r = replay_recovery_row(workers.min(4));
    r.print();
    rows.push(r);
    let r = watchdog_row();
    r.print();
    rows.push(r);
    let r = overhead_row(workers, reps, opts.scale);
    r.print();
    rows.push(r);

    let overhead = rows.last().unwrap();
    println!(
        "# no-fault overhead <= 3%: {} ({:.4}x)",
        if overhead.met { "MET" } else { "NOT MET" },
        overhead.value
    );
    let target_met = rows.iter().all(|r| r.met);

    let doc = Json::obj([
        ("figure", Json::from("fig19_chaos")),
        ("workers", Json::from(workers)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(reps)),
        ("target_met", Json::from(target_met)),
        ("rows", Json::Arr(rows.iter().map(Row::json).collect())),
    ]);
    match json::write_bench_json("fig19_chaos", &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }

    // The correctness rows hard-assert inline; the overhead guard is
    // the one soft measurement — enforce it here so CI smoke fails loud.
    assert!(
        overhead.value <= 1.03,
        "no-fault overhead {:.4}x exceeds 1.03x",
        overhead.value
    );
}
