//! Figure 10: scheduler lock comparison on miniAMR traces.
//!
//! Runs the miniAMR proxy with tracing — once with the wait-free queues +
//! DTLock (upper trace of the figure) and once with the PTLock-protected
//! central scheduler (lower trace) — and prints the quantities the figure
//! visualizes. The paper's khaki "starving" cores show up here in two
//! forms: explicit idle intervals, and *unaccounted* wall-clock (time a
//! worker is stuck spinning in the scheduler lock, which is exactly what
//! the PTLock variant suffers: "adding and getting a ready task requires
//! obtaining a shared lock ... most cores starve").
//!
//! The second section is replay-aware: a traced `run_iterative` of the
//! heat workload is split into its **record** and **replay** phases via
//! the `ReplayRecordBegin/End` / `ReplayIterBegin/End` events
//! (`Timeline::record_vs_replay`), quantifying what the replay subsystem
//! claims — replayed iterations spend a larger fraction of their
//! wall-clock running task bodies because dependency registration and
//! release are gone.

use nanotask_bench::Opts;
use nanotask_core::{Platform, Runtime, RuntimeConfig};
use nanotask_trace::timeline::{PhaseStats, Timeline};
use nanotask_workloads::heat::Heat;
use nanotask_workloads::{Workload, workload_by_name};
use std::time::Instant;

struct Row {
    label: String,
    tasks_per_s: f64,
    run_frac: f64,
    serves: usize,
    drained: u64,
    tl: Timeline,
}

fn run_one(cfg: RuntimeConfig, opts: Opts) -> Row {
    let label = cfg.label.to_string();
    let workers = opts.workers_for(Platform::XEON);
    let rt = Runtime::new(cfg.workers(workers).tracing(true));
    let mut w: Box<dyn Workload> = workload_by_name("miniamr", opts.scale).unwrap();
    let bs = w.block_sizes()[0]; // finest granularity = max scheduler stress
    let t0 = Instant::now();
    for _ in 0..20 {
        w.run(&rt, bs); // repeat to build a statistically useful trace
    }
    let dt = t0.elapsed().as_secs_f64();
    w.verify().expect("miniAMR verification");
    let tl = Timeline::build(&rt.trace());
    let total = tl.total_stats();
    let (s, e) = tl.span();
    let wall = ((e - s).max(1) as f64) * workers as f64;
    Row {
        label,
        tasks_per_s: total.tasks_run as f64 / dt,
        run_frac: total.running_ns as f64 / wall,
        serves: tl.serves().len(),
        drained: tl.drains().iter().map(|&(_, n)| n).sum(),
        tl,
    }
}

fn main() {
    let opts = Opts::from_env();
    println!("# fig10: PTLock vs DTLock scheduler traces (miniAMR, finest blocks, 20 rounds)");
    let rows = [
        run_one(RuntimeConfig::optimized(), opts),
        run_one(RuntimeConfig::without_dtlock(), opts),
    ];
    println!(
        "# {:<28} {:>12} {:>10} {:>8} {:>9}",
        "variant", "tasks/s", "running%", "serves", "drained"
    );
    for r in &rows {
        println!(
            "  {:<28} {:>12.0} {:>9.1}% {:>8} {:>9}",
            r.label,
            r.tasks_per_s,
            100.0 * r.run_frac,
            r.serves,
            r.drained
        );
    }
    println!("# paper's observation: the DTLock version keeps task insertion wait-free and");
    println!("# serves ready tasks to waiters (yellow arrows); the PTLock version serializes");
    println!("# both paths, so cores spend their time fighting for the lock instead of running.");
    for r in &rows {
        println!("\n## timeline: {}", r.label);
        print!("{}", r.tl.render_ascii(100));
    }

    replay_phase_split(opts);
}

/// Replay-aware timeline analysis: split a traced `run_iterative` of the
/// heat workload into record vs replay phases and compare how the cores
/// spend their time in each.
fn replay_phase_split(opts: Opts) {
    let workers = opts.workers_for(Platform::XEON);
    let rt = Runtime::new(RuntimeConfig::optimized().workers(workers).tracing(true));
    let mut heat = Heat::new(opts.scale).with_steps(12);
    let bs = heat.block_sizes()[0]; // finest blocks = most runtime stress
    nanotask_workloads::IterativeWorkload::run_replay(&mut heat, &rt, bs);
    heat.verify().expect("heat verification");
    let tl = Timeline::build(&rt.trace());
    println!("\n## record vs replay phase split (heat, 12 timesteps, finest blocks)");
    match tl.record_vs_replay() {
        None => println!("# no phase events in trace (tracing off?)"),
        Some((rec, rep)) => {
            let fmt = |label: &str, p: &PhaseStats| {
                let run_frac = if p.wall_ns == 0 {
                    0.0
                } else {
                    p.stats.running_ns as f64 / (p.wall_ns as f64 * workers as f64)
                };
                println!(
                    "  {label:<8} windows={:<3} mean_window={:>9}ns tasks={:<6} running%={:>5.1} idle%={:>5.1}",
                    p.windows,
                    p.mean_window_ns(),
                    p.stats.tasks_run,
                    100.0 * run_frac,
                    100.0 * p.stats.starvation(),
                );
            };
            fmt("record", &rec);
            fmt("replay", &rep);
            if rec.mean_window_ns() > 0 && rep.mean_window_ns() > 0 {
                println!(
                    "# mean replayed iteration is {:.2}x the mean recorded one (wall-clock)",
                    rec.mean_window_ns() as f64 / rep.mean_window_ns() as f64
                );
            }
            // The first phase windows in time order, as a sanity trail.
            for p in tl.replay_phases().iter().take(6) {
                println!("#   phase={:?} iter={} span={}ns", p.phase, p.iter, p.len());
            }
        }
    }
}
