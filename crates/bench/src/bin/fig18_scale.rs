//! Figure 18 (new experiment): **million-task graphs** — memory-side
//! scaling of the packed one-word task state, slab-recycled task
//! objects, and the O(n) record→freeze path.
//!
//! §4 of the paper argues that once the scheduler and dependency system
//! stop serializing, the *allocator* is the next bottleneck. At the
//! ROADMAP's 10^6–10^7-node production target three memory costs
//! dominate everything figs 4–16 optimized:
//!
//! * **Task header size** — the life-cycle quartet
//!   (`blockers`/`live_children`/`removal_refs`/`fully_done`) is now one
//!   packed `AtomicU64`, the bottom map is demand-created (leaves never
//!   touch it), and cold fields hide behind one pointer-sized option.
//! * **Allocator churn** — freed task shells park in a `TaskSlab`
//!   free-list *with their interior capacity* and are recycled on the
//!   next spawn instead of round-tripping through dealloc/alloc.
//! * **Freeze cost** — the recorded trace freezes into CSR arenas in
//!   O(n + e): stamp-based edge dedup, counting-sort CSR scatter, and
//!   reusable scratch buffers replace the global sort + per-node
//!   transient allocations.
//!
//! Three synthetic families sweep task counts in doublings from 1024 up
//! to `NANOTASK_FIG18_MAX_TASKS` (default `8192 × scale`, capped at
//! 2^20; the acceptance run uses `1048576`): `chains` (1 dep/task, the
//! distilled successor pattern), `stencil` (heat-like 1D, ~3 deps/task)
//! and `tiles` (cholesky-like 2D wavefront, ~2 deps/task). Every sweep
//! point runs in a **fresh child process** (see [`CHILD_ENV`]): a long
//! in-process sweep fragments the allocator, and late points then pay
//! several-fold inflated freeze times that measure sweep order rather
//! than graph size. CSV:
//! `family,tasks,freeze_ms,ns_per_task,bytes_per_task,recycle_rate,maps`;
//! also writes `BENCH_fig18_scale.json`.
//!
//! **Hard guards** (CI runs this harness at smoke sizes):
//!
//! * near-linear freeze time, in three clauses that separate
//!   compounding algorithmic growth from one-time cache cliffs: no
//!   single size doubling grows > 3.5× (plus a 0.5 ms additive slack
//!   that absorbs timer noise at the sub-millisecond sizes — the
//!   working set leaving a cache level steps per-task cost once, e.g.
//!   chains around 2^15→2^16, and is allowed; a blow-up is not),
//!   compounded growth across the whole sweep stays within a
//!   2.6×-per-doubling budget (cliffs don't compound, O(n^1.4+) does),
//!   and when the sweep reaches 2^20 tasks,
//!   `freeze(2^20) ≤ 1.3 × 8 × freeze(2^17)` — within 1.3× of linear
//!   extrapolation from 10^5-scale, the sharpest clause;
//! * per-task frozen-graph bytes flat across each family's sweep
//!   (± 16 B of the largest size's value) — the CSR arenas carry no
//!   superlinear structure;
//! * slab recycle hits > 0 on every row and post-warmup recycle rate
//!   ≥ 90%. The unavoidable fresh allocations are the peak concurrent
//!   working set (`peak_live_tasks`): a shell can only be recycled once
//!   some task has finished, so the warmup is every allocation that
//!   merely grew the working set, and the rate charges only the misses
//!   beyond it;
//! * leaf tasks allocate **zero** bottom maps: at most 2 maps per run
//!   (the root's, demand-created at record registration) no matter how
//!   many tasks the sweep point spawns;
//! * differential guard: chains steady-state per-iteration time under
//!   the packed word stays within 5% of the `replay_compat` reference
//!   path (median of interleaved per-round ratios, enforced when
//!   `NANOTASK_REPS ≥ 2`).
//!
//! Extra knobs: `NANOTASK_WORKERS` (default: host parallelism, ≤ 4),
//! `NANOTASK_FIG18_MAX_TASKS`, `NANOTASK_ITERS` (timesteps per point,
//! default 3, min 3), `NANOTASK_REPS` (best-of, default 3).

use std::time::Instant;

use nanotask_bench::Opts;
use nanotask_bench::json::{self, Json};
use nanotask_core::task::bottom_maps_created;
use nanotask_core::{Deps, Runtime, RuntimeConfig, SendPtr, TaskCtx};
use nanotask_replay::{ReplayReport, RunIterative};

/// Additive slack of the per-doubling growth guard: sub-millisecond
/// freezes jitter by fractions of this on a shared host, while at the
/// sizes the guard is really about it disappears into the ratio term.
const FREEZE_SLACK_NS: f64 = 500_000.0;

/// Synthetic graph family: a name plus an iteration body spawning
/// exactly `tasks` dependency-registered tasks against `cells`.
#[derive(Clone, Copy, PartialEq)]
enum Family {
    /// 8 independent readwrite chains — 1 dependency per task.
    Chains,
    /// 1D three-point stencil, 4 sweeps — ~3 accesses per task.
    Stencil,
    /// 2D wavefront over a square tile grid — ~3 accesses per task.
    Tiles,
}

impl Family {
    const ALL: [Family; 3] = [Family::Chains, Family::Stencil, Family::Tiles];

    fn name(self) -> &'static str {
        match self {
            Family::Chains => "chains",
            Family::Stencil => "stencil",
            Family::Tiles => "tiles",
        }
    }

    /// Number of f64 cells the family needs for `tasks` tasks.
    fn cells(self, tasks: usize) -> usize {
        match self {
            Family::Chains => 8,
            Family::Stencil => tasks.div_ceil(4).max(2),
            Family::Tiles => {
                let w = (tasks as f64).sqrt().ceil() as usize + 1;
                w * w
            }
        }
    }

    /// Spawn one iteration's task graph; must create exactly `tasks`
    /// tasks regardless of the family's shape.
    fn spawn(self, ctx: &TaskCtx<'_>, base: SendPtr<f64>, tasks: usize) {
        match self {
            Family::Chains => {
                let chains = self.cells(tasks);
                for t in 0..tasks {
                    let cell = unsafe { base.add(t % chains) };
                    ctx.spawn_labeled("link", Deps::new().readwrite_addr(cell.addr()), move |_| {
                        unsafe { *cell.get() += 1.0 };
                    });
                }
            }
            Family::Stencil => {
                let width = self.cells(tasks);
                for t in 0..tasks {
                    let i = t % width;
                    let cell = unsafe { base.add(i) };
                    let mut deps = Deps::new().readwrite_addr(cell.addr());
                    if i > 0 {
                        deps = deps.read_addr(unsafe { base.add(i - 1) }.addr());
                    }
                    if i + 1 < width {
                        deps = deps.read_addr(unsafe { base.add(i + 1) }.addr());
                    }
                    ctx.spawn_labeled("relax", deps, move |_| {
                        unsafe { *cell.get() = *cell.get() * 0.5 + 1.0 };
                    });
                }
            }
            Family::Tiles => {
                let w = (tasks as f64).sqrt().ceil() as usize + 1;
                let mut spawned = 0usize;
                'grid: for i in 1..w {
                    for j in 1..w {
                        if spawned == tasks {
                            break 'grid;
                        }
                        spawned += 1;
                        let cell = unsafe { base.add(i * w + j) };
                        let up = unsafe { base.add((i - 1) * w + j) };
                        let left = unsafe { base.add(i * w + j - 1) };
                        let deps = Deps::new()
                            .readwrite_addr(cell.addr())
                            .read_addr(up.addr())
                            .read_addr(left.addr());
                        ctx.spawn_labeled("tile", deps, move |_| unsafe {
                            *cell.get() = (*up.get() + *left.get()) * 0.25 + 1.0;
                        });
                    }
                }
                assert_eq!(spawned, tasks, "grid too small for {tasks} tasks");
            }
        }
    }
}

/// Directive env var marking a child-process measurement run
/// (`family,tasks,iters,workers`). Every sweep point executes in a
/// fresh process: a long sweep leaves the parent's allocator with a
/// large fragmented heap, and captured-spawn storage allocated from it
/// scatters enough to inflate late freeze timings several-fold — an
/// artifact of sweep order, not of graph size.
const CHILD_ENV: &str = "NANOTASK_FIG18_CHILD";

/// Parsed result line of one child measurement.
struct ChildResult {
    freeze_ns: u64,
    graph_bytes: u64,
    peak_task_bytes: u64,
    tasks_recycled: u64,
    rate: f64,
    maps: u64,
}

/// Child mode: run exactly one (family, tasks) point on this fresh
/// process and print the counters as one `key=value` line.
fn child_main(cfg: &RuntimeConfig, spec: &str) -> ! {
    let parts: Vec<&str> = spec.split(',').collect();
    assert_eq!(parts.len(), 4, "bad {CHILD_ENV} spec: {spec}");
    let family = Family::ALL
        .iter()
        .copied()
        .find(|f| f.name() == parts[0])
        .unwrap_or_else(|| panic!("unknown family {}", parts[0]));
    let tasks: usize = parts[1].parse().expect("tasks");
    let iters: usize = parts[2].parse().expect("iters");
    let workers: usize = parts[3].parse().expect("workers");
    let (report, rate, maps, _) = run_point(cfg, workers, family, tasks, iters);
    println!(
        "freeze_ns={} graph_bytes={} peak_task_bytes={} tasks_recycled={} rate={} maps={}",
        report.freeze_ns,
        report.graph_bytes,
        report.peak_task_bytes,
        report.tasks_recycled,
        rate,
        maps
    );
    std::process::exit(0);
}

/// Run one sweep point in a fresh child process and parse its counters.
fn run_point_isolated(family: Family, tasks: usize, iters: usize, workers: usize) -> ChildResult {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .env(
            CHILD_ENV,
            format!("{},{tasks},{iters},{workers}", family.name()),
        )
        .output()
        .expect("spawn fig18 child");
    assert!(
        out.status.success(),
        "fig18 child {}/{tasks} failed:\n{}",
        family.name(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("freeze_ns="))
        .unwrap_or_else(|| panic!("no result line from child {}/{tasks}", family.name()));
    let field = |key: &str| -> &str {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
            .unwrap_or_else(|| panic!("missing {key} in child line: {line}"))
    };
    ChildResult {
        freeze_ns: field("freeze_ns").parse().expect("freeze_ns"),
        graph_bytes: field("graph_bytes").parse().expect("graph_bytes"),
        peak_task_bytes: field("peak_task_bytes").parse().expect("peak_task_bytes"),
        tasks_recycled: field("tasks_recycled").parse().expect("tasks_recycled"),
        rate: field("rate").parse().expect("rate"),
        maps: field("maps").parse().expect("maps"),
    }
}

/// One measured sweep point: reports + allocator view from the rep that
/// produced the retained (minimum) freeze time.
struct SweepPoint {
    family: &'static str,
    tasks: usize,
    freeze_ns: u64,
    graph_bytes: u64,
    peak_task_bytes: u64,
    tasks_recycled: u64,
    recycle_rate: f64,
    bottom_maps: u64,
    reps: usize,
}

impl SweepPoint {
    fn bytes_per_task(&self) -> f64 {
        self.graph_bytes as f64 / self.tasks as f64
    }

    fn json(&self) -> Json {
        Json::obj([
            ("family", Json::from(self.family)),
            ("tasks", Json::from(self.tasks)),
            ("freeze_ns", Json::from(self.freeze_ns)),
            ("graph_bytes", Json::from(self.graph_bytes)),
            ("bytes_per_task", Json::from(self.bytes_per_task())),
            ("peak_task_bytes", Json::from(self.peak_task_bytes)),
            ("tasks_recycled", Json::from(self.tasks_recycled)),
            ("recycle_rate", Json::from(self.recycle_rate)),
            ("bottom_maps_created", Json::from(self.bottom_maps)),
            ("reps", Json::from(self.reps)),
        ])
    }
}

/// Run one (family, size) point on a fresh runtime; returns the replay
/// report plus the post-warmup recycle rate and the bottom-map delta.
fn run_point(
    cfg: &RuntimeConfig,
    workers: usize,
    family: Family,
    tasks: usize,
    iters: usize,
) -> (ReplayReport, f64, u64, f64) {
    let rt = Runtime::new(cfg.clone().workers(workers));
    let mut cells = vec![0.0f64; family.cells(tasks)];
    let base = SendPtr::new(cells.as_mut_ptr());
    let maps0 = bottom_maps_created();
    let t0 = Instant::now();
    let report = rt.run_iterative(iters, move |ctx| family.spawn(ctx, base, tasks));
    let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
    let maps = bottom_maps_created() - maps0;
    report.assert_classification();
    assert_eq!(report.tasks, tasks, "{}: task count", family.name());
    assert_eq!(report.replayed, iters - 1, "{}: must replay", family.name());
    for (i, &v) in cells.iter().enumerate() {
        assert!(v.is_finite(), "{} cell {i} diverged: {v}", family.name());
    }
    // Post-warmup recycle rate: fresh allocations up to the peak
    // concurrent working set are unavoidable (a shell can only be
    // recycled after some task finished — e.g. a single-writer-per-cell
    // family keeps the whole record iteration pinned in its ASMs while
    // the first replay materializes); only misses beyond the peak are
    // recycling failures.
    let a = rt.stats().alloc;
    let late_misses = a.recycle_misses.saturating_sub(a.peak_live_tasks);
    let rate = a.recycle_hits as f64 / (a.recycle_hits + late_misses).max(1) as f64;
    assert!(a.recycle_hits > 0, "{}: no slab recycling", family.name());
    (report, rate, maps, per_iter)
}

/// Interleaved packed-word vs `replay_compat` chains measurement:
/// median of per-round `compat / packed` per-iteration time ratios
/// (fig16's robustness idiom — both sides of a round share the host's
/// throughput mode, alternating order cancels within-round drift).
fn differential_ratio(cfg: &RuntimeConfig, workers: usize, tasks: usize, reps: usize) -> f64 {
    let iters = 12usize;
    let mut ratios = Vec::new();
    for round in 0..reps.max(1) {
        let mut secs = [0.0f64; 2]; // [packed, compat]
        let order = if round % 2 == 0 { [0, 1] } else { [1, 0] };
        for side in order {
            let c = cfg.clone().workers(workers).with_replay_compat(side == 1);
            let (_, _, _, per_iter) = run_point(&c, workers, Family::Chains, tasks, iters);
            secs[side] = per_iter;
        }
        ratios.push(secs[1] / secs[0]);
    }
    ratios.sort_by(f64::total_cmp);
    let n = ratios.len();
    if n % 2 == 1 {
        ratios[n / 2]
    } else {
        (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
    }
}

fn main() {
    // The fig16 hot configuration: every memory-side layer engaged.
    let base_cfg = RuntimeConfig::optimized()
        .with_replay_partitioning(true)
        .fast_path(true);
    if let Ok(spec) = std::env::var(CHILD_ENV) {
        child_main(&base_cfg, &spec);
    }
    let opts = Opts::from_env();
    // Default to the host's real parallelism (capped at 4): freeze runs
    // on the recording thread, and oversubscribed spinning workers
    // corrupt long freeze timings on small hosts.
    let workers = opts
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(4)
        })
        .clamp(1, 128);
    let iters = std::env::var("NANOTASK_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(3)
        .max(3);
    let max_tasks = std::env::var("NANOTASK_FIG18_MAX_TASKS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| 8192 * opts.scale.max(1))
        .clamp(1024, 1 << 20);
    println!(
        "# fig18_scale: workers={workers} iters={iters} max_tasks={max_tasks} scale={} reps={}",
        opts.scale, opts.reps
    );
    println!("# family,tasks,freeze_ms,ns_per_task,bytes_per_task,recycle_rate,maps");

    let cfg = base_cfg;

    let mut sizes = Vec::new();
    let mut n = 1024usize;
    while n <= max_tasks {
        sizes.push(n);
        n *= 2;
    }

    let mut points: Vec<SweepPoint> = Vec::new();
    for family in Family::ALL {
        for &tasks in &sizes {
            // Freeze times jitter up to ~1.7x run-to-run on shared
            // hosts; take the best of ≥ 3 fresh processes at small
            // sizes and up to 3 at the expensive ones.
            let reps = if tasks <= 65_536 {
                opts.reps.max(3)
            } else {
                opts.reps.clamp(1, 3)
            };
            let mut best: Option<ChildResult> = None;
            for _ in 0..reps {
                let r = run_point_isolated(family, tasks, iters, workers);
                assert!(
                    r.maps <= 2,
                    "{}/{tasks}: leaf tasks must not allocate bottom maps ({} created)",
                    family.name(),
                    r.maps
                );
                if best.as_ref().is_none_or(|b| r.freeze_ns < b.freeze_ns) {
                    best = Some(r);
                }
            }
            let r = best.expect("reps >= 1");
            let point = SweepPoint {
                family: family.name(),
                tasks,
                freeze_ns: r.freeze_ns,
                graph_bytes: r.graph_bytes,
                peak_task_bytes: r.peak_task_bytes,
                tasks_recycled: r.tasks_recycled,
                recycle_rate: r.rate,
                bottom_maps: r.maps,
                reps,
            };
            println!(
                "{},{},{:.3},{:.1},{:.1},{:.3},{}",
                point.family,
                point.tasks,
                point.freeze_ns as f64 / 1e6,
                point.freeze_ns as f64 / point.tasks as f64,
                point.bytes_per_task(),
                point.recycle_rate,
                point.bottom_maps
            );
            points.push(point);
        }
    }

    // Guard 1: near-linear freeze. Superlinear algorithmic growth
    // (O(n log n), O(n^2)) compounds across every doubling; the memory
    // hierarchy instead contributes one-time per-task steps where the
    // working set leaves a cache level, plus up-to-~1.7x run-to-run
    // jitter. Three clauses separate the two:
    //  (a) no single doubling exceeds 3.5x (+ the absolute noise slack
    //      for the sub-ms sizes) — a cliff is allowed once, a blow-up
    //      is not;
    //  (b) compounded growth across the whole sweep stays within a
    //      2.6x-per-doubling budget — cliffs don't compound, O(n^1.4+)
    //      does;
    //  (c) when the sweep reaches 2^20 tasks,
    //      `freeze(2^20) ≤ 1.3 × 8 × freeze(2^17)` — within 1.3x of
    //      linear extrapolation from 10^5-scale, the sharpest clause
    //      (per-task cost may grow ≤ 30% over that 8x).
    let mut growth_checked = 0usize;
    for fam in Family::ALL.map(Family::name) {
        let fam_points: Vec<&SweepPoint> = points.iter().filter(|p| p.family == fam).collect();
        for pair in fam_points.windows(2) {
            let (small, big) = (pair[0], pair[1]);
            growth_checked += 1;
            let limit = 3.5 * small.freeze_ns as f64 + FREEZE_SLACK_NS;
            assert!(
                (big.freeze_ns as f64) <= limit,
                "{fam}: freeze grew {:.2}x from {} to {} tasks (single-doubling cap 3.5x)",
                big.freeze_ns as f64 / small.freeze_ns as f64,
                small.tasks,
                big.tasks
            );
        }
        if let (Some(first), Some(last)) = (fam_points.first(), fam_points.last()) {
            let doublings = (last.tasks / first.tasks).ilog2();
            let budget = 2.6f64.powi(doublings as i32) * first.freeze_ns as f64;
            assert!(
                (last.freeze_ns as f64) <= budget,
                "{fam}: freeze grew {:.0}x over {doublings} doublings (budget 2.6x/doubling = {:.0}x)",
                last.freeze_ns as f64 / first.freeze_ns as f64,
                2.6f64.powi(doublings as i32)
            );
        }
        let at = |n: usize| fam_points.iter().find(|p| p.tasks == n);
        if let (Some(lo), Some(hi)) = (at(1 << 17), at(1 << 20)) {
            let limit = 1.3 * 8.0 * lo.freeze_ns as f64;
            assert!(
                (hi.freeze_ns as f64) <= limit,
                "{fam}: freeze(2^20)={} ns exceeds 1.3x linear extrapolation {} ns",
                hi.freeze_ns,
                limit
            );
        }
    }

    // Guard 2: per-task frozen-graph bytes flat across each sweep.
    for fam in Family::ALL.map(Family::name) {
        let fam_points: Vec<&SweepPoint> = points.iter().filter(|p| p.family == fam).collect();
        let anchor = fam_points.last().expect("non-empty sweep").bytes_per_task();
        for p in &fam_points {
            let delta = (p.bytes_per_task() - anchor).abs();
            assert!(
                delta <= 16.0,
                "{fam}/{}: per-task bytes {:.1} drifts {delta:.1} B from {anchor:.1}",
                p.tasks,
                p.bytes_per_task()
            );
        }
    }

    // Guard 3: ≥ 90% post-warmup slab recycling everywhere.
    for p in &points {
        assert!(
            p.recycle_rate >= 0.9,
            "{}/{}: post-warmup recycle rate {:.3} < 0.9",
            p.family,
            p.tasks,
            p.recycle_rate
        );
    }

    // Guard 4: the packed word must not regress the fig16 steady state —
    // chains per-iteration time within 5% of the replay_compat path.
    let diff_tasks = max_tasks.min(8192);
    let ratio = differential_ratio(&cfg, workers, diff_tasks, opts.reps);
    let diff_met = ratio >= 0.95;
    if opts.reps >= 2 {
        assert!(
            diff_met,
            "packed word regressed chains vs replay_compat: compat/packed = {ratio:.3} < 0.95"
        );
    }
    println!(
        "# near-linear freeze: <= 3.5x/single doubling, <= 2.6x/doubling compounded \
         ({growth_checked} pairs): MET"
    );
    println!("# per-task graph bytes flat within +/-16 B of each family's largest size: MET");
    println!("# post-warmup recycle rate >= 0.9 on all rows: MET");
    println!(
        "# chains compat/packed per-iteration ratio {ratio:.3} (floor 0.95): {}",
        if diff_met { "MET" } else { "NOT MET" }
    );

    let doc = Json::obj([
        ("figure", Json::from("fig18_scale")),
        ("workers", Json::from(workers)),
        ("iters", Json::from(iters)),
        ("max_tasks", Json::from(max_tasks)),
        ("scale", Json::from(opts.scale)),
        ("reps", Json::from(opts.reps)),
        ("growth_pairs_checked", Json::from(growth_checked)),
        ("differential_ratio", Json::from(ratio)),
        ("differential_met", Json::from(diff_met)),
        ("target_met", Json::from(diff_met)),
        (
            "rows",
            Json::Arr(points.iter().map(SweepPoint::json).collect()),
        ),
    ]);
    match json::write_bench_json("fig18_scale", &doc) {
        Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("# BENCH json write failed: {e}"),
    }
}
