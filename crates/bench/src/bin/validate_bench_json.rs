//! CI smoke validator: parse every `BENCH_*.json` in a directory with
//! the crate's own JSON parser and check the common shape each figure
//! harness emits (an object with a `"figure"` string and a `"rows"`
//! array). Exits non-zero — naming every bad file — if anything fails.
//!
//! Usage: `validate_bench_json [dir]` (default: the current directory,
//! i.e. wherever the harnesses just wrote their results).

use std::path::Path;
use std::process::ExitCode;

use nanotask_bench::json::{Json, parse};

fn check_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let doc = parse(&text)?;
    let Json::Obj(pairs) = &doc else {
        return Err("top level is not an object".into());
    };
    let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    match get("figure") {
        Some(Json::Str(_)) => {}
        _ => return Err("missing/invalid \"figure\" key".into()),
    }
    match get("rows") {
        Some(Json::Arr(rows)) => {
            if !rows.iter().all(|r| matches!(r, Json::Obj(_))) {
                return Err("\"rows\" contains a non-object entry".into());
            }
        }
        _ => return Err("missing/invalid \"rows\" key".into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let mut seen = 0usize;
    let mut bad = 0usize;
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut names: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    for path in names {
        seen += 1;
        match check_file(&path) {
            Ok(()) => println!("ok   {}", path.display()),
            Err(e) => {
                bad += 1;
                eprintln!("FAIL {}: {e}", path.display());
            }
        }
    }
    println!("validated {seen} BENCH_*.json file(s), {bad} failure(s)");
    if seen == 0 {
        eprintln!("no BENCH_*.json files found in {dir}");
        return ExitCode::FAILURE;
    }
    if bad > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
