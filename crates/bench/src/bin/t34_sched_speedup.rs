//! §3.4 in-text claim: "In microbenchmarks, we found a fourfold speedup
//! on task scheduling using a DTLock compared to a PTLock, and a
//! twelvefold speedup compared to serial task insertion thanks to the
//! SPSC queues."
//!
//! Drives the three scheduler configurations with one producer and
//! `workers-1` consumers on raw task pointers and reports throughput.

use nanotask_core::sched::{LockKind, Policy, SchedKind, TaskPtr, make_scheduler};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

fn drive(kind: SchedKind, workers: usize, tasks: usize) -> f64 {
    let sched = make_scheduler(kind, workers, 1, Policy::Fifo, 100, 0, None);
    let stop = Arc::new(AtomicBool::new(false));
    let consumers: Vec<_> = (1..workers)
        .map(|w| {
            let sched = Arc::clone(&sched);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut got = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    if sched.get_ready(w, None).is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            })
        })
        .collect();
    let t0 = Instant::now();
    for i in 0..tasks {
        sched.add_ready(TaskPtr(((i + 1) << 4) as *mut _), 0, None);
    }
    // Wait for drain.
    while sched.approx_len() > 0 {
        std::thread::yield_now();
    }
    let dt = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let consumed: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    let _ = consumed;
    tasks as f64 / dt
}

fn main() {
    let workers = std::env::var("NANOTASK_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| (nanotask_core::Platform::host_parallelism() * 4).clamp(2, 16));
    let tasks = 200_000;
    println!("# t3.4: scheduling throughput, {workers} workers, {tasks} tasks");
    let dt = drive(SchedKind::Delegation, workers, tasks);
    let pt = drive(SchedKind::Central(LockKind::PtLock), workers, tasks);
    let ticket = drive(SchedKind::Central(LockKind::Ticket), workers, tasks);
    println!("delegation (SPSC+DTLock): {dt:>12.0} tasks/s");
    println!(
        "central PTLock:           {pt:>12.0} tasks/s  (DTLock speedup {:.2}x)",
        dt / pt
    );
    println!(
        "central TicketLock:       {ticket:>12.0} tasks/s  (DTLock speedup {:.2}x)",
        dt / ticket
    );
    println!("# paper claims ~4x vs PTLock and ~12x vs serial insertion on 48+ cores;");
    println!("# on small/oversubscribed hosts the gap narrows but the ordering holds.");
}
