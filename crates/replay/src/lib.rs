//! Task-graph **record & replay** (`nanotask-replay`).
//!
//! The paper this workspace reproduces (PPoPP '21) shows that at fine
//! task granularity the *dependency system* is a dominant runtime
//! overhead — its wait-free Atomic State Machines (§2) exist purely to
//! shrink it. This crate removes that overhead entirely for the common
//! HPC pattern of **iterative** applications: every timestep of heat,
//! HPCCG or N-body re-registers and re-releases an *identical*
//! dependency graph.
//!
//! In the spirit of OmpSs-2's `taskiter`/TDG-caching follow-on work, the
//! subsystem:
//!
//! 1. **Records** one instrumented iteration: a [`GraphRecorder`]
//!    installed through the runtime's [`SpawnCapture`] seam captures
//!    every root task's creation order, label, priority and access set,
//!    while the dependency-edge tap (`Runtime::set_graph_recording`,
//!    the Figure-1 `GraphEdge` machinery) records the successor/child
//!    links the dependency system actually created. The recorded
//!    iteration still executes through the full dependency system.
//! 2. **Freezes** the graph into a [`ReplayGraph`]: immutable successor
//!    lists, per-task atomic in-degree counters (reset in O(tasks)
//!    between iterations), and reduction-chain groups that keep the
//!    paper's concurrent-reduction semantics (private per-worker slots,
//!    combined once when the last chain member finishes).
//! 3. **Replays** iterations `1..n`: task bodies are captured by simply
//!    enumerating the user closure again, matched to graph nodes by
//!    creation order, and spawned *held* (`TaskCtx::spawn_held`) —
//!    fully bypassing dependency registration and release. A task is
//!    handed to the configured scheduler (delegation, central or
//!    work-stealing — replay is scheduler-agnostic) the moment its
//!    in-degree counter hits zero.
//!
//! Divergence is detected by a cheap structural hash (FNV-1a over
//! labels, priorities and access sets, in creation order): if an
//! iteration spawns a different graph, the captured bodies are re-spawned
//! through the normal dependency system and the graph is re-recorded
//! from the new structure — correctness never depends on the graphs
//! actually matching.
//!
//! The public surface is the [`RunIterative`] extension trait:
//!
//! ```
//! use nanotask_core::{Runtime, RuntimeConfig, Deps, SendPtr};
//! use nanotask_replay::RunIterative;
//!
//! let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
//! let data = Box::leak(Box::new(0u64)) as *mut u64;
//! let p = SendPtr::new(data);
//! let report = rt.run_iterative(10, move |ctx| {
//!     // One "timestep": a two-task chain on `data`.
//!     ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
//!         *p.get() += 1;
//!     });
//!     ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
//!         *p.get() *= 2;
//!     });
//! });
//! assert_eq!(report.replayed, 9); // recorded once, replayed 9 times
//! assert_eq!(unsafe { *data }, 2046);
//! unsafe { drop(Box::from_raw(data)) };
//! ```
//!
//! ## Scope and limitations
//!
//! * Only *root-level* spawns are captured; nested children spawned by
//!   replayed tasks run through the normal dependency system inside
//!   their parent's domain. Cross-sibling dependencies of nested tasks
//!   are not enforced during replay (none of the §6.1 workloads need
//!   them) — see ROADMAP "taskwait nesting".
//! * Iteration boundaries are barriers: replay trades the dependency
//!   system's cross-iteration pipelining for zero dependency-system
//!   cost, which is the winning trade at fine granularity (the
//!   `fig12_replay_speedup` experiment).

mod engine;
mod graph;
mod recorder;

pub use engine::{ReplayReport, RunIterative};
pub use graph::{RedGroup, ReplayGraph, ReplayNode};
pub use recorder::{CaptureMode, CapturedSpawn, GraphRecorder};

// Re-exported for doc links and downstream convenience.
pub use nanotask_core::{Runtime, SpawnCapture, TaskCtx};
