//! Task-graph **record & replay** (`nanotask-replay`).
//!
//! The paper this workspace reproduces (PPoPP '21) shows that at fine
//! task granularity the *dependency system* is a dominant runtime
//! overhead — its wait-free Atomic State Machines (§2) exist purely to
//! shrink it. This crate removes that overhead entirely for the common
//! HPC pattern of **iterative** applications: every timestep of heat,
//! HPCCG or N-body re-registers and re-releases an *identical*
//! dependency graph.
//!
//! In the spirit of OmpSs-2's `taskiter`/TDG-caching follow-on work, the
//! subsystem:
//!
//! 1. **Records** one instrumented iteration: a [`GraphRecorder`]
//!    installed through the runtime's [`SpawnCapture`] seam captures
//!    every root task's creation order, label, priority and access set,
//!    while the dependency-edge tap (`Runtime::set_graph_recording`,
//!    the Figure-1 `GraphEdge` machinery) records the successor/child
//!    links the dependency system actually created. The recorded
//!    iteration still executes through the full dependency system.
//! 2. **Freezes** the graph into a [`ReplayGraph`]: compressed-sparse-row
//!    arenas for successor lists, access declarations and reduction
//!    memberships (built once, no per-node allocations survive
//!    freezing), per-task atomic in-degree counters reset between
//!    iterations by a single `memcpy` from a precomputed template, and
//!    reduction-chain groups that keep the paper's concurrent-reduction
//!    semantics (private per-worker slots, combined once when the last
//!    chain member finishes).
//! 3. **Replays** iterations `1..n`: task bodies are captured by simply
//!    enumerating the user closure again, matched to graph nodes by
//!    creation order, and spawned *held* (`TaskCtx::spawn_held`) —
//!    fully bypassing dependency registration and release. A task is
//!    handed to the configured scheduler (delegation, central or
//!    work-stealing — replay is scheduler-agnostic) the moment its
//!    in-degree counter hits zero.
//!
//! Divergence is detected by a cheap structural hash (FNV-1a over
//! labels, priorities and access sets, in creation order) and handled
//! with *hysteresis*: up to [`nanotask_core::RuntimeConfig::replay_cache_size`]
//! frozen graphs are kept in a [`GraphCache`] keyed by that hash, so a
//! body alternating between a few shapes (miniAMR-style refine/coarsen
//! phases) records each shape once and then replays every phase — a
//! diverging iteration first probes the cache (by first-spawn signature
//! mid-switch, by full structural hash afterwards, and through a
//! one-step phase predictor) and only freezes a new graph on a miss.
//! A body that keeps diverging is pinned to the dependency system after
//! [`nanotask_core::RuntimeConfig::replay_giveup_after`] consecutive
//! failures (with a cheap hash-only re-stabilization probe every
//! [`nanotask_core::RuntimeConfig::replay_recheck_every`] iterations),
//! and a recorded iteration containing nested task domains — detected
//! via foreign dependency edges plus the runtime's nested-spawn counter
//! — is pinned immediately. Correctness never depends on the graphs
//! actually matching: a divergent iteration awaits its replayed prefix
//! and runs the rest through the dependency system.
//! `replay_cache_size = 1` restores the original single-graph engine
//! (discard on divergence, blind re-record) byte for byte.
//!
//! The public surface is the [`RunIterative`] extension trait:
//!
//! ```
//! use nanotask_core::{Runtime, RuntimeConfig, Deps, SendPtr};
//! use nanotask_replay::RunIterative;
//!
//! let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
//! let data = Box::leak(Box::new(0u64)) as *mut u64;
//! let p = SendPtr::new(data);
//! let report = rt.run_iterative(10, move |ctx| {
//!     // One "timestep": a two-task chain on `data`.
//!     ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
//!         *p.get() += 1;
//!     });
//!     ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
//!         *p.get() *= 2;
//!     });
//! });
//! assert_eq!(report.replayed, 9); // recorded once, replayed 9 times
//! assert_eq!(unsafe { *data }, 2046);
//! unsafe { drop(Box::from_raw(data)) };
//! ```
//!
//! ## Scope and limitations
//!
//! * Only *root-level* spawns are captured. Nested task domains are
//!   **detected** — foreign dependency edges at record time, plus the
//!   runtime's nested-spawn counter on every graph-building and
//!   replayed iteration — and force permanent dependency-system
//!   fallback ([`ReplayReport::pinned_nested`]): replay cannot enforce
//!   the *parents'* recorded ordering around nested children. A body
//!   that nests from the start is caught at record time and never
//!   replays. A body that *starts* nesting mid-run is pinned at the end
//!   of the first iteration whose replay observed nested spawns —
//!   detection cannot precede the first nested spawn, so that one
//!   iteration is a known hazard window: a nested child conflicting
//!   with a *replayed root* task is unordered during it (the root
//!   bypassed dependency registration), unlike at record time where the
//!   dependency system ordered both. Two carve-outs are deliberate:
//!   `replay_cache_size = 1` reproduces the original engine byte for
//!   byte *including* its no-pinning nested-domain limitation, and the
//!   hazard window above. *Recording* nested domains (which would close
//!   both) remains open — see ROADMAP "taskwait nesting".
//! * Iteration boundaries are barriers: replay trades the dependency
//!   system's cross-iteration pipelining for zero dependency-system
//!   cost, which is the winning trade at fine granularity (the
//!   `fig12_replay_speedup` experiment).

mod cache;
mod engine;
mod graph;
mod partition;
mod recorder;

pub use cache::GraphCache;
pub use engine::{ReplayReport, RunIterative};
pub use graph::{NodeMeta, RedGroup, ReplayGraph};
pub use partition::{PartitionStats, Partitioning};
pub use recorder::{CaptureMode, CapturedDecls, CapturedSpawn, GraphRecorder};

// Re-exported for doc links and downstream convenience.
pub use nanotask_core::{RunOutcome, Runtime, SpawnCapture, TaskCtx};
