//! The frozen [`ReplayGraph`]: immutable successor lists plus per-task
//! atomic in-degree counters.
//!
//! The builder derives replay edges from the captured access sets with
//! the same semantics the dependency systems implement:
//!
//! * exclusive accesses (`write`/`readwrite`) serialize;
//! * consecutive readers form a *group* that runs concurrently and is
//!   collectively a predecessor of the next exclusive access;
//! * consecutive same-op reductions form a group that runs concurrently
//!   on private per-worker slots and is combined into the target once,
//!   when its last member finishes (see the engine).
//!
//! The dependency-edge tap (`GraphEdge`) from the instrumented record
//! iteration is kept as a cross-check: tapped successor edges between
//! captured tasks must connect nodes the decl-derived graph also
//! orders; edges touching *unknown* task ids reveal nested children
//! linking into the recorded iteration (counted, for diagnostics).

use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use nanotask_core::graph::{EdgeKind, GraphEdge};
use nanotask_core::task::Task;
use nanotask_core::{AccessDecl, AccessMode, RedOp, TaskId};

use crate::recorder::{CapturedSpawn, GraphRecorder, spawn_sig_hash};

/// One node of the frozen graph (creation order = node index).
pub struct ReplayNode {
    /// Task label.
    pub label: &'static str,
    /// Scheduling priority.
    pub priority: i32,
    /// Signature hash of (label, priority, access set) — what the replay
    /// engine matches incoming spawns against.
    pub sig: u64,
    /// Nodes that become releasable when this node completes.
    pub succs: Vec<u32>,
    /// Number of predecessor edges.
    pub indeg: u32,
    /// Reduction accesses: the bare declaration (no chain state attached)
    /// and the index of the [`RedGroup`] it participates in.
    pub red: Vec<(AccessDecl, usize)>,
    /// The full recorded access set, exactly as captured (bare, no chain
    /// state). Kept so a divergent iteration can reconstruct the
    /// already-fed prefix as [`CapturedSpawn`]s and freeze its *own*
    /// graph without a dedicated re-record pass.
    pub decls: Vec<AccessDecl>,
}

/// A reduction chain instance: consecutive same-op reduction accesses on
/// one address within the iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedGroup {
    /// Target base address.
    pub addr: usize,
    /// Region length in bytes.
    pub len: usize,
    /// The operation.
    pub op: RedOp,
    /// Number of participating tasks.
    pub members: u32,
}

/// The frozen, replayable task graph of one iteration.
pub struct ReplayGraph {
    nodes: Vec<ReplayNode>,
    groups: Vec<RedGroup>,
    hash: u64,
    edges: usize,
    /// Successor edges the dependency system reported during the record
    /// iteration, between captured tasks (cross-check/diagnostics).
    tapped_edges: usize,
    /// Tapped edges touching task ids outside the captured set (nested
    /// children linking into the recorded iteration).
    foreign_edges: usize,
    /// In-degree countdown per node; `indeg + 1` per iteration (the +1
    /// is the creation hold, dropped by the engine after the node's held
    /// task exists).
    pending: Vec<AtomicU32>,
    /// The held task of each node for the current iteration.
    slots: Vec<AtomicPtr<Task>>,
}

/// Per-address sweep state of the builder.
struct AddrState {
    /// The completed exclusive set every current-group member depends on.
    barrier: Vec<u32>,
    /// The currently accumulating concurrent group.
    group: Vec<u32>,
    class: GroupClass,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupClass {
    Exclusive,
    Readers,
    Red(RedOp, usize),
}

/// Merge two access modes of *one task* on *one address* into the
/// effective mode: equal modes keep themselves, anything mixed is
/// exclusive. (Duplicate addresses within a task are a contract
/// violation the dependency systems `debug_assert` against; the replay
/// builder must still never emit a self-edge for them.)
fn merge_modes(a: AccessMode, b: AccessMode) -> AccessMode {
    if a == b { a } else { AccessMode::ReadWrite }
}

/// A declaration stripped of any attached reduction-chain state (replay
/// graphs never own chain instances — the engine attaches fresh ones per
/// iteration).
fn bare_decl(d: &AccessDecl) -> AccessDecl {
    AccessDecl::new(d.addr, d.len, d.mode)
}

/// One task's declarations with duplicate addresses coalesced
/// (first-occurrence order, strongest mode wins).
fn coalesced(decls: &[AccessDecl]) -> Vec<AccessDecl> {
    let mut eff: Vec<AccessDecl> = Vec::with_capacity(decls.len());
    for d in decls {
        if let Some(prev) = eff.iter_mut().find(|p| p.addr == d.addr) {
            prev.mode = merge_modes(prev.mode, d.mode);
            prev.len = prev.len.max(d.len);
        } else {
            eff.push(d.clone());
        }
    }
    eff
}

impl ReplayGraph {
    /// Freeze a captured iteration. `tap` is the dependency-edge record
    /// of the instrumented iteration (may be empty when unavailable,
    /// e.g. after a divergence re-record).
    pub fn build(captured: &[CapturedSpawn], tap: &[GraphEdge]) -> Self {
        let n = captured.len();
        let mut nodes: Vec<ReplayNode> = captured
            .iter()
            .map(|c| ReplayNode {
                label: c.label,
                priority: c.priority,
                sig: spawn_sig_hash(c.label, c.priority, &c.decls),
                succs: Vec::new(),
                indeg: 0,
                red: Vec::new(),
                decls: c.decls.iter().map(bare_decl).collect(),
            })
            .collect();
        let mut groups: Vec<RedGroup> = Vec::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut per_addr: HashMap<usize, AddrState> = HashMap::new();

        for (i, c) in captured.iter().enumerate() {
            let i = i as u32;
            for d in &coalesced(&c.decls) {
                let class = match d.mode {
                    AccessMode::Read => GroupClass::Readers,
                    AccessMode::Reduction(op) => {
                        // Group index resolved below (joins or new).
                        GroupClass::Red(op, usize::MAX)
                    }
                    _ => GroupClass::Exclusive,
                };
                let st = per_addr.entry(d.addr).or_insert_with(|| AddrState {
                    barrier: Vec::new(),
                    group: Vec::new(),
                    class: GroupClass::Exclusive,
                });
                let joins = !st.group.is_empty()
                    && match (st.class, class) {
                        (GroupClass::Readers, GroupClass::Readers) => true,
                        (GroupClass::Red(a, _), GroupClass::Red(b, _)) => a == b,
                        _ => false,
                    };
                if joins {
                    for &b in &st.barrier {
                        edges.push((b, i));
                    }
                    st.group.push(i);
                } else {
                    for &g in &st.group {
                        edges.push((g, i));
                    }
                    st.barrier = std::mem::take(&mut st.group);
                    st.group.push(i);
                    st.class = match class {
                        GroupClass::Red(op, _) => {
                            groups.push(RedGroup {
                                addr: d.addr,
                                len: d.len.max(op.elem_size()),
                                op,
                                members: 0,
                            });
                            GroupClass::Red(op, groups.len() - 1)
                        }
                        other => other,
                    };
                }
                if let GroupClass::Red(_, gi) = st.class {
                    groups[gi].members += 1;
                    nodes[i as usize]
                        .red
                        .push((AccessDecl::new(d.addr, d.len, d.mode), gi));
                }
            }
        }

        edges.sort_unstable();
        edges.dedup();
        for &(from, to) in &edges {
            debug_assert!(from < to, "edges point forward in creation order");
            nodes[from as usize].succs.push(to);
            nodes[to as usize].indeg += 1;
        }

        // Cross-check against the tapped dependency-system edges.
        let ids: HashMap<TaskId, u32> = captured
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.id.map(|id| (id, i as u32)))
            .collect();
        let mut tapped_edges = 0;
        let mut foreign_edges = 0;
        for e in tap {
            if e.kind != EdgeKind::Successor {
                continue;
            }
            match (ids.get(&e.from), ids.get(&e.to)) {
                (Some(_), Some(_)) => tapped_edges += 1,
                _ => foreign_edges += 1,
            }
        }

        let pending = (0..n).map(|_| AtomicU32::new(0)).collect();
        let slots = (0..n)
            .map(|_| AtomicPtr::new(core::ptr::null_mut()))
            .collect();
        Self {
            hash: GraphRecorder::structural_hash(captured),
            edges: edges.len(),
            nodes,
            groups,
            tapped_edges,
            foreign_edges,
            pending,
            slots,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a graph with no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes, in creation order.
    pub fn nodes(&self) -> &[ReplayNode] {
        &self.nodes
    }

    /// The reduction groups.
    pub fn groups(&self) -> &[RedGroup] {
        &self.groups
    }

    /// Structural hash of the recorded iteration.
    pub fn structural_hash(&self) -> u64 {
        self.hash
    }

    /// Signature hash of the first recorded spawn (`None` for an empty
    /// graph) — the cache's phase-switch lookup key.
    pub fn first_sig(&self) -> Option<u64> {
        self.nodes.first().map(|n| n.sig)
    }

    /// Reconstruct the first `n` recorded spawns as [`CapturedSpawn`]s
    /// (metadata only, no bodies/ids). Used by the replay engine to
    /// freeze a divergent iteration's graph: its already-fed prefix
    /// matched these nodes by signature hash, so the recorded metadata
    /// stands in for the spawns actually observed.
    pub fn prefix_captured(&self, n: usize) -> Vec<CapturedSpawn> {
        self.nodes[..n.min(self.nodes.len())]
            .iter()
            .map(|nd| CapturedSpawn {
                label: nd.label,
                priority: nd.priority,
                decls: nd.decls.clone(),
                body: None,
                id: None,
            })
            .collect()
    }

    /// Total (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Successor edges tapped from the dependency system between
    /// captured tasks during the record iteration.
    pub fn tapped_edge_count(&self) -> usize {
        self.tapped_edges
    }

    /// Tapped edges involving tasks outside the captured set.
    pub fn foreign_edge_count(&self) -> usize {
        self.foreign_edges
    }

    /// All edges as `(from, to)` node-index pairs (test support).
    pub fn edge_pairs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::with_capacity(self.edges);
        for (i, nd) in self.nodes.iter().enumerate() {
            for &s in &nd.succs {
                v.push((i as u32, s));
            }
        }
        v
    }

    /// Reset every in-degree counter to `indeg + 1` and clear the task
    /// slots — O(tasks), run once before each replayed iteration. The
    /// `+1` is the *creation hold*: it guarantees a node cannot be
    /// released before its held task exists, even if all its
    /// predecessors finish while the creator is still spawning.
    pub fn reset(&self) {
        for (i, nd) in self.nodes.iter().enumerate() {
            self.pending[i].store(nd.indeg + 1, Ordering::Relaxed);
            self.slots[i].store(core::ptr::null_mut(), Ordering::Relaxed);
        }
    }

    /// Publish node `i`'s held task for this iteration.
    pub(crate) fn publish(&self, i: usize, task: *mut Task) {
        self.slots[i].store(task, Ordering::Release);
    }

    /// Drop one pending reference of node `i`; returns the task pointer
    /// when the node just became releasable.
    pub(crate) fn countdown(&self, i: usize) -> Option<*mut Task> {
        if self.pending[i].fetch_sub(1, Ordering::AcqRel) == 1 {
            let t = self.slots[i].load(Ordering::Acquire);
            debug_assert!(!t.is_null(), "released before publication");
            Some(t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(label: &'static str, decls: Vec<AccessDecl>) -> CapturedSpawn {
        CapturedSpawn {
            label,
            priority: 0,
            decls,
            body: None,
            id: None,
        }
    }

    fn rw(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::ReadWrite)
    }
    fn rd(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::Read)
    }
    fn red(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::Reduction(RedOp::SumF64))
    }

    #[test]
    fn writer_chain_serializes() {
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10)]),
                cap("b", vec![rw(0x10)]),
                cap("c", vec![rw(0x10)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 1), (1, 2)]);
        assert_eq!(g.nodes()[0].indeg, 0);
        assert_eq!(g.nodes()[2].indeg, 1);
    }

    #[test]
    fn readers_run_concurrently_between_writers() {
        let g = ReplayGraph::build(
            &[
                cap("w1", vec![rw(0x10)]),
                cap("r1", vec![rd(0x10)]),
                cap("r2", vec![rd(0x10)]),
                cap("w2", vec![rw(0x10)]),
            ],
            &[],
        );
        // No edge between the two readers; the second writer waits for both.
        assert_eq!(g.edge_pairs(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn leading_readers_have_no_predecessors() {
        let g = ReplayGraph::build(
            &[
                cap("r1", vec![rd(0x10)]),
                cap("r2", vec![rd(0x10)]),
                cap("w", vec![rw(0x10)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn same_op_reductions_group() {
        let g = ReplayGraph::build(
            &[
                cap("w", vec![rw(0x20)]),
                cap("s1", vec![red(0x20)]),
                cap("s2", vec![red(0x20)]),
                cap("r", vec![rd(0x20)]),
            ],
            &[],
        );
        // Reductions concurrent among themselves, after the writer,
        // before the reader.
        assert_eq!(g.edge_pairs(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(g.groups().len(), 1);
        assert_eq!(g.groups()[0].members, 2);
        assert_eq!(g.nodes()[1].red.len(), 1);
        assert_eq!(g.nodes()[2].red.len(), 1);
    }

    #[test]
    fn different_op_reductions_serialize() {
        let a = AccessDecl::new(0x20, 8, AccessMode::Reduction(RedOp::SumF64));
        let b = AccessDecl::new(0x20, 8, AccessMode::Reduction(RedOp::MaxF64));
        let g = ReplayGraph::build(&[cap("s", vec![a]), cap("m", vec![b])], &[]);
        assert_eq!(g.edge_pairs(), vec![(0, 1)]);
        assert_eq!(g.groups().len(), 2);
    }

    #[test]
    fn duplicate_address_decls_never_self_edge() {
        // read + write on the same address within one task (a contract
        // violation the dep systems only debug_assert against) must not
        // produce a self-edge — that would deadlock replay.
        let both = vec![rd(0x10), rw(0x10)];
        let g = ReplayGraph::build(&[cap("a", both.clone()), cap("b", both)], &[]);
        assert_eq!(
            g.edge_pairs(),
            vec![(0, 1)],
            "coalesced to one exclusive access"
        );
        assert_eq!(g.nodes()[0].indeg, 0);
        assert_eq!(g.nodes()[1].indeg, 1);
    }

    #[test]
    fn multi_address_edges_dedup() {
        // Two shared addresses between the same pair → one edge.
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10), rw(0x18)]),
                cap("b", vec![rw(0x10), rw(0x18)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 1)]);
        assert_eq!(g.nodes()[1].indeg, 1);
    }

    #[test]
    fn reset_restores_counters() {
        let g = ReplayGraph::build(&[cap("a", vec![rw(0x10)]), cap("b", vec![rw(0x10)])], &[]);
        g.reset();
        // Node 0: indeg 0 + creation hold → one countdown releases it.
        let fake = 0x1000 as *mut Task;
        g.publish(0, fake);
        assert_eq!(g.countdown(0), Some(fake));
        // Node 1: indeg 1 + hold → two countdowns.
        g.publish(1, fake);
        assert_eq!(g.countdown(1), None);
        assert_eq!(g.countdown(1), Some(fake));
        g.reset();
        g.publish(1, fake);
        assert_eq!(g.countdown(1), None);
        assert_eq!(g.countdown(1), Some(fake));
    }

    #[test]
    fn tap_crosscheck_counts_foreign_edges() {
        let mk_edge = |from: TaskId, to: TaskId| GraphEdge {
            from,
            from_label: "a",
            to,
            to_label: "b",
            addr: 0x10,
            kind: EdgeKind::Successor,
        };
        let mut c1 = cap("a", vec![rw(0x10)]);
        c1.id = Some(5);
        let mut c2 = cap("b", vec![rw(0x10)]);
        c2.id = Some(6);
        let g = ReplayGraph::build(&[c1, c2], &[mk_edge(5, 6), mk_edge(6, 99)]);
        assert_eq!(g.tapped_edge_count(), 1);
        assert_eq!(g.foreign_edge_count(), 1);
    }
}
