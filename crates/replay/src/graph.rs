//! The frozen [`ReplayGraph`]: a compressed-sparse-row task graph plus
//! per-task atomic in-degree counters.
//!
//! The builder derives replay edges from the captured access sets with
//! the same semantics the dependency systems implement:
//!
//! * exclusive accesses (`write`/`readwrite`) serialize;
//! * consecutive readers form a *group* that runs concurrently and is
//!   collectively a predecessor of the next exclusive access;
//! * consecutive same-op reductions form a group that runs concurrently
//!   on private per-worker slots and is combined into the target once,
//!   when its last member finishes (see the engine).
//!
//! **Steady-state layout.** Everything a replayed iteration walks lives
//! in shared CSR arenas built once at freeze time — successor lists
//! (`succ_off`/`succ_data`), access declarations (`decl_off`/
//! `decl_data`) and reduction memberships (`red_off`/`red_data`) are
//! contiguous slices indexed by node, not per-node heap vectors. No
//! per-node allocation survives freezing, successor walks are linear
//! scans, and the per-iteration reset of the in-degree counters is a
//! single `memcpy` from a precomputed template ([`ReplayGraph::reset`];
//! the node-by-node sweep of the pre-CSR engine is retained as
//! [`ReplayGraph::reset_sweep`] for the differential reference path).
//!
//! The dependency-edge tap (`GraphEdge`) from the instrumented record
//! iteration is kept as a cross-check: tapped successor edges between
//! captured tasks must connect nodes the decl-derived graph also
//! orders; edges touching *unknown* task ids reveal nested children
//! linking into the recorded iteration (counted, for diagnostics).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use nanotask_core::graph::{EdgeKind, GraphEdge};
use nanotask_core::task::Task;
use nanotask_core::{AccessDecl, AccessMode, RedOp, TaskId};

use crate::recorder::{CapturedDecls, CapturedSpawn, STRUCTURAL_HASH_SEED, SigHashMode};

/// Scalar metadata of one frozen node (creation order = node index).
/// Variable-length data — successors, declarations, reduction
/// memberships — lives in the graph's CSR arenas, reached through
/// [`ReplayGraph::succs`], [`ReplayGraph::decls_of`] and
/// [`ReplayGraph::red_of`].
pub struct NodeMeta {
    /// Task label.
    pub label: &'static str,
    /// Scheduling priority.
    pub priority: i32,
    /// Signature hash of (label, priority, access set) — what the replay
    /// engine matches incoming spawns against.
    pub sig: u64,
    /// Number of predecessor edges.
    pub indeg: u32,
}

/// A reduction chain instance: consecutive same-op reduction accesses on
/// one address within the iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedGroup {
    /// Target base address.
    pub addr: usize,
    /// Region length in bytes.
    pub len: usize,
    /// The operation.
    pub op: RedOp,
    /// Number of participating tasks.
    pub members: u32,
}

/// The frozen, replayable task graph of one iteration.
pub struct ReplayGraph {
    /// Per-node scalars, creation order.
    meta: Vec<NodeMeta>,
    /// CSR successor arena: node `i`'s successors are
    /// `succ_data[succ_off[i]..succ_off[i + 1]]`.
    succ_off: Vec<u32>,
    succ_data: Vec<u32>,
    /// CSR declaration arena (bare, no chain state): the single copy of
    /// every recorded access set — divergence reconstruction references
    /// it by index instead of cloning ([`ReplayGraph::prefix_captured`]).
    decl_off: Vec<u32>,
    decl_data: Vec<AccessDecl>,
    /// CSR reduction arena: `(bare decl, group index)` memberships.
    red_off: Vec<u32>,
    red_data: Vec<(AccessDecl, u32)>,
    groups: Vec<RedGroup>,
    hash: u64,
    edges: usize,
    /// Successor edges the dependency system reported during the record
    /// iteration, between captured tasks (cross-check/diagnostics).
    tapped_edges: usize,
    /// Tapped edges touching task ids outside the captured set (nested
    /// children linking into the recorded iteration).
    foreign_edges: usize,
    /// Precomputed reset image of `pending`: `indeg + 1` per node (the
    /// +1 is the creation hold, dropped by the engine after the node's
    /// held task exists). One `memcpy` of this restores all counters.
    pending_template: Vec<u32>,
    /// In-degree countdown per node for the current iteration.
    pending: Vec<AtomicU32>,
    /// The held task of each node for the current iteration.
    slots: Vec<AtomicPtr<Task>>,
}

/// Fold-multiply hasher for the builder's address/id maps. The freeze
/// sweep does a map probe per access; at 10^6-node graphs the default
/// SipHash is a measurable per-node cost with no adversary to resist
/// (addresses come from the application's own data structures).
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Spread the high (multiply-mixed) bits into the table-index
        // low bits.
        self.0.rotate_left(26)
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Sentinel for an unassigned [`AddrIndex`] dense-table slot.
const ADDR_UNASSIGNED: u32 = u32::MAX;

/// Address → dense state index for the freeze sweep.
///
/// Applications register dependencies on their own data structures —
/// overwhelmingly contiguous arrays — so the address set almost always
/// spans a compact, uniformly aligned range. A direct-mapped table over
/// `(addr - min) >> alignment` turns the per-access map probe (at 10^6
/// addresses: a guaranteed cache miss into a tens-of-MB hash table, the
/// dominant freeze cost) into one indexed load with the application's
/// own locality. The hash map stays as the fallback for sparse or
/// irregular address sets.
enum AddrIndex {
    Dense {
        min: usize,
        shift: u32,
        table: Vec<u32>,
    },
    Map(FxMap<usize, u32>),
}

impl AddrIndex {
    /// Pick the representation from the address range observed in the
    /// first pass: the `min..=max` span and the XOR-accumulated
    /// alignment of all address differences. Dense wins whenever the
    /// aligned span stays within a small multiple of the access count —
    /// the table is then at most a few times the size the hash map
    /// would have been, with none of its probe misses.
    fn new(min: usize, max: usize, xor: usize, accesses: usize) -> Self {
        if accesses == 0 {
            return Self::Map(FxMap::default());
        }
        let shift = if xor == 0 { 0 } else { xor.trailing_zeros() };
        let table_len = ((max - min) >> shift) + 1;
        if table_len <= accesses.saturating_mul(4) + 1024 {
            Self::Dense {
                min,
                shift,
                table: vec![ADDR_UNASSIGNED; table_len],
            }
        } else {
            Self::Map(FxMap::default())
        }
    }

    /// The assignment slot for `addr` (`ADDR_UNASSIGNED` when no state
    /// index has been handed out yet).
    #[inline]
    fn slot(&mut self, addr: usize) -> &mut u32 {
        match self {
            Self::Dense { min, shift, table } => &mut table[(addr - *min) >> *shift],
            Self::Map(m) => m.entry(addr).or_insert(ADDR_UNASSIGNED),
        }
    }
}

/// Node list with two inline slots. Barrier/group sets are almost
/// always tiny (a single writer, a pair of stencil readers); keeping
/// them inline means single-access addresses — the common case at
/// million-task scale — cost the builder zero heap allocations.
#[derive(Default)]
struct TinyVec {
    inline: [u32; 2],
    len: u8,
    spill: Vec<u32>,
}

impl TinyVec {
    #[inline]
    fn push(&mut self, v: u32) {
        if !self.spill.is_empty() {
            self.spill.push(v);
        } else if (self.len as usize) < 2 {
            self.inline[self.len as usize] = v;
            self.len += 1;
        } else {
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(v);
        }
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    #[inline]
    fn as_slice(&self) -> &[u32] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

/// Per-address sweep state of the builder. Stored in a dense first-touch
/// array (the hash table maps address → index only): the table entries
/// stay small enough to cache at million-address scale, and first-touch
/// order matches the application's own traversal, so neighbour lookups
/// (stencils, wavefronts) land near each other instead of at random
/// hash positions.
struct AddrState {
    /// The completed exclusive set every current-group member depends on.
    barrier: TinyVec,
    /// The currently accumulating concurrent group.
    group: TinyVec,
    class: GroupClass,
}

impl Default for AddrState {
    fn default() -> Self {
        Self {
            barrier: TinyVec::default(),
            group: TinyVec::default(),
            class: GroupClass::Exclusive,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupClass {
    Exclusive,
    Readers,
    Red(RedOp, usize),
}

/// Merge two access modes of *one task* on *one address* into the
/// effective mode: equal modes keep themselves, anything mixed is
/// exclusive. (Duplicate addresses within a task are a contract
/// violation the dependency systems `debug_assert` against; the replay
/// builder must still never emit a self-edge for them.)
fn merge_modes(a: AccessMode, b: AccessMode) -> AccessMode {
    if a == b { a } else { AccessMode::ReadWrite }
}

/// A declaration stripped of any attached reduction-chain state (replay
/// graphs never own chain instances — the engine attaches fresh ones per
/// iteration).
fn bare_decl(d: &AccessDecl) -> AccessDecl {
    AccessDecl::new(d.addr, d.len, d.mode)
}

/// One task's declarations with duplicate addresses coalesced
/// (first-occurrence order, strongest mode wins), written into a
/// caller-owned scratch buffer so the freeze sweep performs no per-node
/// allocation.
fn coalesce_into(decls: &[AccessDecl], eff: &mut Vec<AccessDecl>) {
    eff.clear();
    for d in decls {
        if let Some(prev) = eff.iter_mut().find(|p| p.addr == d.addr) {
            prev.mode = merge_modes(prev.mode, d.mode);
            prev.len = prev.len.max(d.len);
        } else {
            eff.push(d.clone());
        }
    }
}

impl ReplayGraph {
    /// Freeze a captured iteration with the default (word-folded)
    /// signature hash. `tap` is the dependency-edge record of the
    /// instrumented iteration (may be empty when unavailable, e.g. after
    /// a divergence re-record).
    pub fn build(captured: &[CapturedSpawn], tap: &[GraphEdge]) -> Self {
        Self::build_with(captured, tap, SigHashMode::Folded)
    }

    /// Freeze a captured iteration under an explicit [`SigHashMode`] —
    /// the node signatures and the structural hash must come from the
    /// same function the engine will match fed spawns with.
    pub fn build_with(captured: &[CapturedSpawn], tap: &[GraphEdge], mode: SigHashMode) -> Self {
        let n = captured.len();
        // One pass over the captured spawns builds both the per-node
        // scalars (label, priority, signature hash) and the declaration
        // arena — the bare access sets, one contiguous run per node, the
        // single frozen copy ([`ReplayGraph::prefix_captured`] and the
        // partitioner index into it, nothing re-clones it). After a long
        // record iteration the captured decl vectors sit scattered across
        // the heap in allocation order; every separate sweep over them
        // re-pays those cache misses, so everything downstream (the edge
        // sweep, the structural hash) reads the contiguous arena or the
        // already-computed sigs instead of touching `captured` again.
        let mut meta: Vec<NodeMeta> = Vec::with_capacity(n);
        let mut decl_off: Vec<u32> = Vec::with_capacity(n + 1);
        let mut decl_data: Vec<AccessDecl> = Vec::new();
        decl_off.push(0);
        // Address-range statistics for [`AddrIndex`]: min/max give the
        // span; the XOR of every address against the first gives the
        // common alignment of all pairwise differences (`x ^ y` with k
        // trailing zeros ⇒ `x ≡ y (mod 2^k)`), order-independently and
        // with no per-address storage.
        let mut addr_min = usize::MAX;
        let mut addr_max = 0usize;
        let mut addr_xor = 0usize;
        let mut addr_first = None;
        for c in captured {
            let ds = c.decls.as_slice();
            meta.push(NodeMeta {
                label: c.label,
                priority: c.priority,
                sig: mode.sig(c.label, c.priority, ds),
                indeg: 0,
            });
            for d in ds {
                let first = *addr_first.get_or_insert(d.addr);
                addr_xor |= d.addr ^ first;
                addr_min = addr_min.min(d.addr);
                addr_max = addr_max.max(d.addr);
            }
            decl_data.extend(ds.iter().map(bare_decl));
            decl_off.push(decl_data.len() as u32);
        }

        let mut groups: Vec<RedGroup> = Vec::new();
        let mut red_off: Vec<u32> = Vec::with_capacity(n + 1);
        let mut red_data: Vec<(AccessDecl, u32)> = Vec::new();
        red_off.push(0);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut per_addr = AddrIndex::new(addr_min, addr_max, addr_xor, decl_data.len());
        let mut addr_states: Vec<AddrState> = Vec::new();
        // Generation-time dedup: edges into node `i` are only emitted
        // while sweeping node `i`, so one stamp per predecessor suffices —
        // `stamp[from] == i + 1` marks `(from, i)` as already recorded.
        // This replaces the former O(E log E) sort+dedup of the edge list
        // with O(E) work total.
        let mut stamp: Vec<u32> = vec![0; n];
        // Out-degree per node, reused as the counting-sort cursor below.
        let mut succ_count: Vec<u32> = vec![0; n];
        // Per-node coalesce scratch (no transient allocation per node).
        let mut eff: Vec<AccessDecl> = Vec::new();

        for i in 0..n {
            // The arena copy made above carries everything this sweep
            // needs (addr/len/mode) — read it, not the scattered
            // captured vectors.
            let node_decls = &decl_data[decl_off[i] as usize..decl_off[i + 1] as usize];
            let i = i as u32;
            let mut push_edge = |from: u32| {
                debug_assert!(from < i, "edges point forward in creation order");
                if stamp[from as usize] != i + 1 {
                    stamp[from as usize] = i + 1;
                    succ_count[from as usize] += 1;
                    meta[i as usize].indeg += 1;
                    edges.push((from, i));
                }
            };
            coalesce_into(node_decls, &mut eff);
            for d in &eff {
                let class = match d.mode {
                    AccessMode::Read => GroupClass::Readers,
                    AccessMode::Reduction(op) => {
                        // Group index resolved below (joins or new).
                        GroupClass::Red(op, usize::MAX)
                    }
                    _ => GroupClass::Exclusive,
                };
                let slot = per_addr.slot(d.addr);
                if *slot == ADDR_UNASSIGNED {
                    addr_states.push(AddrState::default());
                    *slot = (addr_states.len() - 1) as u32;
                }
                let si = *slot;
                let st = &mut addr_states[si as usize];
                let joins = !st.group.is_empty()
                    && match (st.class, class) {
                        (GroupClass::Readers, GroupClass::Readers) => true,
                        (GroupClass::Red(a, _), GroupClass::Red(b, _)) => a == b,
                        _ => false,
                    };
                if joins {
                    for &b in st.barrier.as_slice() {
                        push_edge(b);
                    }
                    st.group.push(i);
                } else {
                    for &g in st.group.as_slice() {
                        push_edge(g);
                    }
                    // Rotate group → barrier keeping both buffers (the
                    // former `mem::take` dropped one allocation per
                    // rotation per address).
                    std::mem::swap(&mut st.barrier, &mut st.group);
                    st.group.clear();
                    st.group.push(i);
                    st.class = match class {
                        GroupClass::Red(op, _) => {
                            groups.push(RedGroup {
                                addr: d.addr,
                                len: d.len.max(op.elem_size()),
                                op,
                                members: 0,
                            });
                            GroupClass::Red(op, groups.len() - 1)
                        }
                        other => other,
                    };
                }
                if let GroupClass::Red(_, gi) = st.class {
                    groups[gi].members += 1;
                    red_data.push((AccessDecl::new(d.addr, d.len, d.mode), gi as u32));
                }
            }
            red_off.push(red_data.len() as u32);
        }

        // Counting sort by `from` builds the successor CSR in O(n + E).
        // Edges were emitted in increasing `to` order, so a stable
        // scatter reproduces the (from, to)-lexicographic layout the
        // sorted builder produced.
        let mut succ_off: Vec<u32> = Vec::with_capacity(n + 1);
        succ_off.push(0);
        let mut acc = 0u32;
        for count in succ_count.iter_mut() {
            let c = *count;
            *count = acc; // becomes this node's scatter cursor
            acc += c;
            succ_off.push(acc);
        }
        let mut succ_data: Vec<u32> = vec![0; edges.len()];
        for &(from, to) in &edges {
            let cur = &mut succ_count[from as usize];
            succ_data[*cur as usize] = to;
            *cur += 1;
        }

        // Cross-check against the tapped dependency-system edges. The
        // id index is only worth building when there is a tap to check
        // (re-records and untapped runs pass an empty slice).
        let mut tapped_edges = 0;
        let mut foreign_edges = 0;
        if tap.iter().any(|e| e.kind == EdgeKind::Successor) {
            // Captured ids come from one monotonically increasing counter
            // during the record iteration, so they cluster in a dense
            // range. A bitmap over that range answers membership in O(1)
            // from a few hundred KB that stay cached — the former
            // n-entry hash map was, at 10^6 nodes, the single most
            // expensive phase of the whole freeze (every probe a cache
            // miss). The map remains as the fallback for sparse id sets
            // (hand-built captures).
            let mut lo = TaskId::MAX;
            let mut hi = TaskId::MIN;
            let mut have = 0usize;
            for c in captured {
                if let Some(id) = c.id {
                    lo = lo.min(id);
                    hi = hi.max(id);
                    have += 1;
                }
            }
            let span = if have == 0 { 0 } else { (hi - lo + 1) as usize };
            if have > 0 && span <= have * 4 + 1024 {
                let mut bits = vec![0u64; span.div_ceil(64)];
                for c in captured {
                    if let Some(id) = c.id {
                        let b = (id - lo) as usize;
                        bits[b / 64] |= 1 << (b % 64);
                    }
                }
                let member = |id: TaskId| {
                    (lo..=hi).contains(&id) && {
                        let b = (id - lo) as usize;
                        bits[b / 64] & (1 << (b % 64)) != 0
                    }
                };
                for e in tap {
                    if e.kind != EdgeKind::Successor {
                        continue;
                    }
                    // A source that predates the captured window is a
                    // previous phase's last access still linked on the
                    // address chain (the dependency system reports the
                    // link even though that task completed long ago —
                    // seen on records after a fault fallback, which run
                    // at iteration > 0). Ids are monotone, so it cannot
                    // be a nested child of *this* record: neither
                    // tapped nor foreign.
                    if e.from < lo {
                        continue;
                    }
                    if member(e.from) && member(e.to) {
                        tapped_edges += 1;
                    } else {
                        foreign_edges += 1;
                    }
                }
            } else {
                let ids: FxMap<TaskId, ()> = captured
                    .iter()
                    .filter_map(|c| c.id.map(|id| (id, ())))
                    .collect();
                for e in tap {
                    if e.kind != EdgeKind::Successor {
                        continue;
                    }
                    // Stale chain edge from a previous phase — see the
                    // bitmap branch above.
                    if have > 0 && e.from < lo {
                        continue;
                    }
                    match (ids.get(&e.from), ids.get(&e.to)) {
                        (Some(_), Some(_)) => tapped_edges += 1,
                        _ => foreign_edges += 1,
                    }
                }
            }
        }

        let pending_template: Vec<u32> = meta.iter().map(|m| m.indeg + 1).collect();
        let pending = (0..n).map(|_| AtomicU32::new(0)).collect();
        let slots = (0..n)
            .map(|_| AtomicPtr::new(core::ptr::null_mut()))
            .collect();
        // Fold the structural hash from the per-node sigs computed in
        // the first pass — identical by construction to
        // `mode.structural_hash(captured)` (which chains `sig(c)` per
        // node from the same seed) without a third sweep over the
        // scattered captured decls.
        let h = meta
            .iter()
            .fold(STRUCTURAL_HASH_SEED, |h, m| mode.chain(h, m.sig));
        Self {
            hash: h,
            edges: edges.len(),
            meta,
            succ_off,
            succ_data,
            decl_off,
            decl_data,
            red_off,
            red_data,
            groups,
            tapped_edges,
            foreign_edges,
            pending_template,
            pending,
            slots,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True for a graph with no tasks.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Per-node scalar metadata, in creation order.
    pub fn nodes(&self) -> &[NodeMeta] {
        &self.meta
    }

    /// Successors of node `i` (nodes that become releasable when it
    /// completes): a contiguous CSR slice, no pointer chase.
    #[inline]
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succ_data[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// The full recorded access set of node `i`, exactly as captured
    /// (bare, no chain state): a slice of the frozen declaration arena.
    #[inline]
    pub fn decls_of(&self, i: usize) -> &[AccessDecl] {
        &self.decl_data[self.decl_off[i] as usize..self.decl_off[i + 1] as usize]
    }

    /// Reduction memberships of node `i`: `(bare declaration, index of
    /// the [`RedGroup`] it participates in)`.
    #[inline]
    pub fn red_of(&self, i: usize) -> &[(AccessDecl, u32)] {
        &self.red_data[self.red_off[i] as usize..self.red_off[i + 1] as usize]
    }

    /// The reduction groups.
    pub fn groups(&self) -> &[RedGroup] {
        &self.groups
    }

    /// Structural hash of the recorded iteration.
    pub fn structural_hash(&self) -> u64 {
        self.hash
    }

    /// Signature hash of the first recorded spawn (`None` for an empty
    /// graph) — the cache's phase-switch lookup key.
    pub fn first_sig(&self) -> Option<u64> {
        self.meta.first().map(|n| n.sig)
    }

    /// Reconstruct the first `n` recorded spawns as [`CapturedSpawn`]s
    /// (metadata only, no bodies/ids). Used by the replay engine to
    /// freeze a divergent iteration's graph: its already-fed prefix
    /// matched these nodes by signature hash, so the recorded metadata
    /// stands in for the spawns actually observed. The declarations are
    /// *referenced* by CSR index into this graph's frozen decl arena
    /// ([`CapturedDecls::Frozen`]) — nothing is cloned.
    pub fn prefix_captured(self: &Arc<Self>, n: usize) -> Vec<CapturedSpawn> {
        (0..n.min(self.meta.len()))
            .map(|i| CapturedSpawn {
                label: self.meta[i].label,
                priority: self.meta[i].priority,
                decls: CapturedDecls::Frozen {
                    graph: Arc::clone(self),
                    node: i as u32,
                },
                body: None,
                id: None,
            })
            .collect()
    }

    /// Total (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Frozen footprint in bytes: every arena the steady state walks
    /// (per-node metadata, successor/declaration/reduction CSR arenas,
    /// reduction groups, in-degree template + counters, task slots).
    /// Interior heap of `AccessDecl` is not counted — bare frozen decls
    /// carry no chain state.
    pub fn bytes(&self) -> u64 {
        use core::mem::size_of;
        (self.meta.len() * size_of::<NodeMeta>()
            + self.succ_off.len() * size_of::<u32>()
            + self.succ_data.len() * size_of::<u32>()
            + self.decl_off.len() * size_of::<u32>()
            + self.decl_data.len() * size_of::<AccessDecl>()
            + self.red_off.len() * size_of::<u32>()
            + self.red_data.len() * size_of::<(AccessDecl, u32)>()
            + self.groups.len() * size_of::<RedGroup>()
            + self.pending_template.len() * size_of::<u32>()
            + self.pending.len() * size_of::<AtomicU32>()
            + self.slots.len() * size_of::<AtomicPtr<Task>>()) as u64
    }

    /// Successor edges tapped from the dependency system between
    /// captured tasks during the record iteration.
    pub fn tapped_edge_count(&self) -> usize {
        self.tapped_edges
    }

    /// Tapped edges involving tasks outside the captured set.
    pub fn foreign_edge_count(&self) -> usize {
        self.foreign_edges
    }

    /// All edges as `(from, to)` node-index pairs (test/analysis support).
    pub fn edge_pairs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::with_capacity(self.edges);
        for i in 0..self.meta.len() {
            for &s in self.succs(i) {
                v.push((i as u32, s));
            }
        }
        v
    }

    /// Reset every in-degree counter to `indeg + 1` and clear the task
    /// slots — run once before each replayed iteration. The `+1` is the
    /// *creation hold*: it guarantees a node cannot be released before
    /// its held task exists, even if all its predecessors finish while
    /// the creator is still spawning.
    ///
    /// Two plain `memcpy`s from the freeze-time template, not a
    /// node-by-node sweep: the caller holds the iteration barrier (the
    /// previous iteration's subtree completed, nothing else touches the
    /// graph), so the non-atomic bulk writes race with nothing — all
    /// prior worker accesses happen-before the barrier, and all later
    /// ones happen-after the tasks are published.
    pub fn reset(&self) {
        let n = self.pending.len();
        if n == 0 {
            return;
        }
        // SAFETY: `AtomicU32` has the same size and bit validity as
        // `u32`, `AtomicPtr<T>` as `*mut T`, and the null pointer is the
        // all-zero bit pattern on every supported target. Exclusive
        // access per the barrier contract above.
        unsafe {
            core::ptr::copy_nonoverlapping(
                self.pending_template.as_ptr(),
                self.pending.as_ptr() as *mut u32,
                n,
            );
            core::ptr::write_bytes(self.slots.as_ptr() as *mut *mut Task, 0, n);
        }
    }

    /// The pre-CSR engine's reset: one relaxed store per node. Retained
    /// as the reference data path for the differential conformance tests
    /// and the `fig16_replay_hotloop` baseline
    /// (`RuntimeConfig::replay_compat`); behavior is identical to
    /// [`ReplayGraph::reset`], only the per-iteration cost differs.
    pub fn reset_sweep(&self) {
        for i in 0..self.pending.len() {
            self.pending[i].store(self.pending_template[i], Ordering::Relaxed);
            self.slots[i].store(core::ptr::null_mut(), Ordering::Relaxed);
        }
    }

    /// Publish node `i`'s held task for this iteration.
    pub(crate) fn publish(&self, i: usize, task: *mut Task) {
        self.slots[i].store(task, Ordering::Release);
    }

    /// Drop one pending reference of node `i`; returns the task pointer
    /// when the node just became releasable.
    pub(crate) fn countdown(&self, i: usize) -> Option<*mut Task> {
        if self.pending[i].fetch_sub(1, Ordering::AcqRel) == 1 {
            let t = self.slots[i].load(Ordering::Acquire);
            debug_assert!(!t.is_null(), "released before publication");
            Some(t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(label: &'static str, decls: Vec<AccessDecl>) -> CapturedSpawn {
        CapturedSpawn::bare(label, 0, decls)
    }

    fn rw(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::ReadWrite)
    }
    fn rd(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::Read)
    }
    fn red(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::Reduction(RedOp::SumF64))
    }

    #[test]
    fn writer_chain_serializes() {
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10)]),
                cap("b", vec![rw(0x10)]),
                cap("c", vec![rw(0x10)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 1), (1, 2)]);
        assert_eq!(g.nodes()[0].indeg, 0);
        assert_eq!(g.nodes()[2].indeg, 1);
    }

    #[test]
    fn readers_run_concurrently_between_writers() {
        let g = ReplayGraph::build(
            &[
                cap("w1", vec![rw(0x10)]),
                cap("r1", vec![rd(0x10)]),
                cap("r2", vec![rd(0x10)]),
                cap("w2", vec![rw(0x10)]),
            ],
            &[],
        );
        // No edge between the two readers; the second writer waits for both.
        assert_eq!(g.edge_pairs(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn leading_readers_have_no_predecessors() {
        let g = ReplayGraph::build(
            &[
                cap("r1", vec![rd(0x10)]),
                cap("r2", vec![rd(0x10)]),
                cap("w", vec![rw(0x10)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn same_op_reductions_group() {
        let g = ReplayGraph::build(
            &[
                cap("w", vec![rw(0x20)]),
                cap("s1", vec![red(0x20)]),
                cap("s2", vec![red(0x20)]),
                cap("r", vec![rd(0x20)]),
            ],
            &[],
        );
        // Reductions concurrent among themselves, after the writer,
        // before the reader.
        assert_eq!(g.edge_pairs(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(g.groups().len(), 1);
        assert_eq!(g.groups()[0].members, 2);
        assert_eq!(g.red_of(1).len(), 1);
        assert_eq!(g.red_of(2).len(), 1);
    }

    #[test]
    fn different_op_reductions_serialize() {
        let a = AccessDecl::new(0x20, 8, AccessMode::Reduction(RedOp::SumF64));
        let b = AccessDecl::new(0x20, 8, AccessMode::Reduction(RedOp::MaxF64));
        let g = ReplayGraph::build(&[cap("s", vec![a]), cap("m", vec![b])], &[]);
        assert_eq!(g.edge_pairs(), vec![(0, 1)]);
        assert_eq!(g.groups().len(), 2);
    }

    #[test]
    fn duplicate_address_decls_never_self_edge() {
        // read + write on the same address within one task (a contract
        // violation the dep systems only debug_assert against) must not
        // produce a self-edge — that would deadlock replay.
        let both = vec![rd(0x10), rw(0x10)];
        let g = ReplayGraph::build(&[cap("a", both.clone()), cap("b", both)], &[]);
        assert_eq!(
            g.edge_pairs(),
            vec![(0, 1)],
            "coalesced to one exclusive access"
        );
        assert_eq!(g.nodes()[0].indeg, 0);
        assert_eq!(g.nodes()[1].indeg, 1);
    }

    #[test]
    fn multi_address_edges_dedup() {
        // Two shared addresses between the same pair → one edge.
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10), rw(0x18)]),
                cap("b", vec![rw(0x10), rw(0x18)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 1)]);
        assert_eq!(g.nodes()[1].indeg, 1);
    }

    #[test]
    fn csr_arenas_match_per_node_views() {
        // The decl arena holds each node's captured set verbatim (bare)
        // and the successor arena is one contiguous run per node.
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10), rd(0x20)]),
                cap("b", vec![rw(0x10)]),
                cap("c", vec![rd(0x10)]),
            ],
            &[],
        );
        let addrs = |i: usize| g.decls_of(i).iter().map(|d| d.addr).collect::<Vec<_>>();
        assert_eq!(addrs(0), vec![0x10, 0x20]);
        assert_eq!(addrs(1), vec![0x10]);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.succs(1), &[2]);
        assert_eq!(g.succs(2), &[] as &[u32]);
    }

    #[test]
    fn reset_restores_counters() {
        let g = ReplayGraph::build(&[cap("a", vec![rw(0x10)]), cap("b", vec![rw(0x10)])], &[]);
        g.reset();
        // Node 0: indeg 0 + creation hold → one countdown releases it.
        let fake = 0x1000 as *mut Task;
        g.publish(0, fake);
        assert_eq!(g.countdown(0), Some(fake));
        // Node 1: indeg 1 + hold → two countdowns.
        g.publish(1, fake);
        assert_eq!(g.countdown(1), None);
        assert_eq!(g.countdown(1), Some(fake));
        g.reset();
        g.publish(1, fake);
        assert_eq!(g.countdown(1), None);
        assert_eq!(g.countdown(1), Some(fake));
    }

    #[test]
    fn reset_and_sweep_reset_agree() {
        // The memcpy reset and the retained node-by-node sweep must
        // leave identical counter/slot state.
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10)]),
                cap("b", vec![rw(0x10), rw(0x20)]),
                cap("c", vec![rw(0x20)]),
            ],
            &[],
        );
        let fake = 0x2000 as *mut Task;
        g.reset();
        g.publish(0, fake);
        let after_memcpy: Vec<u32> = (0..3)
            .map(|i| g.pending[i].load(Ordering::Relaxed))
            .collect();
        g.reset_sweep();
        let after_sweep: Vec<u32> = (0..3)
            .map(|i| g.pending[i].load(Ordering::Relaxed))
            .collect();
        assert_eq!(after_memcpy, after_sweep);
        assert!(
            (0..3).all(|i| g.slots[i].load(Ordering::Relaxed).is_null()),
            "sweep cleared the published slot"
        );
    }

    #[test]
    fn prefix_captured_references_frozen_arena() {
        let g = Arc::new(ReplayGraph::build(
            &[cap("a", vec![rw(0x10)]), cap("b", vec![rw(0x10), rd(0x20)])],
            &[],
        ));
        let prefix = g.prefix_captured(2);
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix[1].decls.as_slice().len(), g.decls_of(1).len());
        // The reconstructed prefix points into the arena — same address,
        // not a copy.
        assert_eq!(
            prefix[1].decls.as_slice().as_ptr(),
            g.decls_of(1).as_ptr(),
            "frozen decls are referenced, not cloned"
        );
        // Re-freezing from the reconstructed prefix reproduces the shape.
        let g2 = ReplayGraph::build(&prefix, &[]);
        assert_eq!(g2.structural_hash(), g.structural_hash());
        assert_eq!(g2.edge_pairs(), g.edge_pairs());
    }

    #[test]
    fn edges_are_lexicographically_sorted_and_deduped() {
        // A denser mixed-mode sweep: the stamp-dedup + counting-sort CSR
        // must reproduce the (from, to)-sorted duplicate-free layout of
        // the former sort+dedup builder.
        let mut caps = Vec::new();
        for i in 0..64usize {
            let decls = match i % 4 {
                0 => vec![rw(0x10)],
                1 => vec![rd(0x10), rw(0x20)],
                2 => vec![rd(0x10), rd(0x20), red(0x30)],
                _ => vec![rw(0x10), rw(0x20), rw(0x30)],
            };
            caps.push(cap("t", decls));
        }
        let g = ReplayGraph::build(&caps, &[]);
        let pairs = g.edge_pairs();
        assert_eq!(g.edge_count(), pairs.len());
        for w in pairs.windows(2) {
            assert!(w[0] < w[1], "sorted and deduplicated: {w:?}");
        }
        let indeg_sum: u32 = g.nodes().iter().map(|m| m.indeg).sum();
        assert_eq!(indeg_sum as usize, pairs.len());
        assert!(g.bytes() > 0);
    }

    #[test]
    fn tap_crosscheck_counts_foreign_edges() {
        let mk_edge = |from: TaskId, to: TaskId| GraphEdge {
            from,
            from_label: "a",
            to,
            to_label: "b",
            addr: 0x10,
            kind: EdgeKind::Successor,
        };
        let mut c1 = cap("a", vec![rw(0x10)]);
        c1.id = Some(5);
        let mut c2 = cap("b", vec![rw(0x10)]);
        c2.id = Some(6);
        let g = ReplayGraph::build(&[c1, c2], &[mk_edge(5, 6), mk_edge(6, 99)]);
        assert_eq!(g.tapped_edge_count(), 1);
        assert_eq!(g.foreign_edge_count(), 1);
    }
}
