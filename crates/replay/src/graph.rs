//! The frozen [`ReplayGraph`]: a compressed-sparse-row task graph plus
//! per-task atomic in-degree counters.
//!
//! The builder derives replay edges from the captured access sets with
//! the same semantics the dependency systems implement:
//!
//! * exclusive accesses (`write`/`readwrite`) serialize;
//! * consecutive readers form a *group* that runs concurrently and is
//!   collectively a predecessor of the next exclusive access;
//! * consecutive same-op reductions form a group that runs concurrently
//!   on private per-worker slots and is combined into the target once,
//!   when its last member finishes (see the engine).
//!
//! **Steady-state layout.** Everything a replayed iteration walks lives
//! in shared CSR arenas built once at freeze time — successor lists
//! (`succ_off`/`succ_data`), access declarations (`decl_off`/
//! `decl_data`) and reduction memberships (`red_off`/`red_data`) are
//! contiguous slices indexed by node, not per-node heap vectors. No
//! per-node allocation survives freezing, successor walks are linear
//! scans, and the per-iteration reset of the in-degree counters is a
//! single `memcpy` from a precomputed template ([`ReplayGraph::reset`];
//! the node-by-node sweep of the pre-CSR engine is retained as
//! [`ReplayGraph::reset_sweep`] for the differential reference path).
//!
//! The dependency-edge tap (`GraphEdge`) from the instrumented record
//! iteration is kept as a cross-check: tapped successor edges between
//! captured tasks must connect nodes the decl-derived graph also
//! orders; edges touching *unknown* task ids reveal nested children
//! linking into the recorded iteration (counted, for diagnostics).

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use nanotask_core::graph::{EdgeKind, GraphEdge};
use nanotask_core::task::Task;
use nanotask_core::{AccessDecl, AccessMode, RedOp, TaskId};

use crate::recorder::{CapturedDecls, CapturedSpawn, SigHashMode};

/// Scalar metadata of one frozen node (creation order = node index).
/// Variable-length data — successors, declarations, reduction
/// memberships — lives in the graph's CSR arenas, reached through
/// [`ReplayGraph::succs`], [`ReplayGraph::decls_of`] and
/// [`ReplayGraph::red_of`].
pub struct NodeMeta {
    /// Task label.
    pub label: &'static str,
    /// Scheduling priority.
    pub priority: i32,
    /// Signature hash of (label, priority, access set) — what the replay
    /// engine matches incoming spawns against.
    pub sig: u64,
    /// Number of predecessor edges.
    pub indeg: u32,
}

/// A reduction chain instance: consecutive same-op reduction accesses on
/// one address within the iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedGroup {
    /// Target base address.
    pub addr: usize,
    /// Region length in bytes.
    pub len: usize,
    /// The operation.
    pub op: RedOp,
    /// Number of participating tasks.
    pub members: u32,
}

/// The frozen, replayable task graph of one iteration.
pub struct ReplayGraph {
    /// Per-node scalars, creation order.
    meta: Vec<NodeMeta>,
    /// CSR successor arena: node `i`'s successors are
    /// `succ_data[succ_off[i]..succ_off[i + 1]]`.
    succ_off: Vec<u32>,
    succ_data: Vec<u32>,
    /// CSR declaration arena (bare, no chain state): the single copy of
    /// every recorded access set — divergence reconstruction references
    /// it by index instead of cloning ([`ReplayGraph::prefix_captured`]).
    decl_off: Vec<u32>,
    decl_data: Vec<AccessDecl>,
    /// CSR reduction arena: `(bare decl, group index)` memberships.
    red_off: Vec<u32>,
    red_data: Vec<(AccessDecl, u32)>,
    groups: Vec<RedGroup>,
    hash: u64,
    edges: usize,
    /// Successor edges the dependency system reported during the record
    /// iteration, between captured tasks (cross-check/diagnostics).
    tapped_edges: usize,
    /// Tapped edges touching task ids outside the captured set (nested
    /// children linking into the recorded iteration).
    foreign_edges: usize,
    /// Precomputed reset image of `pending`: `indeg + 1` per node (the
    /// +1 is the creation hold, dropped by the engine after the node's
    /// held task exists). One `memcpy` of this restores all counters.
    pending_template: Vec<u32>,
    /// In-degree countdown per node for the current iteration.
    pending: Vec<AtomicU32>,
    /// The held task of each node for the current iteration.
    slots: Vec<AtomicPtr<Task>>,
}

/// Per-address sweep state of the builder.
struct AddrState {
    /// The completed exclusive set every current-group member depends on.
    barrier: Vec<u32>,
    /// The currently accumulating concurrent group.
    group: Vec<u32>,
    class: GroupClass,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupClass {
    Exclusive,
    Readers,
    Red(RedOp, usize),
}

/// Merge two access modes of *one task* on *one address* into the
/// effective mode: equal modes keep themselves, anything mixed is
/// exclusive. (Duplicate addresses within a task are a contract
/// violation the dependency systems `debug_assert` against; the replay
/// builder must still never emit a self-edge for them.)
fn merge_modes(a: AccessMode, b: AccessMode) -> AccessMode {
    if a == b { a } else { AccessMode::ReadWrite }
}

/// A declaration stripped of any attached reduction-chain state (replay
/// graphs never own chain instances — the engine attaches fresh ones per
/// iteration).
fn bare_decl(d: &AccessDecl) -> AccessDecl {
    AccessDecl::new(d.addr, d.len, d.mode)
}

/// One task's declarations with duplicate addresses coalesced
/// (first-occurrence order, strongest mode wins).
fn coalesced(decls: &[AccessDecl]) -> Vec<AccessDecl> {
    let mut eff: Vec<AccessDecl> = Vec::with_capacity(decls.len());
    for d in decls {
        if let Some(prev) = eff.iter_mut().find(|p| p.addr == d.addr) {
            prev.mode = merge_modes(prev.mode, d.mode);
            prev.len = prev.len.max(d.len);
        } else {
            eff.push(d.clone());
        }
    }
    eff
}

impl ReplayGraph {
    /// Freeze a captured iteration with the default (word-folded)
    /// signature hash. `tap` is the dependency-edge record of the
    /// instrumented iteration (may be empty when unavailable, e.g. after
    /// a divergence re-record).
    pub fn build(captured: &[CapturedSpawn], tap: &[GraphEdge]) -> Self {
        Self::build_with(captured, tap, SigHashMode::Folded)
    }

    /// Freeze a captured iteration under an explicit [`SigHashMode`] —
    /// the node signatures and the structural hash must come from the
    /// same function the engine will match fed spawns with.
    pub fn build_with(captured: &[CapturedSpawn], tap: &[GraphEdge], mode: SigHashMode) -> Self {
        let n = captured.len();
        let mut meta: Vec<NodeMeta> = captured
            .iter()
            .map(|c| NodeMeta {
                label: c.label,
                priority: c.priority,
                sig: mode.sig(c.label, c.priority, c.decls.as_slice()),
                indeg: 0,
            })
            .collect();

        // Declaration arena: the bare access sets, one contiguous run per
        // node — the single frozen copy ([`ReplayGraph::prefix_captured`]
        // and the partitioner index into it, nothing re-clones it).
        let mut decl_off: Vec<u32> = Vec::with_capacity(n + 1);
        let mut decl_data: Vec<AccessDecl> = Vec::new();
        decl_off.push(0);
        for c in captured {
            decl_data.extend(c.decls.as_slice().iter().map(bare_decl));
            decl_off.push(decl_data.len() as u32);
        }

        let mut groups: Vec<RedGroup> = Vec::new();
        let mut red_off: Vec<u32> = Vec::with_capacity(n + 1);
        let mut red_data: Vec<(AccessDecl, u32)> = Vec::new();
        red_off.push(0);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut per_addr: HashMap<usize, AddrState> = HashMap::new();

        for (i, c) in captured.iter().enumerate() {
            let i = i as u32;
            for d in &coalesced(c.decls.as_slice()) {
                let class = match d.mode {
                    AccessMode::Read => GroupClass::Readers,
                    AccessMode::Reduction(op) => {
                        // Group index resolved below (joins or new).
                        GroupClass::Red(op, usize::MAX)
                    }
                    _ => GroupClass::Exclusive,
                };
                let st = per_addr.entry(d.addr).or_insert_with(|| AddrState {
                    barrier: Vec::new(),
                    group: Vec::new(),
                    class: GroupClass::Exclusive,
                });
                let joins = !st.group.is_empty()
                    && match (st.class, class) {
                        (GroupClass::Readers, GroupClass::Readers) => true,
                        (GroupClass::Red(a, _), GroupClass::Red(b, _)) => a == b,
                        _ => false,
                    };
                if joins {
                    for &b in &st.barrier {
                        edges.push((b, i));
                    }
                    st.group.push(i);
                } else {
                    for &g in &st.group {
                        edges.push((g, i));
                    }
                    st.barrier = std::mem::take(&mut st.group);
                    st.group.push(i);
                    st.class = match class {
                        GroupClass::Red(op, _) => {
                            groups.push(RedGroup {
                                addr: d.addr,
                                len: d.len.max(op.elem_size()),
                                op,
                                members: 0,
                            });
                            GroupClass::Red(op, groups.len() - 1)
                        }
                        other => other,
                    };
                }
                if let GroupClass::Red(_, gi) = st.class {
                    groups[gi].members += 1;
                    red_data.push((AccessDecl::new(d.addr, d.len, d.mode), gi as u32));
                }
            }
            red_off.push(red_data.len() as u32);
        }

        edges.sort_unstable();
        edges.dedup();
        // Sorted-deduplicated edge pairs ARE the successor CSR: the `to`
        // fields in order form the arena, the `from` runs the offsets.
        let mut succ_off: Vec<u32> = vec![0; n + 1];
        let mut succ_data: Vec<u32> = Vec::with_capacity(edges.len());
        for &(from, to) in &edges {
            debug_assert!(from < to, "edges point forward in creation order");
            succ_off[from as usize + 1] += 1;
            succ_data.push(to);
            meta[to as usize].indeg += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }

        // Cross-check against the tapped dependency-system edges.
        let ids: HashMap<TaskId, u32> = captured
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.id.map(|id| (id, i as u32)))
            .collect();
        let mut tapped_edges = 0;
        let mut foreign_edges = 0;
        for e in tap {
            if e.kind != EdgeKind::Successor {
                continue;
            }
            match (ids.get(&e.from), ids.get(&e.to)) {
                (Some(_), Some(_)) => tapped_edges += 1,
                _ => foreign_edges += 1,
            }
        }

        let pending_template: Vec<u32> = meta.iter().map(|m| m.indeg + 1).collect();
        let pending = (0..n).map(|_| AtomicU32::new(0)).collect();
        let slots = (0..n)
            .map(|_| AtomicPtr::new(core::ptr::null_mut()))
            .collect();
        Self {
            hash: mode.structural_hash(captured),
            edges: edges.len(),
            meta,
            succ_off,
            succ_data,
            decl_off,
            decl_data,
            red_off,
            red_data,
            groups,
            tapped_edges,
            foreign_edges,
            pending_template,
            pending,
            slots,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True for a graph with no tasks.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Per-node scalar metadata, in creation order.
    pub fn nodes(&self) -> &[NodeMeta] {
        &self.meta
    }

    /// Successors of node `i` (nodes that become releasable when it
    /// completes): a contiguous CSR slice, no pointer chase.
    #[inline]
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succ_data[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// The full recorded access set of node `i`, exactly as captured
    /// (bare, no chain state): a slice of the frozen declaration arena.
    #[inline]
    pub fn decls_of(&self, i: usize) -> &[AccessDecl] {
        &self.decl_data[self.decl_off[i] as usize..self.decl_off[i + 1] as usize]
    }

    /// Reduction memberships of node `i`: `(bare declaration, index of
    /// the [`RedGroup`] it participates in)`.
    #[inline]
    pub fn red_of(&self, i: usize) -> &[(AccessDecl, u32)] {
        &self.red_data[self.red_off[i] as usize..self.red_off[i + 1] as usize]
    }

    /// The reduction groups.
    pub fn groups(&self) -> &[RedGroup] {
        &self.groups
    }

    /// Structural hash of the recorded iteration.
    pub fn structural_hash(&self) -> u64 {
        self.hash
    }

    /// Signature hash of the first recorded spawn (`None` for an empty
    /// graph) — the cache's phase-switch lookup key.
    pub fn first_sig(&self) -> Option<u64> {
        self.meta.first().map(|n| n.sig)
    }

    /// Reconstruct the first `n` recorded spawns as [`CapturedSpawn`]s
    /// (metadata only, no bodies/ids). Used by the replay engine to
    /// freeze a divergent iteration's graph: its already-fed prefix
    /// matched these nodes by signature hash, so the recorded metadata
    /// stands in for the spawns actually observed. The declarations are
    /// *referenced* by CSR index into this graph's frozen decl arena
    /// ([`CapturedDecls::Frozen`]) — nothing is cloned.
    pub fn prefix_captured(self: &Arc<Self>, n: usize) -> Vec<CapturedSpawn> {
        (0..n.min(self.meta.len()))
            .map(|i| CapturedSpawn {
                label: self.meta[i].label,
                priority: self.meta[i].priority,
                decls: CapturedDecls::Frozen {
                    graph: Arc::clone(self),
                    node: i as u32,
                },
                body: None,
                id: None,
            })
            .collect()
    }

    /// Total (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Successor edges tapped from the dependency system between
    /// captured tasks during the record iteration.
    pub fn tapped_edge_count(&self) -> usize {
        self.tapped_edges
    }

    /// Tapped edges involving tasks outside the captured set.
    pub fn foreign_edge_count(&self) -> usize {
        self.foreign_edges
    }

    /// All edges as `(from, to)` node-index pairs (test/analysis support).
    pub fn edge_pairs(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::with_capacity(self.edges);
        for i in 0..self.meta.len() {
            for &s in self.succs(i) {
                v.push((i as u32, s));
            }
        }
        v
    }

    /// Reset every in-degree counter to `indeg + 1` and clear the task
    /// slots — run once before each replayed iteration. The `+1` is the
    /// *creation hold*: it guarantees a node cannot be released before
    /// its held task exists, even if all its predecessors finish while
    /// the creator is still spawning.
    ///
    /// Two plain `memcpy`s from the freeze-time template, not a
    /// node-by-node sweep: the caller holds the iteration barrier (the
    /// previous iteration's subtree completed, nothing else touches the
    /// graph), so the non-atomic bulk writes race with nothing — all
    /// prior worker accesses happen-before the barrier, and all later
    /// ones happen-after the tasks are published.
    pub fn reset(&self) {
        let n = self.pending.len();
        if n == 0 {
            return;
        }
        // SAFETY: `AtomicU32` has the same size and bit validity as
        // `u32`, `AtomicPtr<T>` as `*mut T`, and the null pointer is the
        // all-zero bit pattern on every supported target. Exclusive
        // access per the barrier contract above.
        unsafe {
            core::ptr::copy_nonoverlapping(
                self.pending_template.as_ptr(),
                self.pending.as_ptr() as *mut u32,
                n,
            );
            core::ptr::write_bytes(self.slots.as_ptr() as *mut *mut Task, 0, n);
        }
    }

    /// The pre-CSR engine's reset: one relaxed store per node. Retained
    /// as the reference data path for the differential conformance tests
    /// and the `fig16_replay_hotloop` baseline
    /// (`RuntimeConfig::replay_compat`); behavior is identical to
    /// [`ReplayGraph::reset`], only the per-iteration cost differs.
    pub fn reset_sweep(&self) {
        for i in 0..self.pending.len() {
            self.pending[i].store(self.pending_template[i], Ordering::Relaxed);
            self.slots[i].store(core::ptr::null_mut(), Ordering::Relaxed);
        }
    }

    /// Publish node `i`'s held task for this iteration.
    pub(crate) fn publish(&self, i: usize, task: *mut Task) {
        self.slots[i].store(task, Ordering::Release);
    }

    /// Drop one pending reference of node `i`; returns the task pointer
    /// when the node just became releasable.
    pub(crate) fn countdown(&self, i: usize) -> Option<*mut Task> {
        if self.pending[i].fetch_sub(1, Ordering::AcqRel) == 1 {
            let t = self.slots[i].load(Ordering::Acquire);
            debug_assert!(!t.is_null(), "released before publication");
            Some(t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(label: &'static str, decls: Vec<AccessDecl>) -> CapturedSpawn {
        CapturedSpawn::bare(label, 0, decls)
    }

    fn rw(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::ReadWrite)
    }
    fn rd(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::Read)
    }
    fn red(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::Reduction(RedOp::SumF64))
    }

    #[test]
    fn writer_chain_serializes() {
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10)]),
                cap("b", vec![rw(0x10)]),
                cap("c", vec![rw(0x10)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 1), (1, 2)]);
        assert_eq!(g.nodes()[0].indeg, 0);
        assert_eq!(g.nodes()[2].indeg, 1);
    }

    #[test]
    fn readers_run_concurrently_between_writers() {
        let g = ReplayGraph::build(
            &[
                cap("w1", vec![rw(0x10)]),
                cap("r1", vec![rd(0x10)]),
                cap("r2", vec![rd(0x10)]),
                cap("w2", vec![rw(0x10)]),
            ],
            &[],
        );
        // No edge between the two readers; the second writer waits for both.
        assert_eq!(g.edge_pairs(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn leading_readers_have_no_predecessors() {
        let g = ReplayGraph::build(
            &[
                cap("r1", vec![rd(0x10)]),
                cap("r2", vec![rd(0x10)]),
                cap("w", vec![rw(0x10)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn same_op_reductions_group() {
        let g = ReplayGraph::build(
            &[
                cap("w", vec![rw(0x20)]),
                cap("s1", vec![red(0x20)]),
                cap("s2", vec![red(0x20)]),
                cap("r", vec![rd(0x20)]),
            ],
            &[],
        );
        // Reductions concurrent among themselves, after the writer,
        // before the reader.
        assert_eq!(g.edge_pairs(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(g.groups().len(), 1);
        assert_eq!(g.groups()[0].members, 2);
        assert_eq!(g.red_of(1).len(), 1);
        assert_eq!(g.red_of(2).len(), 1);
    }

    #[test]
    fn different_op_reductions_serialize() {
        let a = AccessDecl::new(0x20, 8, AccessMode::Reduction(RedOp::SumF64));
        let b = AccessDecl::new(0x20, 8, AccessMode::Reduction(RedOp::MaxF64));
        let g = ReplayGraph::build(&[cap("s", vec![a]), cap("m", vec![b])], &[]);
        assert_eq!(g.edge_pairs(), vec![(0, 1)]);
        assert_eq!(g.groups().len(), 2);
    }

    #[test]
    fn duplicate_address_decls_never_self_edge() {
        // read + write on the same address within one task (a contract
        // violation the dep systems only debug_assert against) must not
        // produce a self-edge — that would deadlock replay.
        let both = vec![rd(0x10), rw(0x10)];
        let g = ReplayGraph::build(&[cap("a", both.clone()), cap("b", both)], &[]);
        assert_eq!(
            g.edge_pairs(),
            vec![(0, 1)],
            "coalesced to one exclusive access"
        );
        assert_eq!(g.nodes()[0].indeg, 0);
        assert_eq!(g.nodes()[1].indeg, 1);
    }

    #[test]
    fn multi_address_edges_dedup() {
        // Two shared addresses between the same pair → one edge.
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10), rw(0x18)]),
                cap("b", vec![rw(0x10), rw(0x18)]),
            ],
            &[],
        );
        assert_eq!(g.edge_pairs(), vec![(0, 1)]);
        assert_eq!(g.nodes()[1].indeg, 1);
    }

    #[test]
    fn csr_arenas_match_per_node_views() {
        // The decl arena holds each node's captured set verbatim (bare)
        // and the successor arena is one contiguous run per node.
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10), rd(0x20)]),
                cap("b", vec![rw(0x10)]),
                cap("c", vec![rd(0x10)]),
            ],
            &[],
        );
        let addrs = |i: usize| g.decls_of(i).iter().map(|d| d.addr).collect::<Vec<_>>();
        assert_eq!(addrs(0), vec![0x10, 0x20]);
        assert_eq!(addrs(1), vec![0x10]);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.succs(1), &[2]);
        assert_eq!(g.succs(2), &[] as &[u32]);
    }

    #[test]
    fn reset_restores_counters() {
        let g = ReplayGraph::build(&[cap("a", vec![rw(0x10)]), cap("b", vec![rw(0x10)])], &[]);
        g.reset();
        // Node 0: indeg 0 + creation hold → one countdown releases it.
        let fake = 0x1000 as *mut Task;
        g.publish(0, fake);
        assert_eq!(g.countdown(0), Some(fake));
        // Node 1: indeg 1 + hold → two countdowns.
        g.publish(1, fake);
        assert_eq!(g.countdown(1), None);
        assert_eq!(g.countdown(1), Some(fake));
        g.reset();
        g.publish(1, fake);
        assert_eq!(g.countdown(1), None);
        assert_eq!(g.countdown(1), Some(fake));
    }

    #[test]
    fn reset_and_sweep_reset_agree() {
        // The memcpy reset and the retained node-by-node sweep must
        // leave identical counter/slot state.
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10)]),
                cap("b", vec![rw(0x10), rw(0x20)]),
                cap("c", vec![rw(0x20)]),
            ],
            &[],
        );
        let fake = 0x2000 as *mut Task;
        g.reset();
        g.publish(0, fake);
        let after_memcpy: Vec<u32> = (0..3)
            .map(|i| g.pending[i].load(Ordering::Relaxed))
            .collect();
        g.reset_sweep();
        let after_sweep: Vec<u32> = (0..3)
            .map(|i| g.pending[i].load(Ordering::Relaxed))
            .collect();
        assert_eq!(after_memcpy, after_sweep);
        assert!(
            (0..3).all(|i| g.slots[i].load(Ordering::Relaxed).is_null()),
            "sweep cleared the published slot"
        );
    }

    #[test]
    fn prefix_captured_references_frozen_arena() {
        let g = Arc::new(ReplayGraph::build(
            &[cap("a", vec![rw(0x10)]), cap("b", vec![rw(0x10), rd(0x20)])],
            &[],
        ));
        let prefix = g.prefix_captured(2);
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix[1].decls.as_slice().len(), g.decls_of(1).len());
        // The reconstructed prefix points into the arena — same address,
        // not a copy.
        assert_eq!(
            prefix[1].decls.as_slice().as_ptr(),
            g.decls_of(1).as_ptr(),
            "frozen decls are referenced, not cloned"
        );
        // Re-freezing from the reconstructed prefix reproduces the shape.
        let g2 = ReplayGraph::build(&prefix, &[]);
        assert_eq!(g2.structural_hash(), g.structural_hash());
        assert_eq!(g2.edge_pairs(), g.edge_pairs());
    }

    #[test]
    fn tap_crosscheck_counts_foreign_edges() {
        let mk_edge = |from: TaskId, to: TaskId| GraphEdge {
            from,
            from_label: "a",
            to,
            to_label: "b",
            addr: 0x10,
            kind: EdgeKind::Successor,
        };
        let mut c1 = cap("a", vec![rw(0x10)]);
        c1.id = Some(5);
        let mut c2 = cap("b", vec![rw(0x10)]);
        c2.id = Some(6);
        let g = ReplayGraph::build(&[c1, c2], &[mk_edge(5, 6), mk_edge(6, 99)]);
        assert_eq!(g.tapped_edge_count(), 1);
        assert_eq!(g.foreign_edge_count(), 1);
    }
}
