//! Graph partitioning over a frozen [`ReplayGraph`]: the NUMA-aware
//! replay partitioning of the frozen schedule.
//!
//! Replay uniquely knows the *complete* future schedule of an iteration
//! — the one thing the online scheduler never has. This module exploits
//! it: the graph's nodes are split into one partition per NUMA node by a
//! deterministic greedy BFS growth from the roots, weighted by the
//! granule hints in each node's recorded access declarations and biased
//! toward keeping data-sharing tasks together (cut-edge/affinity
//! minimization). The replay engine then routes every released batch to
//! its partition's node through the scheduler's node-targeted insertion
//! (`add_ready_batch_to`), so a replayed iteration becomes a
//! locality-aware *static* schedule instead of landing wherever the
//! releasing worker happens to live.
//!
//! **Pick complexity.** [`Partitioning::compute`] drives the growth with
//! a score-indexed binary max-heap under lazy invalidation: affinity
//! scores only ever *increase* while one partition grows, so every score
//! change pushes a fresh heap entry and stale entries are discarded at
//! pop time — each pick is O(log n) heap work instead of a full
//! re-scoring scan of the ready frontier. The original full-rescan
//! partitioner (O(n²) on wide flat graphs) is retained verbatim as
//! [`Partitioning::compute_naive`]; both produce the *identical*
//! assignment (same scores, same tie-breaks — property-tested), and
//! [`PartitionStats`] counts `heap_ops` vs `frontier_rescans` so the
//! complexity claim is machine-checkable.
//!
//! **Eviction survival.** A graph that re-enters the `GraphCache` after
//! eviction does not recompute from scratch:
//! [`Partitioning::compute_seeded`] adopts the evicted entry's saved
//! assignment (the graph is keyed by structural hash, so an unchanged
//! graph reuses 100 % of it) and only recomputes the bookkeeping —
//! worker caches stay warm across evictions.
//!
//! The partitioner runs once per frozen graph (cached in the
//! `GraphCache` entry) and is pure analysis: correctness never depends
//! on the partition — any assignment yields a valid execution because
//! readiness still comes from the graph's in-degree counters.

use crate::graph::ReplayGraph;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Operation counters of one partitioning computation — the
/// machine-checkable side of the O(n log n) claim and the
/// eviction-seeding claim. Excluded from [`Partitioning`]'s equality
/// (two computations are equal when their *assignments* agree,
/// regardless of which algorithm produced them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Full frontier re-scoring scans performed (one per pick in the
    /// naive partitioner; always 0 for the heap partitioner).
    pub frontier_rescans: u64,
    /// Heap pushes + pops performed (0 for the naive partitioner).
    pub heap_ops: u64,
    /// This partitioning was seeded from a saved (evicted) assignment.
    pub seeded: bool,
    /// Nodes whose assignment was adopted from the seed (equals the
    /// graph size when the graph re-entered unchanged).
    pub seed_reused: usize,
}

/// A computed node→partition assignment of one frozen graph.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// `assign[i]` = partition (NUMA node) of graph node `i`.
    assign: Vec<u32>,
    /// Number of partitions (≥ 1).
    parts: usize,
    /// Edges whose endpoints landed in different partitions.
    cut_edges: usize,
    /// Total node weight per partition.
    weights: Vec<u64>,
    /// Node count per partition.
    counts: Vec<usize>,
    /// How the computation went (not part of equality).
    stats: PartitionStats,
}

impl PartialEq for Partitioning {
    /// Assignment equality: two partitionings are equal when they place
    /// every node identically (stats — which algorithm ran, how many
    /// heap ops — are deliberately excluded; the heap/naive parity tests
    /// compare exactly this).
    fn eq(&self, other: &Self) -> bool {
        self.assign == other.assign
            && self.parts == other.parts
            && self.cut_edges == other.cut_edges
            && self.weights == other.weights
            && self.counts == other.counts
    }
}

impl Eq for Partitioning {}

/// Weight of one graph node: the granule hint from its recorded access
/// declarations (total bytes declared), floored at 1 so empty-access
/// tasks still carry load-balancing weight.
fn node_weight(g: &ReplayGraph, i: usize) -> u64 {
    g.decls_of(i)
        .iter()
        .map(|d| d.len as u64)
        .sum::<u64>()
        .max(1)
}

/// Count edges whose endpoints live in different partitions (straight
/// CSR walk, no intermediate edge list).
fn count_cuts(graph: &ReplayGraph, assign: &[u32]) -> usize {
    let mut cuts = 0;
    for i in 0..graph.len() {
        for &s in graph.succs(i) {
            if assign[i] != assign[s as usize] {
                cuts += 1;
            }
        }
    }
    cuts
}

impl Partitioning {
    /// Partition `graph` into `parts` parts (clamped to `1..=len` for
    /// non-empty graphs) by greedy BFS growth from the roots.
    ///
    /// Deterministic algorithm: partitions are grown one at a time up to
    /// a balanced weight target. The frontier only ever contains nodes
    /// whose predecessors are all assigned (creation order is a
    /// topological order of the frozen graph, so the frontier can never
    /// dry up early). Among releasable nodes the growth prefers the one
    /// with the strongest affinity to the partition being grown — counted
    /// as incoming edges from nodes already inside it plus shared
    /// declared addresses (read-sharing creates no edge but still means
    /// shared data) — breaking ties by creation order.
    ///
    /// Each pick is served by a score-indexed max-heap with lazy
    /// invalidation: scores are monotonically non-decreasing while one
    /// partition grows, every increase pushes a fresh entry, and stale
    /// entries (stored score ≠ current score, or already assigned) are
    /// discarded at pop time. Identical assignment to
    /// [`Partitioning::compute_naive`], O(log n) per pick instead of a
    /// full frontier rescan.
    pub fn compute(graph: &ReplayGraph, parts: usize) -> Self {
        let n = graph.len();
        let parts = parts.max(1).min(n.max(1));
        let mut assign = vec![u32::MAX; n];
        let mut weights = vec![0u64; parts];
        let mut counts = vec![0usize; parts];
        let mut heap_ops = 0u64;

        if n > 0 {
            let node_w: Vec<u64> = (0..n).map(|i| node_weight(graph, i)).collect();
            let total: u64 = node_w.iter().sum();
            let target = total.div_ceil(parts as u64);

            // Remaining unassigned-predecessor count per node; nodes with
            // zero are releasable (the BFS frontier).
            let mut preds_left: Vec<u32> = graph.nodes().iter().map(|nd| nd.indeg).collect();
            // addr → declaring nodes, one entry per declaration
            // occurrence (duplicate addresses within one task count
            // twice, exactly like the naive rescans over raw decls).
            // Built once: O(total decls).
            let mut addr_nodes: HashMap<usize, Vec<u32>> = HashMap::new();
            for i in 0..n {
                for d in graph.decls_of(i) {
                    addr_nodes.entry(d.addr).or_default().push(i as u32);
                }
            }
            // Current affinity score per node, for the partition being
            // grown: 2 per incoming edge from the partition + 1 per decl
            // on an address the partition already touches.
            let mut score = vec![0u64; n];
            let mut heap: BinaryHeap<(u64, Reverse<usize>)> = BinaryHeap::with_capacity(n + 1);
            let mut assigned = 0usize;

            'parts: for part in 0..parts {
                let last = part == parts - 1;
                // Fresh partition: no members yet, so every unassigned
                // node's affinity restarts at zero. Rebuilding the heap
                // is a push of the current frontier — no scoring scan.
                heap.clear();
                for i in 0..n {
                    if assign[i] == u32::MAX {
                        score[i] = 0;
                        if preds_left[i] == 0 {
                            heap.push((0, Reverse(i)));
                            heap_ops += 1;
                        }
                    }
                }
                let mut part_addrs: HashSet<usize> = HashSet::new();

                while assigned < n && (last || weights[part] < target) {
                    // Pop until a live entry surfaces. Invariant: every
                    // releasable unassigned node has an entry carrying
                    // its *current* score (each increase pushed one), so
                    // the first live entry is the true frontier maximum —
                    // highest score, then creation order.
                    let cand = loop {
                        let Some((s, Reverse(i))) = heap.pop() else {
                            // Frontier exhausted ⇒ all nodes assigned
                            // (creation order is topological).
                            break 'parts;
                        };
                        heap_ops += 1;
                        if assign[i] == u32::MAX && s == score[i] {
                            break i;
                        }
                        // Stale: superseded by a later push, or placed.
                    };

                    assign[cand] = part as u32;
                    weights[part] += node_w[cand];
                    counts[part] += 1;
                    assigned += 1;

                    // Addresses newly shared with the partition raise the
                    // affinity of every node declaring them.
                    for d in graph.decls_of(cand) {
                        if part_addrs.insert(d.addr)
                            && let Some(list) = addr_nodes.get(&d.addr)
                        {
                            for &x in list {
                                let x = x as usize;
                                if assign[x] == u32::MAX {
                                    score[x] += 1;
                                    if preds_left[x] == 0 {
                                        heap.push((score[x], Reverse(x)));
                                        heap_ops += 1;
                                    }
                                }
                            }
                        }
                    }
                    // Successors gain edge affinity; the last predecessor
                    // also releases them into the frontier.
                    for &s in graph.succs(cand) {
                        let s = s as usize;
                        score[s] += 2;
                        preds_left[s] -= 1;
                        if preds_left[s] == 0 {
                            heap.push((score[s], Reverse(s)));
                            heap_ops += 1;
                        }
                    }
                }
            }
            debug_assert!(
                assign.iter().all(|&p| p != u32::MAX),
                "every node assigned (creation order is topological)"
            );
        }

        let cut_edges = count_cuts(graph, &assign);
        Self {
            assign,
            parts,
            cut_edges,
            weights,
            counts,
            stats: PartitionStats {
                heap_ops,
                ..PartitionStats::default()
            },
        }
    }

    /// The original full-rescan partitioner, retained verbatim as the
    /// reference implementation: every pick re-scores the entire ready
    /// frontier (O(n²) on wide flat graphs — `frontier_rescans` counts
    /// each scan). Same assignment as [`Partitioning::compute`] by
    /// construction; the conformance suite asserts the parity on
    /// randomized graphs. Used by `RuntimeConfig::replay_compat` and the
    /// parity tests.
    pub fn compute_naive(graph: &ReplayGraph, parts: usize) -> Self {
        let n = graph.len();
        let parts = parts.max(1).min(n.max(1));
        let mut assign = vec![u32::MAX; n];
        let mut weights = vec![0u64; parts];
        let mut counts = vec![0usize; parts];
        let mut rescans = 0u64;

        if n > 0 {
            let total: u64 = (0..n).map(|i| node_weight(graph, i)).sum();
            let target = total.div_ceil(parts as u64);

            let mut preds_left: Vec<u32> = graph.nodes().iter().map(|nd| nd.indeg).collect();
            let mut ready: Vec<usize> = (0..n).filter(|&i| preds_left[i] == 0).collect();

            for part in 0..parts {
                // Data the affinity scoring of the current partition sees:
                // addresses its members declared so far.
                let mut part_addrs: HashSet<usize> = HashSet::new();
                // Incoming-edge count from the current partition, per
                // frontier candidate.
                let mut edge_gain: HashMap<usize, u32> = HashMap::new();
                let last = part == parts - 1;

                while !ready.is_empty() && (last || weights[part] < target) {
                    // Pick the releasable node with the best affinity to
                    // this partition; ties fall back to creation order.
                    // This is the full-frontier rescan the heap
                    // partitioner eliminates.
                    rescans += 1;
                    let pos = ready
                        .iter()
                        .enumerate()
                        .max_by_key(|&(_, &i)| {
                            let edges = edge_gain.get(&i).copied().unwrap_or(0) as u64;
                            let shared = graph
                                .decls_of(i)
                                .iter()
                                .filter(|d| part_addrs.contains(&d.addr))
                                .count() as u64;
                            // Creation order is the tiebreak: smaller
                            // index wins, encoded as a reversed key.
                            (edges * 2 + shared, Reverse(i))
                        })
                        .map(|(pos, _)| pos)
                        .expect("frontier non-empty");
                    let cand = ready.swap_remove(pos);

                    assign[cand] = part as u32;
                    weights[part] += node_weight(graph, cand);
                    counts[part] += 1;
                    for d in graph.decls_of(cand) {
                        part_addrs.insert(d.addr);
                    }
                    for &s in graph.succs(cand) {
                        let s = s as usize;
                        *edge_gain.entry(s).or_insert(0) += 1;
                        preds_left[s] -= 1;
                        if preds_left[s] == 0 {
                            ready.push(s);
                        }
                    }
                }
            }
            debug_assert!(
                assign.iter().all(|&p| p != u32::MAX),
                "every node assigned (creation order is topological)"
            );
        }

        let cut_edges = count_cuts(graph, &assign);
        Self {
            assign,
            parts,
            cut_edges,
            weights,
            counts,
            stats: PartitionStats {
                frontier_rescans: rescans,
                ..PartitionStats::default()
            },
        }
    }

    /// Partition `graph` seeded from a previously computed assignment
    /// (eviction survival): when the seed matches the graph — same node
    /// count, same part count, every label in range — it is adopted
    /// wholesale and only the cut/weight bookkeeping is recomputed, so a
    /// graph re-entering the cache keeps the exact placement its worker
    /// caches are already warm for. A mismatched seed (structural-hash
    /// collision, changed part count) falls back to a fresh
    /// [`Partitioning::compute`]. `stats.seed_reused` counts the adopted
    /// nodes.
    pub fn compute_seeded(graph: &ReplayGraph, parts: usize, seed: &Partitioning) -> Self {
        let n = graph.len();
        let clamped = parts.max(1).min(n.max(1));
        let usable = seed.assign.len() == n
            && seed.parts == clamped
            && seed.assign.iter().all(|&p| (p as usize) < clamped);
        if !usable {
            let mut p = Self::compute(graph, parts);
            p.stats.seeded = true;
            return p;
        }
        let assign = seed.assign.clone();
        let mut weights = vec![0u64; clamped];
        let mut counts = vec![0usize; clamped];
        for (i, &p) in assign.iter().enumerate() {
            weights[p as usize] += node_weight(graph, i);
            counts[p as usize] += 1;
        }
        let cut_edges = count_cuts(graph, &assign);
        Self {
            assign,
            parts: clamped,
            cut_edges,
            weights,
            counts,
            stats: PartitionStats {
                seeded: true,
                seed_reused: n,
                ..PartitionStats::default()
            },
        }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Partition (NUMA node) of graph node `i`.
    pub fn node_of(&self, i: usize) -> usize {
        self.assign[i] as usize
    }

    /// Edges crossing partition boundaries.
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Graph nodes in partition `p`.
    pub fn tasks_in(&self, p: usize) -> usize {
        self.counts[p]
    }

    /// Total node weight of partition `p`.
    pub fn weight_of(&self, p: usize) -> u64 {
        self.weights[p]
    }

    /// The full node→partition assignment, node index order.
    pub fn assignments(&self) -> &[u32] {
        &self.assign
    }

    /// Operation counters of the computation that produced this
    /// partitioning.
    pub fn stats(&self) -> PartitionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::CapturedSpawn;
    use nanotask_core::{AccessDecl, AccessMode};

    fn cap(label: &'static str, decls: Vec<AccessDecl>) -> CapturedSpawn {
        CapturedSpawn::bare(label, 0, decls)
    }

    fn rw(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::ReadWrite)
    }
    fn rd(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::Read)
    }

    fn exact_cover(p: &Partitioning, n: usize) {
        assert_eq!(p.assignments().len(), n);
        let mut counts = vec![0usize; p.parts()];
        for i in 0..n {
            let part = p.node_of(i);
            assert!(part < p.parts(), "assignment in range");
            counts[part] += 1;
        }
        for (part, &count) in counts.iter().enumerate() {
            assert_eq!(count, p.tasks_in(part), "count bookkeeping");
        }
        assert_eq!(counts.iter().sum::<usize>(), n, "exact cover");
    }

    /// Both partitioners on the same input: assignments must be
    /// identical; the heap one must do zero frontier rescans and the
    /// naive one zero heap ops.
    fn both(g: &ReplayGraph, parts: usize) -> Partitioning {
        let heap = Partitioning::compute(g, parts);
        let naive = Partitioning::compute_naive(g, parts);
        assert_eq!(heap, naive, "heap/naive assignment parity");
        assert_eq!(heap.stats().frontier_rescans, 0);
        assert_eq!(naive.stats().heap_ops, 0);
        if !g.is_empty() {
            assert!(heap.stats().heap_ops > 0);
            assert!(naive.stats().frontier_rescans as usize >= g.len());
        }
        heap
    }

    #[test]
    fn empty_graph_partitions() {
        let g = ReplayGraph::build(&[], &[]);
        let p = both(&g, 4);
        assert_eq!(p.assignments().len(), 0);
        assert_eq!(p.cut_edges(), 0);
    }

    #[test]
    fn single_partition_takes_everything() {
        let g = ReplayGraph::build(&[cap("a", vec![rw(0x10)]), cap("b", vec![rw(0x10)])], &[]);
        let p = both(&g, 1);
        exact_cover(&p, 2);
        assert_eq!(p.cut_edges(), 0);
        assert_eq!(p.tasks_in(0), 2);
    }

    #[test]
    fn independent_chains_split_without_cuts() {
        // Two disjoint 3-task chains: the affinity growth must keep each
        // chain whole, giving a zero-cut 2-way partition.
        let mk = |addr: usize| cap("t", vec![rw(addr)]);
        let g = ReplayGraph::build(
            &[mk(0x10), mk(0x20), mk(0x10), mk(0x20), mk(0x10), mk(0x20)],
            &[],
        );
        let p = both(&g, 2);
        exact_cover(&p, 6);
        assert_eq!(p.cut_edges(), 0, "{:?}", p.assignments());
        assert_eq!(p.tasks_in(0), 3);
        assert_eq!(p.tasks_in(1), 3);
        // Each chain entirely inside one partition.
        assert_eq!(p.node_of(0), p.node_of(2));
        assert_eq!(p.node_of(2), p.node_of(4));
        assert_eq!(p.node_of(1), p.node_of(3));
        assert_ne!(p.node_of(0), p.node_of(1));
    }

    #[test]
    fn read_sharing_attracts_without_edges() {
        // Two independent writer groups, then readers of group A's
        // address interleaved with independent tasks: the readers share
        // no *edge* with each other but share A's address, so affinity
        // should co-locate them with the A side when balance allows.
        let g = ReplayGraph::build(
            &[
                cap("wa", vec![rw(0x10)]),
                cap("wb", vec![rw(0x20)]),
                cap("ra", vec![rd(0x10)]),
                cap("rb", vec![rd(0x20)]),
                cap("ra2", vec![rd(0x10)]),
                cap("rb2", vec![rd(0x20)]),
            ],
            &[],
        );
        let p = both(&g, 2);
        exact_cover(&p, 6);
        assert_eq!(p.cut_edges(), 0, "{:?}", p.assignments());
        assert_eq!(p.node_of(0), p.node_of(2));
        assert_eq!(p.node_of(0), p.node_of(4));
        assert_eq!(p.node_of(1), p.node_of(3));
        assert_eq!(p.node_of(1), p.node_of(5));
    }

    #[test]
    fn weights_balance_by_granule_hint() {
        // One heavy node (1 KiB decl) and four light ones, independent:
        // with 2 parts the heavy node should sit alone-ish while the
        // light ones gather on the other side.
        let heavy = cap(
            "h",
            vec![AccessDecl::new(0x100, 1024, AccessMode::ReadWrite)],
        );
        let light = |a: usize| cap("l", vec![rw(a)]);
        let g = ReplayGraph::build(
            &[heavy, light(0x10), light(0x20), light(0x30), light(0x40)],
            &[],
        );
        let p = both(&g, 2);
        exact_cover(&p, 5);
        let heavy_part = p.node_of(0);
        assert_eq!(p.tasks_in(heavy_part), 1, "{:?}", p.assignments());
        assert_eq!(p.tasks_in(1 - heavy_part), 4);
    }

    #[test]
    fn more_parts_than_nodes_clamps() {
        let g = ReplayGraph::build(&[cap("a", vec![rw(0x10)])], &[]);
        let p = both(&g, 8);
        assert_eq!(p.parts(), 1);
        exact_cover(&p, 1);
    }

    #[test]
    fn cut_count_matches_recount() {
        // A denser graph: serialized chain over one address + cross
        // readers; recount the cut from the assignment and compare.
        let g = ReplayGraph::build(
            &[
                cap("w1", vec![rw(0x10)]),
                cap("r1", vec![rd(0x10), rw(0x20)]),
                cap("r2", vec![rd(0x10), rw(0x30)]),
                cap("w2", vec![rw(0x10)]),
                cap("t1", vec![rw(0x20)]),
                cap("t2", vec![rw(0x30)]),
            ],
            &[],
        );
        for parts in 1..=4 {
            let p = both(&g, parts);
            exact_cover(&p, 6);
            let recount = g
                .edge_pairs()
                .iter()
                .filter(|&&(a, b)| p.node_of(a as usize) != p.node_of(b as usize))
                .count();
            assert_eq!(p.cut_edges(), recount, "parts={parts}");
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10)]),
                cap("b", vec![rw(0x20)]),
                cap("c", vec![rd(0x10), rd(0x20)]),
                cap("d", vec![rw(0x10)]),
            ],
            &[],
        );
        let p1 = both(&g, 2);
        let p2 = both(&g, 2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn wide_flat_graph_needs_no_rescans_and_stays_n_log_n() {
        // The O(n²) regression shape: n independent tasks, empty
        // frontier affinity all the way. The heap partitioner must do
        // zero full-frontier rescans and O(n log n) heap ops, while the
        // naive reference pays one rescan per pick.
        let n = 4096usize;
        let caps: Vec<CapturedSpawn> = (0..n)
            .map(|i| cap("flat", vec![rw(0x1000 + i * 8)]))
            .collect();
        let g = ReplayGraph::build(&caps, &[]);
        assert_eq!(g.edge_count(), 0, "wide and flat");
        let heap = Partitioning::compute(&g, 2);
        let naive = Partitioning::compute_naive(&g, 2);
        assert_eq!(heap, naive);
        exact_cover(&heap, n);
        assert_eq!(heap.stats().frontier_rescans, 0, "zero rescans");
        let bound = 8 * (n as u64) * (usize::BITS - n.leading_zeros()) as u64;
        assert!(
            heap.stats().heap_ops <= bound,
            "heap ops {} within O(n log n) bound {}",
            heap.stats().heap_ops,
            bound
        );
        assert_eq!(naive.stats().frontier_rescans, n as u64, "one per pick");
    }

    #[test]
    fn seeded_compute_adopts_assignment_wholesale() {
        let mk = |addr: usize| cap("t", vec![rw(addr)]);
        let g = ReplayGraph::build(
            &[mk(0x10), mk(0x20), mk(0x10), mk(0x20), mk(0x10), mk(0x20)],
            &[],
        );
        let original = Partitioning::compute(&g, 2);
        let seeded = Partitioning::compute_seeded(&g, 2, &original);
        assert_eq!(seeded, original, "unchanged graph: identical placement");
        assert!(seeded.stats().seeded);
        assert_eq!(seeded.stats().seed_reused, 6, "100% reuse");
        assert_eq!(seeded.stats().frontier_rescans, 0);
        assert_eq!(seeded.stats().heap_ops, 0, "no growth at all");
    }

    #[test]
    fn mismatched_seed_falls_back_to_fresh_compute() {
        let g = ReplayGraph::build(&[cap("a", vec![rw(0x10)]), cap("b", vec![rw(0x20)])], &[]);
        let seed = Partitioning::compute(&g, 1);
        // Wrong part count: recompute, but still flag the seed attempt.
        let p = Partitioning::compute_seeded(&g, 2, &seed);
        exact_cover(&p, 2);
        assert_eq!(p.parts(), 2);
        assert!(p.stats().seeded);
        assert_eq!(p.stats().seed_reused, 0, "nothing adopted");
        assert_eq!(p, Partitioning::compute(&g, 2));
    }
}
