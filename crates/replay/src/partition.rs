//! Graph partitioning over a frozen [`ReplayGraph`]: the NUMA-aware
//! replay partitioning of the frozen schedule.
//!
//! Replay uniquely knows the *complete* future schedule of an iteration
//! — the one thing the online scheduler never has. This module exploits
//! it: the graph's nodes are split into one partition per NUMA node by a
//! deterministic greedy BFS growth from the roots, weighted by the
//! granule hints in each node's recorded access declarations and biased
//! toward keeping data-sharing tasks together (cut-edge/affinity
//! minimization). The replay engine then routes every released batch to
//! its partition's node through the scheduler's node-targeted insertion
//! (`add_ready_batch_to`), so a replayed iteration becomes a
//! locality-aware *static* schedule instead of landing wherever the
//! releasing worker happens to live.
//!
//! The partitioner runs once per frozen graph (cached in the
//! `GraphCache` entry) and is pure analysis: correctness never depends
//! on the partition — any assignment yields a valid execution because
//! readiness still comes from the graph's in-degree counters.

use crate::graph::ReplayGraph;
use std::collections::{HashMap, HashSet};

/// A computed node→partition assignment of one frozen graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `assign[i]` = partition (NUMA node) of graph node `i`.
    assign: Vec<u32>,
    /// Number of partitions (≥ 1).
    parts: usize,
    /// Edges whose endpoints landed in different partitions.
    cut_edges: usize,
    /// Total node weight per partition.
    weights: Vec<u64>,
    /// Node count per partition.
    counts: Vec<usize>,
}

/// Weight of one graph node: the granule hint from its recorded access
/// declarations (total bytes declared), floored at 1 so empty-access
/// tasks still carry load-balancing weight.
fn node_weight(g: &ReplayGraph, i: usize) -> u64 {
    g.nodes()[i]
        .decls
        .iter()
        .map(|d| d.len as u64)
        .sum::<u64>()
        .max(1)
}

impl Partitioning {
    /// Partition `graph` into `parts` parts (clamped to `1..=len` for
    /// non-empty graphs) by greedy BFS growth from the roots.
    ///
    /// Deterministic algorithm: partitions are grown one at a time up to
    /// a balanced weight target. The frontier only ever contains nodes
    /// whose predecessors are all assigned (creation order is a
    /// topological order of the frozen graph, so the frontier can never
    /// dry up early). Among releasable nodes the growth prefers the one
    /// with the strongest affinity to the partition being grown — counted
    /// as incoming edges from nodes already inside it plus shared
    /// declared addresses (read-sharing creates no edge but still means
    /// shared data) — breaking ties by creation order.
    pub fn compute(graph: &ReplayGraph, parts: usize) -> Self {
        let n = graph.len();
        let parts = parts.max(1).min(n.max(1));
        let mut assign = vec![u32::MAX; n];
        let mut weights = vec![0u64; parts];
        let mut counts = vec![0usize; parts];

        if n > 0 {
            let total: u64 = (0..n).map(|i| node_weight(graph, i)).sum();
            let target = total.div_ceil(parts as u64);

            // Remaining unassigned-predecessor count per node; nodes with
            // zero are releasable (the BFS frontier).
            let mut preds_left: Vec<u32> = graph.nodes().iter().map(|nd| nd.indeg).collect();
            let mut ready: Vec<usize> = (0..n).filter(|&i| preds_left[i] == 0).collect();

            for part in 0..parts {
                // Data the affinity scoring of the current partition sees:
                // addresses its members declared so far.
                let mut part_addrs: HashSet<usize> = HashSet::new();
                // Incoming-edge count from the current partition, per
                // frontier candidate.
                let mut edge_gain: HashMap<usize, u32> = HashMap::new();
                let last = part == parts - 1;

                while !ready.is_empty() && (last || weights[part] < target) {
                    // Pick the releasable node with the best affinity to
                    // this partition; ties fall back to creation order.
                    let pos = ready
                        .iter()
                        .enumerate()
                        .max_by_key(|&(_, &i)| {
                            let edges = edge_gain.get(&i).copied().unwrap_or(0) as u64;
                            let shared = graph.nodes()[i]
                                .decls
                                .iter()
                                .filter(|d| part_addrs.contains(&d.addr))
                                .count() as u64;
                            // Creation order is the tiebreak: smaller
                            // index wins, encoded as a reversed key.
                            (edges * 2 + shared, core::cmp::Reverse(i))
                        })
                        .map(|(pos, _)| pos)
                        .expect("frontier non-empty");
                    let cand = ready.swap_remove(pos);

                    assign[cand] = part as u32;
                    weights[part] += node_weight(graph, cand);
                    counts[part] += 1;
                    for d in &graph.nodes()[cand].decls {
                        part_addrs.insert(d.addr);
                    }
                    for &s in &graph.nodes()[cand].succs {
                        let s = s as usize;
                        *edge_gain.entry(s).or_insert(0) += 1;
                        preds_left[s] -= 1;
                        if preds_left[s] == 0 {
                            ready.push(s);
                        }
                    }
                }
            }
            debug_assert!(
                assign.iter().all(|&p| p != u32::MAX),
                "every node assigned (creation order is topological)"
            );
        }

        let cut_edges = graph
            .edge_pairs()
            .iter()
            .filter(|&&(a, b)| assign[a as usize] != assign[b as usize])
            .count();
        Self {
            assign,
            parts,
            cut_edges,
            weights,
            counts,
        }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Partition (NUMA node) of graph node `i`.
    pub fn node_of(&self, i: usize) -> usize {
        self.assign[i] as usize
    }

    /// Edges crossing partition boundaries.
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Graph nodes in partition `p`.
    pub fn tasks_in(&self, p: usize) -> usize {
        self.counts[p]
    }

    /// Total node weight of partition `p`.
    pub fn weight_of(&self, p: usize) -> u64 {
        self.weights[p]
    }

    /// The full node→partition assignment, node index order.
    pub fn assignments(&self) -> &[u32] {
        &self.assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::CapturedSpawn;
    use nanotask_core::{AccessDecl, AccessMode};

    fn cap(label: &'static str, decls: Vec<AccessDecl>) -> CapturedSpawn {
        CapturedSpawn {
            label,
            priority: 0,
            decls,
            body: None,
            id: None,
        }
    }

    fn rw(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::ReadWrite)
    }
    fn rd(addr: usize) -> AccessDecl {
        AccessDecl::new(addr, 8, AccessMode::Read)
    }

    fn exact_cover(p: &Partitioning, n: usize) {
        assert_eq!(p.assignments().len(), n);
        let mut counts = vec![0usize; p.parts()];
        for i in 0..n {
            let part = p.node_of(i);
            assert!(part < p.parts(), "assignment in range");
            counts[part] += 1;
        }
        for (part, &count) in counts.iter().enumerate() {
            assert_eq!(count, p.tasks_in(part), "count bookkeeping");
        }
        assert_eq!(counts.iter().sum::<usize>(), n, "exact cover");
    }

    #[test]
    fn empty_graph_partitions() {
        let g = ReplayGraph::build(&[], &[]);
        let p = Partitioning::compute(&g, 4);
        assert_eq!(p.assignments().len(), 0);
        assert_eq!(p.cut_edges(), 0);
    }

    #[test]
    fn single_partition_takes_everything() {
        let g = ReplayGraph::build(&[cap("a", vec![rw(0x10)]), cap("b", vec![rw(0x10)])], &[]);
        let p = Partitioning::compute(&g, 1);
        exact_cover(&p, 2);
        assert_eq!(p.cut_edges(), 0);
        assert_eq!(p.tasks_in(0), 2);
    }

    #[test]
    fn independent_chains_split_without_cuts() {
        // Two disjoint 3-task chains: the affinity growth must keep each
        // chain whole, giving a zero-cut 2-way partition.
        let mk = |addr: usize| cap("t", vec![rw(addr)]);
        let g = ReplayGraph::build(
            &[mk(0x10), mk(0x20), mk(0x10), mk(0x20), mk(0x10), mk(0x20)],
            &[],
        );
        let p = Partitioning::compute(&g, 2);
        exact_cover(&p, 6);
        assert_eq!(p.cut_edges(), 0, "{:?}", p.assignments());
        assert_eq!(p.tasks_in(0), 3);
        assert_eq!(p.tasks_in(1), 3);
        // Each chain entirely inside one partition.
        assert_eq!(p.node_of(0), p.node_of(2));
        assert_eq!(p.node_of(2), p.node_of(4));
        assert_eq!(p.node_of(1), p.node_of(3));
        assert_ne!(p.node_of(0), p.node_of(1));
    }

    #[test]
    fn read_sharing_attracts_without_edges() {
        // Two independent writer groups, then readers of group A's
        // address interleaved with independent tasks: the readers share
        // no *edge* with each other but share A's address, so affinity
        // should co-locate them with the A side when balance allows.
        let g = ReplayGraph::build(
            &[
                cap("wa", vec![rw(0x10)]),
                cap("wb", vec![rw(0x20)]),
                cap("ra", vec![rd(0x10)]),
                cap("rb", vec![rd(0x20)]),
                cap("ra2", vec![rd(0x10)]),
                cap("rb2", vec![rd(0x20)]),
            ],
            &[],
        );
        let p = Partitioning::compute(&g, 2);
        exact_cover(&p, 6);
        assert_eq!(p.cut_edges(), 0, "{:?}", p.assignments());
        assert_eq!(p.node_of(0), p.node_of(2));
        assert_eq!(p.node_of(0), p.node_of(4));
        assert_eq!(p.node_of(1), p.node_of(3));
        assert_eq!(p.node_of(1), p.node_of(5));
    }

    #[test]
    fn weights_balance_by_granule_hint() {
        // One heavy node (1 KiB decl) and four light ones, independent:
        // with 2 parts the heavy node should sit alone-ish while the
        // light ones gather on the other side.
        let heavy = cap(
            "h",
            vec![AccessDecl::new(0x100, 1024, AccessMode::ReadWrite)],
        );
        let light = |a: usize| cap("l", vec![rw(a)]);
        let g = ReplayGraph::build(
            &[heavy, light(0x10), light(0x20), light(0x30), light(0x40)],
            &[],
        );
        let p = Partitioning::compute(&g, 2);
        exact_cover(&p, 5);
        let heavy_part = p.node_of(0);
        assert_eq!(p.tasks_in(heavy_part), 1, "{:?}", p.assignments());
        assert_eq!(p.tasks_in(1 - heavy_part), 4);
    }

    #[test]
    fn more_parts_than_nodes_clamps() {
        let g = ReplayGraph::build(&[cap("a", vec![rw(0x10)])], &[]);
        let p = Partitioning::compute(&g, 8);
        assert_eq!(p.parts(), 1);
        exact_cover(&p, 1);
    }

    #[test]
    fn cut_count_matches_recount() {
        // A denser graph: serialized chain over one address + cross
        // readers; recount the cut from the assignment and compare.
        let g = ReplayGraph::build(
            &[
                cap("w1", vec![rw(0x10)]),
                cap("r1", vec![rd(0x10), rw(0x20)]),
                cap("r2", vec![rd(0x10), rw(0x30)]),
                cap("w2", vec![rw(0x10)]),
                cap("t1", vec![rw(0x20)]),
                cap("t2", vec![rw(0x30)]),
            ],
            &[],
        );
        for parts in 1..=4 {
            let p = Partitioning::compute(&g, parts);
            exact_cover(&p, 6);
            let recount = g
                .edge_pairs()
                .iter()
                .filter(|&&(a, b)| p.node_of(a as usize) != p.node_of(b as usize))
                .count();
            assert_eq!(p.cut_edges(), recount, "parts={parts}");
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let g = ReplayGraph::build(
            &[
                cap("a", vec![rw(0x10)]),
                cap("b", vec![rw(0x20)]),
                cap("c", vec![rd(0x10), rd(0x20)]),
                cap("d", vec![rw(0x10)]),
            ],
            &[],
        );
        let p1 = Partitioning::compute(&g, 2);
        let p2 = Partitioning::compute(&g, 2);
        assert_eq!(p1, p2);
    }
}
