//! The replay engine: [`RunIterative::run_iterative`].

use core::cell::UnsafeCell;
use std::sync::Arc;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use nanotask_core::deps::reduction::ReductionInfo;
use nanotask_core::{Deps, HeldTask, Runtime, SpawnCapture, TaskBody, TaskCtx, TaskId};
use nanotask_trace::EventKind;

use crate::graph::ReplayGraph;
use crate::recorder::{CaptureMode, GraphRecorder, spawn_sig_hash};

/// What a [`RunIterative::run_iterative`] call did.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Iterations executed in total.
    pub iterations: usize,
    /// Iterations replayed from the frozen graph.
    pub replayed: usize,
    /// Record iterations (the initial one plus re-records after
    /// divergence).
    pub rerecords: usize,
    /// Iterations that diverged from the recorded graph and fell back to
    /// the dependency system (each is followed by a re-record).
    pub diverged: usize,
    /// Tasks per iteration in the last recorded graph.
    pub tasks: usize,
    /// Edges in the last recorded graph.
    pub edges: usize,
    /// Edges as `(from, to)` creation-order pairs (test/analysis support).
    pub edge_list: Vec<(u32, u32)>,
    /// Successor edges the dependency system reported that involve tasks
    /// outside the captured set (nested children) — a diagnostic that the
    /// body uses nesting the replay graph cannot see.
    pub foreign_edges: usize,
}

/// Extension trait adding record & replay execution to [`Runtime`].
pub trait RunIterative {
    /// Run `body` `iters` times. Iteration 0 executes through the full
    /// dependency system while a [`GraphRecorder`] captures the task
    /// graph; iterations `1..iters` replay the frozen graph, feeding
    /// ready tasks straight to the scheduler and bypassing dependency
    /// registration/release entirely. Each iteration is a barrier (the
    /// next iteration's tasks spawn only after the previous iteration's
    /// subtree completed) and the call returns after the last one.
    ///
    /// `body` must spawn the same graph every call for replay to engage;
    /// if a spawn diverges from the recorded node (cheap per-spawn
    /// signature hash over label, priority and access set), the already
    /// replayed prefix is awaited, the rest of that iteration runs
    /// through the dependency system, and the next iteration re-records.
    fn run_iterative<F>(&self, iters: usize, body: F) -> ReplayReport
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static;
}

/// Reduction state of one replayed iteration: a fresh chain instance per
/// recorded group (private per-worker slots, combined exactly once).
struct GroupState {
    info: Arc<ReductionInfo>,
    remaining: AtomicU32,
}

/// Shared state of one replayed iteration.
struct IterState {
    graph: Arc<ReplayGraph>,
    groups: Vec<GroupState>,
    /// Released-node count (debug cross-check against graph size).
    launched: AtomicUsize,
}

impl IterState {
    fn new(graph: Arc<ReplayGraph>, workers: usize) -> Self {
        graph.reset();
        let groups = graph
            .groups()
            .iter()
            .map(|g| GroupState {
                info: Arc::new(ReductionInfo::new(g.addr, g.len, g.op, workers)),
                remaining: AtomicU32::new(g.members),
            })
            .collect();
        Self {
            graph,
            groups,
            launched: AtomicUsize::new(0),
        }
    }

    /// Fold partially-fed reduction groups into their targets. On a
    /// divergent or truncated iteration some group members may have run
    /// (accumulating into this iteration's private slots) without the
    /// last member ever firing the combine — their contributions must
    /// not be dropped. Callers guarantee every fed task has completed
    /// (taskwait) and no successor that reads the target is running.
    fn combine_partial(&self) {
        for (g, meta) in self.groups.iter().zip(self.graph.groups()) {
            let remaining = g.remaining.load(Ordering::Acquire);
            if remaining > 0 && remaining < meta.members && !g.info.is_combined() {
                // SAFETY: all fed members completed and nothing else
                // touches the target until the caller resumes spawning.
                unsafe { g.info.combine_into_target() };
            }
        }
    }

    /// Drop one pending reference of node `i`, releasing its held task
    /// if that was the last one.
    ///
    /// This is the replay engine's release path onto the zero-queue fast
    /// path: with [`nanotask_core::RuntimeConfig::fast_path`] enabled,
    /// `release_held` *defers* releases issued from a completing task's
    /// body — the runtime then keeps one released successor as the
    /// worker's inline next task and hands the rest to the scheduler as
    /// one batch, so a replayed chain never round-trips the ready queue.
    fn countdown(&self, ctx: &TaskCtx, i: u32) {
        if let Some(t) = self.graph.countdown(i as usize) {
            self.launched.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `t` was published by the creator from a live
            // HeldTask and each node is released exactly once (the
            // pending counter reaches zero once per iteration).
            ctx.release_held(unsafe { HeldTask::from_raw(t) });
        }
    }

    /// Feed one matched spawn into the frozen graph: spawn the body held
    /// (with reduction chain state attached) and drop its creation hold.
    fn feed(&self, self_arc: &Arc<IterState>, ctx: &TaskCtx, i: usize, body: TaskBody) {
        let node = &self.graph.nodes()[i];
        // Reduction accesses need chain state for `red_slot`: attach this
        // iteration's group instances to bare copies of the declarations.
        // Non-reduction declarations impose no ordering during replay and
        // are dropped to keep held-task creation allocation-free.
        let decls: Vec<_> = node
            .red
            .iter()
            .map(|(d, gi)| {
                let mut d = d.clone();
                d.reduction = Some(Arc::clone(&self.groups[*gi].info));
                d
            })
            .collect();
        let st = Arc::clone(self_arc);
        let wrapped = move |tc: &TaskCtx| {
            body(tc);
            let node = &st.graph.nodes()[i];
            // Last chain member folds the private slots into the target —
            // before releasing successors, which may read it.
            for &(_, gi) in &node.red {
                let g = &st.groups[gi];
                if g.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // SAFETY: every group member completed (counter hit
                    // zero) and successors are not yet released, so the
                    // target region is exclusively owned.
                    unsafe { g.info.combine_into_target() };
                }
            }
            for &s in &node.succs {
                st.countdown(tc, s);
            }
        };
        let held = ctx.spawn_held(node.label, node.priority, decls, wrapped);
        self.graph.publish(i, held.into_raw());
        // Drop the creation hold; releases the task if all its
        // predecessors already finished (or it has none).
        self.countdown(ctx, i as u32);
    }
}

/// The engine's capture: either recording through the embedded
/// [`GraphRecorder`], or feeding spawns straight into a frozen graph.
enum Mode {
    Off,
    Record,
    Feed {
        state: Arc<IterState>,
        next: usize,
        diverged: bool,
    },
}

/// The capture installed by [`RunIterative::run_iterative`].
///
/// Hot state lives in an `UnsafeCell`: the runtime calls `SpawnCapture`
/// methods only from the thread executing the root task body, and the
/// engine switches modes only from that same body — all accesses are
/// sequential on one thread (see the `SpawnCapture` docs).
struct EngineCapture {
    mode: UnsafeCell<Mode>,
    recorder: GraphRecorder,
}

unsafe impl Send for EngineCapture {}
unsafe impl Sync for EngineCapture {}

impl EngineCapture {
    fn new() -> Self {
        Self {
            mode: UnsafeCell::new(Mode::Off),
            recorder: GraphRecorder::new(),
        }
    }

    /// # Safety
    /// Root-thread confinement (see type docs).
    #[allow(clippy::mut_from_ref)]
    unsafe fn mode(&self) -> &mut Mode {
        unsafe { &mut *self.mode.get() }
    }

    fn set_record(&self) {
        self.recorder.begin(CaptureMode::Record);
        unsafe { *self.mode() = Mode::Record };
    }

    fn set_feed(&self, state: Arc<IterState>) {
        unsafe {
            *self.mode() = Mode::Feed {
                state,
                next: 0,
                diverged: false,
            }
        };
    }

    /// Leave feed mode; returns `(spawns_seen, diverged)`.
    fn end_feed(&self) -> (usize, bool) {
        let mode = unsafe { self.mode() };
        let out = match mode {
            Mode::Feed { next, diverged, .. } => (*next, *diverged),
            _ => (0, false),
        };
        *mode = Mode::Off;
        out
    }

    fn end_record(&self) -> Vec<crate::recorder::CapturedSpawn> {
        unsafe { *self.mode() = Mode::Off };
        self.recorder.take()
    }
}

impl SpawnCapture for EngineCapture {
    fn active(&self) -> bool {
        !matches!(unsafe { self.mode() }, Mode::Off)
    }

    fn on_spawn(
        &self,
        ctx: &TaskCtx,
        label: &'static str,
        priority: i32,
        deps: Deps,
        body: TaskBody,
    ) -> Option<(Deps, TaskBody)> {
        // SAFETY: root-thread confinement; nothing reached from the calls
        // below (spawn_held, taskwait, recorder) re-enters this capture —
        // nested tasks executed while task-waiting are non-root and the
        // runtime only offers root spawns.
        let mode = unsafe { self.mode() };
        match mode {
            Mode::Off => Some((deps, body)),
            Mode::Record => self.recorder.on_spawn(ctx, label, priority, deps, body),
            Mode::Feed {
                state,
                next,
                diverged,
            } => {
                if *diverged {
                    return Some((deps, body));
                }
                let i = *next;
                *next = i + 1;
                let nodes = state.graph.nodes();
                if i < nodes.len() && nodes[i].sig == spawn_sig_hash(label, priority, deps.decls())
                {
                    state.feed(&Arc::clone(state), ctx, i, body);
                    None
                } else {
                    // Divergence mid-iteration: wait for the already-fed
                    // prefix (its ordering was enforced by the graph),
                    // fold any partially-fed reduction groups, then let
                    // this and all later spawns go through the dependency
                    // system — conservative and correct.
                    *diverged = true;
                    ctx.taskwait();
                    state.combine_partial();
                    Some((deps, body))
                }
            }
        }
    }

    fn on_spawned(&self, id: TaskId) {
        if matches!(unsafe { self.mode() }, Mode::Record) {
            self.recorder.on_spawned(id);
        }
    }
}

impl RunIterative for Runtime {
    fn run_iterative<F>(&self, iters: usize, body: F) -> ReplayReport
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static,
    {
        if iters == 0 {
            return ReplayReport::default();
        }
        let body = Arc::new(body);
        let capture = Arc::new(EngineCapture::new());
        self.set_spawn_capture(Some(Arc::clone(&capture) as _));
        let workers = self.config().workers;
        let prev_graph_recording = self.graph_recording();
        self.clear_graph_edges();

        // All iterations run inside ONE root task, separated by taskwait
        // barriers: workers never tear down between iterations, which
        // keeps the per-iteration overhead to the barrier itself.
        let out: Arc<std::sync::Mutex<ReplayReport>> = Arc::default();
        let result = Arc::clone(&out);
        let cap = Arc::clone(&capture);
        self.run(move |ctx| {
            let mut graph: Option<Arc<ReplayGraph>> = None;
            let mut last_graph: Option<Arc<ReplayGraph>> = None;
            let mut report = ReplayReport::default();
            for iter in 0..iters {
                match graph.clone() {
                    None => {
                        // Record: execute through the full dependency
                        // system with the edge tap enabled.
                        ctx.trace_mark(EventKind::ReplayRecordBegin, iter as u64);
                        let _ = ctx.take_graph_edges();
                        ctx.set_graph_recording(true);
                        cap.set_record();
                        body(ctx);
                        let captured = cap.end_record();
                        ctx.taskwait();
                        ctx.set_graph_recording(prev_graph_recording);
                        let tap = ctx.take_graph_edges();
                        let g = Arc::new(ReplayGraph::build(&captured, &tap));
                        ctx.trace_mark(EventKind::ReplayRecordEnd, g.len() as u64);
                        report.rerecords += 1;
                        last_graph = Some(Arc::clone(&g));
                        graph = Some(g);
                    }
                    Some(g) => {
                        // Replay: spawns are matched against the frozen
                        // graph one by one and fed straight to it; a
                        // mismatch degrades to the dependency system.
                        ctx.trace_mark(EventKind::ReplayIterBegin, iter as u64);
                        let state = Arc::new(IterState::new(g, workers));
                        cap.set_feed(Arc::clone(&state));
                        body(ctx);
                        let (spawned, diverged) = cap.end_feed();
                        let complete = !diverged && spawned == state.graph.len();
                        ctx.taskwait();
                        if complete {
                            debug_assert_eq!(
                                state.launched.load(Ordering::Relaxed),
                                state.graph.len(),
                                "every node released exactly once"
                            );
                            report.replayed += 1;
                        } else {
                            // Divergent (or truncated) iteration: it ran
                            // correctly via prefix + barrier + dependency
                            // system; fold any reduction groups the fed
                            // prefix touched (no-op if the divergence path
                            // already did) and re-record from the next
                            // iteration.
                            state.combine_partial();
                            report.diverged += 1;
                            graph = None;
                        }
                        ctx.trace_mark(EventKind::ReplayIterEnd, iter as u64);
                    }
                }
                report.iterations += 1;
            }
            if let Some(g) = last_graph {
                report.tasks = g.len();
                report.edges = g.edge_count();
                report.edge_list = g.edge_pairs();
                report.foreign_edges = g.foreign_edge_count();
            }
            *result.lock().unwrap() = report;
        });
        self.set_spawn_capture(None);
        Arc::try_unwrap(out)
            .map(|m| m.into_inner().unwrap())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::{RuntimeConfig, SendPtr};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_iterations_are_fine() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let report = rt.run_iterative(3, |_| {});
        assert_eq!(report.iterations, 3);
        assert_eq!(report.replayed, 2);
        assert_eq!(report.tasks, 0);
    }

    #[test]
    fn zero_iters_is_a_noop() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let report = rt.run_iterative(0, |_| panic!("must not run"));
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn chain_replays_in_order() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(5, move |ctx| {
            for _ in 0..10 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 50);
        assert_eq!(report.iterations, 5);
        assert_eq!(report.replayed, 4);
        assert_eq!(report.rerecords, 1);
        assert_eq!(report.diverged, 0);
        assert_eq!(report.tasks, 10);
        assert_eq!(report.edges, 9);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn independent_tasks_all_execute() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let report = rt.run_iterative(4, move |ctx| {
            for _ in 0..32 {
                let c = Arc::clone(&c);
                ctx.spawn(Deps::new(), move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 4 * 32);
        assert_eq!(report.edges, 0);
    }

    #[test]
    fn reductions_replay_with_slots() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
        let p = SendPtr::new(acc);
        let iters = 6u64;
        let n = 16u64;
        rt.run_iterative(iters as usize, move |ctx| {
            for i in 0..n {
                ctx.spawn(
                    Deps::new().reduce_addr(p.addr(), 8, nanotask_core::RedOp::SumF64),
                    move |c| unsafe {
                        let slot = c.red_slot(&*(p.addr() as *const f64));
                        *slot += (i + 1) as f64;
                    },
                );
            }
            // Reader forces the chain to combine before the iteration ends.
            ctx.spawn(Deps::new().read_addr(p.addr()), move |_| {});
        });
        let per_iter: f64 = (n * (n + 1) / 2) as f64;
        assert_eq!(unsafe { *acc }, per_iter * iters as f64);
        unsafe { drop(Box::from_raw(acc)) };
    }

    #[test]
    fn divergent_body_falls_back_and_rerecords() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(6, move |ctx| {
            // Alternate the target address: every replay attempt diverges
            // from the recorded graph, so replay must never engage wrongly.
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let p = if i.is_multiple_of(2) { pa } else { pb };
            for _ in 0..4 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { (*a, *b) }, (12, 12));
        assert_eq!(report.iterations, 6);
        // Records on iterations 0/2/4, divergent fallbacks on 1/3/5.
        assert_eq!(report.rerecords, 3);
        assert_eq!(report.diverged, 3);
        assert_eq!(report.replayed, 0);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn stabilizing_body_switches_back_to_replay() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(6, move |ctx| {
            // Iteration 0 uses `a`, the rest use `b`: one divergence (at
            // iteration 1), one re-record (iteration 2), then clean replay.
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let p = if i == 0 { pa } else { pb };
            ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                *p.get() += 1;
            });
        });
        assert_eq!(unsafe { (*a, *b) }, (1, 5));
        assert_eq!(report.rerecords, 2);
        assert_eq!(report.diverged, 1);
        assert_eq!(report.replayed, 3);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn truncated_iteration_counts_as_divergence() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(3, move |ctx| {
            // Iteration 1 spawns a strict prefix of the recorded graph.
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let n = if i == 1 { 2 } else { 4 };
            for _ in 0..n {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 10);
        assert_eq!(report.diverged, 1);
        assert_eq!(report.rerecords, 2);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn duplicate_address_decls_do_not_deadlock_replay() {
        // Duplicate addresses within one task are a contract violation
        // (Deps::push debug_asserts them); mixed-mode duplicates deadlock
        // the dependency system itself, so only the reader+reader form —
        // which the wait-free system tolerates via early read forwarding —
        // can be driven end-to-end. The builder coalesces it to a single
        // access instead of emitting degenerate edges (the mixed-mode
        // coalescing is pinned by the graph unit test
        // `duplicate_address_decls_never_self_edge`).
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let data = Box::leak(Box::new(7u64)) as *mut u64;
        let seen = Arc::new(AtomicU64::new(0));
        let p = SendPtr::new(data);
        let report = {
            let seen = Arc::clone(&seen);
            rt.run_iterative(4, move |ctx| {
                let writer_decls = vec![nanotask_core::AccessDecl::new(
                    p.addr(),
                    8,
                    nanotask_core::AccessMode::ReadWrite,
                )];
                ctx.spawn_labeled("w", Deps::from_decls(writer_decls), move |_| unsafe {
                    *p.get() += 1;
                });
                let dup_read_decls = vec![
                    nanotask_core::AccessDecl::new(p.addr(), 8, nanotask_core::AccessMode::Read),
                    nanotask_core::AccessDecl::new(p.addr(), 8, nanotask_core::AccessMode::Read),
                ];
                let seen = Arc::clone(&seen);
                ctx.spawn_labeled("rr", Deps::from_decls(dup_read_decls), move |_| {
                    seen.fetch_add(unsafe { *p.get() }, Ordering::Relaxed);
                });
            })
        };
        assert_eq!(unsafe { *data }, 11);
        // The reader always observes the just-incremented value: 8+9+10+11.
        assert_eq!(seen.load(Ordering::Relaxed), 38);
        assert_eq!(report.replayed, 3, "no divergence, no deadlock");
        assert_eq!(report.edges, 1, "duplicate reads coalesced into one edge");
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn divergence_preserves_partial_reduction_contributions() {
        // Recorded graph: a 4-member SumF64 group (+ trailing reader).
        // The next iteration feeds only 2 members before diverging; their
        // private-slot contributions must still reach the target.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
        let other = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, po) = (SendPtr::new(acc), SendPtr::new(other));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(3, move |ctx| {
            let it = iter.fetch_add(1, Ordering::Relaxed);
            let members = if it == 1 { 2 } else { 4 };
            for i in 0..members {
                ctx.spawn(
                    Deps::new().reduce_addr(pa.addr(), 8, nanotask_core::RedOp::SumF64),
                    move |c| unsafe {
                        *c.red_slot(&*(pa.addr() as *const f64)) += (i + 1) as f64;
                    },
                );
            }
            if it == 1 {
                // Divergent third spawn: different shape than the
                // recorded node 2.
                ctx.spawn(Deps::new().readwrite_addr(po.addr()), move |_| unsafe {
                    *po.get() += 1;
                });
            } else {
                ctx.spawn(Deps::new().read_addr(pa.addr()), move |_| {});
            }
        });
        // Iterations 0 and 2: 1+2+3+4 = 10 each; iteration 1: 1+2 = 3.
        assert_eq!(unsafe { *acc }, 23.0, "partial group contributions kept");
        assert_eq!(unsafe { *other }, 1);
        assert_eq!(report.diverged, 1);
        unsafe {
            drop(Box::from_raw(acc));
            drop(Box::from_raw(other));
        }
    }

    #[test]
    fn replay_chains_bypass_queue_with_fast_path() {
        let rt = Runtime::new(
            nanotask_core::RuntimeConfig::optimized()
                .workers(2)
                .fast_path(true),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(6, move |ctx| {
            for _ in 0..20 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 120);
        assert_eq!(report.replayed, 5);
        assert_eq!(report.diverged, 0);
        let rr = rt.run_report();
        assert!(
            rr.inline_runs > 0,
            "replayed chain successors ran inline: {rr:?}"
        );
        assert_eq!(rt.live_tasks(), 0);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn divergent_replay_correct_under_fast_path() {
        // Divergence mid-iteration taskwaits on the fed prefix — the
        // deferred-release flush at taskwait entry must make that safe.
        let rt = Runtime::new(
            nanotask_core::RuntimeConfig::optimized()
                .workers(2)
                .fast_path(true),
        );
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(6, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let p = if i.is_multiple_of(2) { pa } else { pb };
            for _ in 0..4 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { (*a, *b) }, (12, 12));
        assert_eq!(report.diverged, 3);
        assert_eq!(rt.live_tasks(), 0);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn tasks_reclaimed_after_replay() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        rt.run_iterative(4, move |ctx| {
            for _ in 0..8 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(rt.live_tasks(), 0, "all task objects reclaimed");
        let s = rt.stats();
        assert_eq!(s.tasks_created, s.tasks_freed);
        unsafe { drop(Box::from_raw(data)) };
    }
}
