//! The replay engine: [`RunIterative::run_iterative`].
//!
//! Iteration 0 records the body's task graph through the full dependency
//! system; later iterations replay a frozen [`ReplayGraph`]. Frozen
//! graphs live in a [`GraphCache`] keyed by structural hash, giving
//! divergence *hysteresis*: a body that alternates between a small set
//! of shapes (miniAMR-style refine/coarsen phases) re-records each shape
//! once and then replays every phase, instead of re-recording on every
//! alternation like the original single-graph engine
//! (`replay_cache_size = 1` restores that behavior exactly). A body that
//! keeps diverging is eventually *pinned* to the dependency system
//! ([`nanotask_core::RuntimeConfig::replay_giveup_after`]), with a cheap
//! hash-only probe every [`nanotask_core::RuntimeConfig::replay_recheck_every`]
//! iterations to detect re-stabilization. A recorded iteration that
//! spawned nested task domains (cross-sibling dependencies of nested
//! tasks are invisible to the frozen graph) is never replayed: the body
//! is pinned immediately, detected via the dependency-edge tap's foreign
//! edges plus the runtime's nested-spawn counter.

use core::cell::UnsafeCell;
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use nanotask_core::deps::reduction::ReductionInfo;
use nanotask_core::{
    Deps, HeldTask, RunOutcome, Runtime, SpawnCapture, TaskBody, TaskCtx, TaskEpilogue, TaskId,
};
use nanotask_obs::{Counter, Histogram, MaxGauge, Registry};
use nanotask_trace::EventKind;

use crate::cache::GraphCache;
use crate::graph::ReplayGraph;
use crate::partition::Partitioning;
use crate::recorder::{
    CaptureMode, CapturedSpawn, GraphRecorder, STRUCTURAL_HASH_SEED, SigHashMode,
};

/// What a [`RunIterative::run_iterative`] call did.
///
/// Every iteration is classified exactly once:
/// `cache_hits + cache_misses + pinned_iterations == iterations`.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Iterations executed in total.
    pub iterations: usize,
    /// Iterations replayed from a frozen graph.
    pub replayed: usize,
    /// Iterations whose graph was (re)built and frozen: the initial
    /// record plus every divergence that missed the cache.
    pub rerecords: usize,
    /// Iterations that diverged from the graph being fed and fell back
    /// to the dependency system mid-iteration.
    pub diverged: usize,
    /// Tasks per iteration in the last frozen graph.
    pub tasks: usize,
    /// Edges in the last frozen graph.
    pub edges: usize,
    /// Edges as `(from, to)` creation-order pairs (test/analysis support).
    pub edge_list: Vec<(u32, u32)>,
    /// Successor edges the dependency system reported that involve tasks
    /// outside the captured set (nested children linking into the
    /// recorded iteration). With a cache (`replay_cache_size > 1`) any
    /// non-zero value pins the body to the dependency system.
    pub foreign_edges: usize,
    /// Iterations served by the graph cache: fully replayed iterations
    /// plus diverged iterations whose structure matched a cached graph.
    pub cache_hits: usize,
    /// Iterations that needed the dependency system because no cached
    /// graph matched: records plus diverged cache misses.
    pub cache_misses: usize,
    /// Frozen graphs evicted from the cache (capacity pressure).
    pub cache_evictions: u64,
    /// Iterations executed while pinned to the dependency system
    /// (give-up policy or nested-domain fallback), including the
    /// hash-only re-stabilization probes.
    pub pinned_iterations: usize,
    /// Times the engine pinned the body (consecutive-divergence
    /// threshold or nested-domain detection).
    pub giveups: usize,
    /// Spawns issued by nested (non-root) tasks during graph-building
    /// iterations. Non-zero means the body uses nested task domains.
    pub nested_spawns: u64,
    /// The body was pinned because a recorded iteration contained nested
    /// task domains (nested spawns or foreign dependency edges) — replay
    /// cannot see cross-sibling dependencies of nested tasks, so the
    /// dependency system stays in charge permanently.
    pub pinned_nested: bool,
    /// Per cached graph: `(structural_hash, tasks, iterations replayed
    /// from it)`, most recently used first. Graphs evicted before the
    /// run ended are not listed.
    pub per_graph_replays: Vec<(u64, usize, u64)>,
    /// NUMA partitions the replay engine routed to (0 = partitioning
    /// off, see [`nanotask_core::RuntimeConfig::replay_partitioning`]).
    pub partitions: usize,
    /// Held-task releases routed to their partition's node through the
    /// scheduler's node-targeted insertion.
    pub routed_releases: u64,
    /// Cut edges of the last replayed graph's partitioning (edges whose
    /// endpoints live on different NUMA nodes).
    pub partition_cut_edges: usize,
    /// Full frontier re-scoring scans the partitioner performed across
    /// this run (0 whenever the default heap partitioner is active — the
    /// machine-checkable side of the O(n log n) claim; the retained
    /// reference partitioner under `RuntimeConfig::replay_compat` pays
    /// one per pick).
    pub frontier_rescans: u64,
    /// Heap pushes + pops the partitioner performed across this run
    /// (0 under the reference partitioner).
    pub heap_ops: u64,
    /// Partitionings seeded from an assignment that survived cache
    /// eviction (a graph re-entering the `GraphCache` adopts its old
    /// placement instead of recomputing, keeping worker caches warm).
    pub partition_seeds: u64,
    /// Nodes adopted from eviction seeds / total nodes of seeded
    /// computations (equal on unchanged graphs: 100 % reuse).
    pub partition_seed_reused: u64,
    /// See [`ReplayReport::partition_seed_reused`].
    pub partition_seed_total: u64,
    /// Wall time spent freezing captured iterations into CSR graphs
    /// (the initial record plus every divergence re-freeze), summed.
    pub freeze_ns: u64,
    /// Frozen footprint of the last built graph in bytes
    /// ([`crate::graph::ReplayGraph::bytes`]).
    pub graph_bytes: u64,
    /// High-water mark of task-object memory over the runtime's lifetime
    /// (peak simultaneously live tasks × task-shell size).
    pub peak_task_bytes: u64,
    /// Task spawns served as recycled shells from the task slab during
    /// this run (delta of the runtime's monotone counter).
    pub tasks_recycled: u64,
    /// Iterations during which at least one task-body failure was
    /// recorded. Each faulted iteration invalidates the graph it was
    /// running from (if any) and falls back to the dependency system —
    /// the next occurrence of the shape re-records from scratch.
    /// Orthogonal to the hit/miss/pinned classification.
    pub faulted: usize,
}

impl ReplayReport {
    /// The per-iteration classification invariant: every iteration is
    /// counted exactly once as a cache hit, a cache miss, or a pinned
    /// iteration.
    pub fn classification_ok(&self) -> bool {
        self.cache_hits + self.cache_misses + self.pinned_iterations == self.iterations
    }

    /// Assert [`ReplayReport::classification_ok`] plus the bookkeeping
    /// bounds every report must satisfy — the one place the conformance
    /// suites (and harnesses) check report integrity.
    pub fn assert_classification(&self) {
        assert!(
            self.classification_ok(),
            "hits + misses + pinned == iterations violated: {self}"
        );
        assert!(
            self.replayed + self.diverged <= self.iterations,
            "replay/divergence counts exceed iterations: {self}"
        );
        let cached: u64 = self.per_graph_replays.iter().map(|&(_, _, r)| r).sum();
        assert!(
            cached <= self.replayed as u64,
            "cached graphs claim more replays than happened: {self}"
        );
    }
}

impl core::fmt::Display for ReplayReport {
    /// One-line summary of everything the report counts — including the
    /// cache counters (hits/misses/evictions, pinned iterations,
    /// give-ups) and the partitioning counters.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "replay: iters={} replayed={} rerecords={} diverged={} | \
             cache: hits={} misses={} evictions={} pinned={} giveups={} | \
             nested: spawns={} pinned_nested={} | \
             graph: tasks={} edges={} foreign={}",
            self.iterations,
            self.replayed,
            self.rerecords,
            self.diverged,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.pinned_iterations,
            self.giveups,
            self.nested_spawns,
            self.pinned_nested,
            self.tasks,
            self.edges,
            self.foreign_edges,
        )?;
        write!(
            f,
            " | mem: freeze_ns={} graph_bytes={} peak_task_bytes={} recycled={}",
            self.freeze_ns, self.graph_bytes, self.peak_task_bytes, self.tasks_recycled,
        )?;
        if self.faulted > 0 {
            write!(f, " | faulted={}", self.faulted)?;
        }
        if self.partitions > 0 {
            write!(
                f,
                " | numa: partitions={} routed={} cut_edges={} \
                 rescans={} heap_ops={} seeds={}",
                self.partitions,
                self.routed_releases,
                self.partition_cut_edges,
                self.frontier_rescans,
                self.heap_ops,
                self.partition_seeds,
            )?;
        }
        Ok(())
    }
}

/// Registry handles mirroring the monotone [`ReplayReport`] counters
/// (`nanotask_replay_*_total`) plus the per-iteration feed-time
/// histogram. The bespoke report stays the source of truth — the
/// registry view is written from it once per `run_iterative` call, so
/// the two can be compared field-by-field (the fig17 differential) and
/// the registry accumulates across calls on the same runtime.
#[derive(Clone)]
struct ReplayObs {
    iterations: Counter,
    replayed: Counter,
    rerecords: Counter,
    diverged: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    pinned_iterations: Counter,
    giveups: Counter,
    nested_spawns: Counter,
    routed_releases: Counter,
    frontier_rescans: Counter,
    heap_ops: Counter,
    partition_seeds: Counter,
    partition_seed_reused: Counter,
    partition_seed_total: Counter,
    freeze_ns: Counter,
    tasks_recycled: Counter,
    faulted: Counter,
    /// High-water marks, not sums: the largest frozen graph and the task
    /// memory peak the runtime ever reached.
    graph_bytes: MaxGauge,
    peak_task_bytes: MaxGauge,
    /// Wall time the root body spent feeding one replayed iteration into
    /// the frozen graph (sampled only while
    /// [`nanotask_core::Runtime::metrics_enabled`]).
    feed_ns: Histogram,
}

impl ReplayObs {
    fn new(reg: &Registry) -> Self {
        ReplayObs {
            iterations: reg.counter("nanotask_replay_iterations_total"),
            replayed: reg.counter("nanotask_replay_replayed_total"),
            rerecords: reg.counter("nanotask_replay_rerecords_total"),
            diverged: reg.counter("nanotask_replay_diverged_total"),
            cache_hits: reg.counter("nanotask_replay_cache_hits_total"),
            cache_misses: reg.counter("nanotask_replay_cache_misses_total"),
            cache_evictions: reg.counter("nanotask_replay_cache_evictions_total"),
            pinned_iterations: reg.counter("nanotask_replay_pinned_iterations_total"),
            giveups: reg.counter("nanotask_replay_giveups_total"),
            nested_spawns: reg.counter("nanotask_replay_nested_spawns_total"),
            routed_releases: reg.counter("nanotask_replay_routed_releases_total"),
            frontier_rescans: reg.counter("nanotask_replay_frontier_rescans_total"),
            heap_ops: reg.counter("nanotask_replay_heap_ops_total"),
            partition_seeds: reg.counter("nanotask_replay_partition_seeds_total"),
            partition_seed_reused: reg.counter("nanotask_replay_partition_seed_reused_total"),
            partition_seed_total: reg.counter("nanotask_replay_partition_seed_total_total"),
            freeze_ns: reg.counter("nanotask_replay_freeze_ns_total"),
            tasks_recycled: reg.counter("nanotask_replay_tasks_recycled_total"),
            faulted: reg.counter("nanotask_replay_faulted_iterations_total"),
            graph_bytes: reg.max_gauge("nanotask_replay_graph_bytes"),
            peak_task_bytes: reg.max_gauge("nanotask_replay_peak_task_bytes"),
            feed_ns: reg.histogram("nanotask_replay_feed_ns"),
        }
    }

    /// Fold a finished run's report into the registry (main thread →
    /// shard 0). Counters only ever grow, so adding the per-run totals
    /// keeps the registry a running sum over the runtime's lifetime.
    fn mirror(&self, r: &ReplayReport) {
        self.iterations.add(0, r.iterations as u64);
        self.replayed.add(0, r.replayed as u64);
        self.rerecords.add(0, r.rerecords as u64);
        self.diverged.add(0, r.diverged as u64);
        self.cache_hits.add(0, r.cache_hits as u64);
        self.cache_misses.add(0, r.cache_misses as u64);
        self.cache_evictions.add(0, r.cache_evictions);
        self.pinned_iterations.add(0, r.pinned_iterations as u64);
        self.giveups.add(0, r.giveups as u64);
        self.nested_spawns.add(0, r.nested_spawns);
        self.routed_releases.add(0, r.routed_releases);
        self.frontier_rescans.add(0, r.frontier_rescans);
        self.heap_ops.add(0, r.heap_ops);
        self.partition_seeds.add(0, r.partition_seeds);
        self.partition_seed_reused.add(0, r.partition_seed_reused);
        self.partition_seed_total.add(0, r.partition_seed_total);
        self.freeze_ns.add(0, r.freeze_ns);
        self.tasks_recycled.add(0, r.tasks_recycled);
        self.faulted.add(0, r.faulted as u64);
        self.graph_bytes.record(0, r.graph_bytes);
        self.peak_task_bytes.record(0, r.peak_task_bytes);
    }
}

/// Extension trait adding record & replay execution to [`Runtime`].
pub trait RunIterative {
    /// Run `body` `iters` times. Iteration 0 executes through the full
    /// dependency system while a [`GraphRecorder`] captures the task
    /// graph; later iterations replay frozen graphs, feeding ready tasks
    /// straight to the scheduler and bypassing dependency
    /// registration/release entirely. Each iteration is a barrier (the
    /// next iteration's tasks spawn only after the previous iteration's
    /// subtree completed) and the call returns after the last one.
    ///
    /// The body does *not* have to spawn the same graph every call: up
    /// to [`nanotask_core::RuntimeConfig::replay_cache_size`] distinct
    /// shapes are kept frozen (keyed by structural hash) and a
    /// divergence probes the cache before re-recording, so stable phase
    /// cycles replay every phase. Divergence is still detected per spawn
    /// (cheap signature hash over label, priority and access set) and
    /// always degrades safely: the already replayed prefix is awaited
    /// and the rest of that iteration runs through the dependency
    /// system.
    fn run_iterative<F>(&self, iters: usize, body: F) -> ReplayReport
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static;

    /// Fallible variant of [`RunIterative::run_iterative`]: returns the
    /// replay report together with the run's [`RunOutcome`] instead of
    /// panicking on task failures.
    ///
    /// Failure propagation works during replay too: a fed task whose
    /// body panics is converted into a structured failure and its
    /// transitive successors *in the frozen graph* are cancelled through
    /// the graph's own countdown protocol (their bodies are skipped,
    /// their completion bookkeeping still runs, nothing leaks). The
    /// faulted iteration's graph is invalidated from the cache and the
    /// engine falls back to the dependency system, re-recording the
    /// shape from a fresh run the next time it appears — so one failed
    /// iteration never taints later replays. On a *divergent* faulted
    /// iteration only the fed prefix's successors are cancelled; tasks
    /// of the dependency-system remainder only observe the failure
    /// through their own registered accesses.
    fn run_iterative_outcome<F>(&self, iters: usize, body: F) -> (ReplayReport, RunOutcome)
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static;
}

/// Reduction state of one replayed iteration: a fresh chain instance per
/// recorded group (private per-worker slots, combined exactly once).
struct GroupState {
    info: Arc<ReductionInfo>,
    remaining: AtomicU32,
}

/// Shared state of one replayed iteration.
struct IterState {
    graph: Arc<ReplayGraph>,
    groups: Vec<GroupState>,
    /// Released-node count (debug cross-check against graph size).
    launched: AtomicUsize,
    /// NUMA partitioning of the graph — `Some` activates node-targeted
    /// release routing ([`nanotask_core::RuntimeConfig::replay_partitioning`]).
    part: Option<Arc<Partitioning>>,
    /// Held-task releases routed through the node-targeted path.
    routed: AtomicU64,
    /// Reference data path ([`nanotask_core::RuntimeConfig::replay_compat`]):
    /// sweep reset, no inline-routing composition.
    compat: bool,
    /// Per-node cancellation marks — the replay mirror of the dependency
    /// systems' failure poisoning. A failed (or already-cancelled) task
    /// sets its successors' flags *before* dropping their pending
    /// references; whichever thread drops the last reference transfers
    /// the mark onto the released task ([`HeldTask::mark_cancelled`]).
    /// The countdown's AcqRel release sequence orders the flag store
    /// before the releasing load, so the transfer never races.
    poisoned: Box<[AtomicBool]>,
}

impl IterState {
    fn new(
        graph: Arc<ReplayGraph>,
        workers: usize,
        part: Option<Arc<Partitioning>>,
        compat: bool,
    ) -> Self {
        if compat {
            graph.reset_sweep();
        } else {
            graph.reset();
        }
        let groups = graph
            .groups()
            .iter()
            .map(|g| GroupState {
                info: Arc::new(ReductionInfo::new(g.addr, g.len, g.op, workers)),
                remaining: AtomicU32::new(g.members),
            })
            .collect();
        let poisoned = (0..graph.len()).map(|_| AtomicBool::new(false)).collect();
        Self {
            graph,
            groups,
            launched: AtomicUsize::new(0),
            part,
            routed: AtomicU64::new(0),
            compat,
            poisoned,
        }
    }

    /// Release-time half of the poison transfer: mark the just-released
    /// node's task cancelled when a predecessor flagged it.
    fn take_poison(&self, i: usize, h: &HeldTask) {
        if self.poisoned[i].load(Ordering::Acquire) {
            h.mark_cancelled();
        }
    }

    /// Fold partially-fed reduction groups into their targets. On a
    /// divergent or truncated iteration some group members may have run
    /// (accumulating into this iteration's private slots) without the
    /// last member ever firing the combine — their contributions must
    /// not be dropped. Callers guarantee every fed task has completed
    /// (taskwait) and no successor that reads the target is running.
    fn combine_partial(&self) {
        for (g, meta) in self.groups.iter().zip(self.graph.groups()) {
            let remaining = g.remaining.load(Ordering::Acquire);
            if remaining > 0 && remaining < meta.members && !g.info.is_combined() {
                // SAFETY: all fed members completed and nothing else
                // touches the target until the caller resumes spawning.
                unsafe { g.info.combine_into_target() };
            }
        }
    }

    /// Drop one pending reference of node `i`, releasing its held task
    /// if that was the last one.
    ///
    /// This is the replay engine's release path onto the zero-queue fast
    /// path: with [`nanotask_core::RuntimeConfig::fast_path`] enabled,
    /// `release_held` *defers* releases issued from a completing task's
    /// body — the runtime then keeps one released successor as the
    /// worker's inline next task and hands the rest to the scheduler as
    /// one batch, so a replayed chain never round-trips the ready queue.
    fn countdown(&self, ctx: &TaskCtx, i: u32) {
        if let Some(t) = self.graph.countdown(i as usize) {
            self.launched.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `t` was published by the creator from a live
            // HeldTask and each node is released exactly once (the
            // pending counter reaches zero once per iteration).
            let h = unsafe { HeldTask::from_raw(t) };
            self.take_poison(i as usize, &h);
            ctx.release_held(h);
        }
    }

    /// Partition-routed variant of [`IterState::countdown`] over a whole
    /// successor list: newly-released tasks are grouped by their
    /// partition's NUMA node and each group is handed to the scheduler
    /// as one node-targeted batch — the locality-aware static schedule
    /// of the frozen graph. Scratch buffers are thread-local so the
    /// per-completion hot path never allocates.
    ///
    /// With the zero-queue fast path on (and `replay_compat` off), one
    /// *same-node* successor is kept as the releasing worker's inline
    /// next task ([`TaskCtx::release_held_inline_to`]): dependence
    /// locality composes with partition locality — the task still runs
    /// on its assigned node, it just skips the node queue.
    ///
    /// # Re-entrancy audit (thread-local scratch)
    ///
    /// The `SCRATCH` borrow spans calls into `release_held_inline_to`
    /// and `release_held_batch_to`. Neither can re-enter this function
    /// on the same thread: an inline-kept release only *defers* the task
    /// into the worker's pending buffer (the body runs after the current
    /// completion window closes, long after the borrow is dropped), and
    /// node-targeted insertion never executes task bodies synchronously
    /// — every scheduler path ends at a queue push. The `try_borrow_mut`
    /// below is the audit's backstop: if a future runtime change ever
    /// makes a release path execute bodies synchronously, the fallback
    /// keeps routing correct (with a one-off allocation) instead of
    /// panicking mid-release.
    fn countdown_routed(&self, ctx: &TaskCtx, succs: &[u32], part: &Partitioning) {
        /// Reusable (node, handle) release buffer + contiguous handle
        /// batch, one pair per worker thread.
        type RouteScratch = (Vec<(usize, HeldTask)>, Vec<HeldTask>);
        thread_local! {
            static SCRATCH: core::cell::RefCell<RouteScratch> =
                const { core::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => {
                let (ready, handles) = &mut *scratch;
                self.route(ctx, succs, part, ready, handles);
            }
            // Re-entered (see the audit above — impossible today):
            // degrade to fresh buffers rather than poisoning the borrow.
            Err(_) => self.route(ctx, succs, part, &mut Vec::new(), &mut Vec::new()),
        });
    }

    /// The body of [`IterState::countdown_routed`], parameterized over
    /// the scratch buffers.
    fn route(
        &self,
        ctx: &TaskCtx,
        succs: &[u32],
        part: &Partitioning,
        ready: &mut Vec<(usize, HeldTask)>,
        handles: &mut Vec<HeldTask>,
    ) {
        ready.clear();
        for &s in succs {
            if let Some(t) = self.graph.countdown(s as usize) {
                self.launched.fetch_add(1, Ordering::Relaxed);
                // SAFETY: as in `countdown` — published by the
                // creator, released exactly once.
                let h = unsafe { HeldTask::from_raw(t) };
                self.take_poison(s as usize, &h);
                ready.push((part.node_of(s as usize), h));
            }
        }
        if ready.is_empty() {
            return;
        }
        self.routed.fetch_add(ready.len() as u64, Ordering::Relaxed);
        if !self.compat {
            // Fast-path composition: keep the first same-node successor
            // inline (no-op when the fast path is off or the releaser is
            // the root — `release_held_inline_to` declines and the task
            // falls through to normal routing below).
            let mut kept = None;
            for (pos, &(node, h)) in ready.iter().enumerate() {
                if ctx.release_held_inline_to(node, h) {
                    kept = Some(pos);
                    break;
                }
            }
            if let Some(pos) = kept {
                ready.remove(pos);
                if ready.is_empty() {
                    return;
                }
            }
        }
        if let [(node, h)] = ready[..] {
            // Single release (chains — the common case): no grouping.
            ctx.release_held_batch_to(node, &[h]);
            return;
        }
        // Group by node, preserving release order within each node
        // (stable sort; successor lists are short).
        ready.sort_by_key(|&(node, _)| node);
        handles.clear();
        handles.extend(ready.iter().map(|&(_, h)| h));
        let mut start = 0;
        while start < ready.len() {
            let node = ready[start].0;
            let mut end = start + 1;
            while end < ready.len() && ready[end].0 == node {
                end += 1;
            }
            ctx.release_held_batch_to(node, &handles[start..end]);
            start = end;
        }
    }

    /// The post-body half of one fed task: fold finished reduction
    /// groups, then release the node's successors (routed when
    /// partitioning is on).
    fn after_body(&self, tc: &TaskCtx, i: usize) {
        // Failure propagation during replay: a failed task (marked
        // cancelled by the runtime's panic isolation) or a task that was
        // itself cancelled poisons its graph successors before their
        // pending references drop — the flags travel transitively
        // because cancelled tasks still run this epilogue.
        if tc.task_cancelled() {
            for &s in self.graph.succs(i) {
                self.poisoned[s as usize].store(true, Ordering::Release);
            }
        }
        // Last chain member folds the private slots into the target —
        // before releasing successors, which may read it.
        for &(_, gi) in self.graph.red_of(i) {
            let g = &self.groups[gi as usize];
            if g.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // SAFETY: every group member completed (counter hit
                // zero) and successors are not yet released, so the
                // target region is exclusively owned.
                unsafe { g.info.combine_into_target() };
            }
        }
        match &self.part {
            // Partitioning off: the original (byte-identical) release
            // path through the producer's home buffer.
            None => {
                for &s in self.graph.succs(i) {
                    self.countdown(tc, s);
                }
            }
            // Partitioning on: group the newly-released successors by
            // their partition and batch each group to its node.
            Some(p) => self.countdown_routed(tc, self.graph.succs(i), p),
        }
    }

    /// Feed one matched spawn into the frozen graph: spawn the body held
    /// (with reduction chain state attached) and drop its creation hold.
    fn feed(&self, self_arc: &Arc<IterState>, ctx: &TaskCtx, i: usize, body: TaskBody) {
        let node = &self.graph.nodes()[i];
        // Reduction accesses need chain state for `red_slot`: attach this
        // iteration's group instances to bare copies of the declarations.
        // Non-reduction declarations impose no ordering during replay and
        // are dropped to keep held-task creation allocation-free.
        let decls: Vec<_> = self
            .graph
            .red_of(i)
            .iter()
            .map(|(d, gi)| {
                let mut d = d.clone();
                d.reduction = Some(Arc::clone(&self.groups[*gi as usize].info));
                d
            })
            .collect();
        let held = if self.compat {
            // PR 4 data path: wrap every body in a fresh boxed closure
            // (one allocation per task per iteration).
            let st = Arc::clone(self_arc);
            let wrapped = move |tc: &TaskCtx| {
                body(tc);
                st.after_body(tc, i);
            };
            ctx.spawn_held(node.label, node.priority, decls, wrapped)
        } else {
            // Hot loop: pass the user's already-boxed body straight
            // through and hang the successor-release logic on the shared
            // per-iteration epilogue — no wrapper allocation.
            ctx.spawn_held_with_epilogue(
                node.label,
                node.priority,
                decls,
                body,
                Arc::clone(self_arc) as Arc<dyn TaskEpilogue>,
                i as u64,
            )
        };
        self.graph.publish(i, held.into_raw());
        // Drop the creation hold; releases the task if all its
        // predecessors already finished (or it has none) — routed to its
        // partition's node when partitioning is on.
        match &self.part {
            None => self.countdown(ctx, i as u32),
            // PR 4 path: every hold drop goes through the routed-release
            // scratch machinery, released or not.
            Some(p) if self.compat => self.countdown_routed(ctx, &[i as u32], p),
            // Hot loop: decrement first — only the rare hold drop that
            // actually releases (a root of the graph, or a node whose
            // predecessors all finished during the spawn phase) pays the
            // routing path; interior nodes cost one atomic decrement.
            Some(p) => {
                if let Some(t) = self.graph.countdown(i) {
                    self.launched.fetch_add(1, Ordering::Relaxed);
                    self.routed.fetch_add(1, Ordering::Relaxed);
                    // SAFETY: as in `countdown` — published by the
                    // creator (just above), released exactly once.
                    let h = unsafe { HeldTask::from_raw(t) };
                    self.take_poison(i, &h);
                    let node = p.node_of(i);
                    if !ctx.release_held_inline_to(node, h) {
                        ctx.release_held_batch_to(node, &[h]);
                    }
                }
            }
        }
    }
}

impl TaskEpilogue for IterState {
    /// The hot-loop steady-state hook: one shared object per iteration
    /// runs every fed task's post-body logic (`tag` = graph node index)
    /// — no per-task wrapper closure survives freezing.
    fn run(&self, ctx: &TaskCtx, tag: u64) {
        self.after_body(ctx, tag as usize);
    }
}

/// Emit one [`EventKind::ReplayPartitionAssign`] record per partition of
/// the iteration about to feed (`(partition << 32) | tasks_in_partition`)
/// — called on both ways a graph becomes the feed target: the scheduled
/// replay branch and the mid-start phase-switch takeover.
fn mark_partitions(ctx: &TaskCtx, state: &IterState) {
    if let Some(p) = &state.part {
        for n in 0..p.parts() {
            ctx.trace_mark(
                EventKind::ReplayPartitionAssign,
                ((n as u64) << 32) | p.tasks_in(n) as u64,
            );
        }
    }
}

/// The engine's capture: recording through the embedded
/// [`GraphRecorder`], hash-only probing, or feeding spawns straight into
/// a frozen graph.
enum Mode {
    Off,
    Record,
    /// Pinned-mode re-stabilization probe: chain the per-spawn signature
    /// hashes into the iteration's structural hash without buffering
    /// anything; every spawn proceeds through the dependency system.
    Probe {
        hash: u64,
    },
    Feed {
        state: Arc<IterState>,
        next: usize,
        diverged: bool,
        /// The feed target was swapped mid-start: the first spawn did not
        /// match the scheduled graph but matched another cached one.
        switched: bool,
        /// After a divergence (hysteresis only): the full spawn metadata
        /// of this iteration — the fed prefix reconstructed from the
        /// graph plus every fallback spawn — so the engine can freeze
        /// the diverged shape without a dedicated re-record pass.
        captured: Vec<CapturedSpawn>,
    },
}

/// Everything [`EngineCapture::end_feed`] hands back to the engine loop.
struct FeedEnd {
    state: Arc<IterState>,
    spawned: usize,
    diverged: bool,
    switched: bool,
    captured: Vec<CapturedSpawn>,
}

/// The capture installed by [`RunIterative::run_iterative`].
///
/// Hot state lives in `UnsafeCell`s: the runtime calls `SpawnCapture`
/// methods only from the thread executing the root task body, and the
/// engine switches modes / consults the cache only from that same body —
/// all accesses are sequential on one thread (see the `SpawnCapture`
/// docs).
struct EngineCapture {
    mode: UnsafeCell<Mode>,
    recorder: GraphRecorder,
    cache: UnsafeCell<GraphCache>,
    /// Worker count, needed to build per-iteration reduction state when
    /// swapping feed targets.
    workers: usize,
    /// NUMA partitions for release routing; 0 = partitioning off
    /// ([`nanotask_core::RuntimeConfig::replay_partitioning`]).
    parts: usize,
    /// `replay_cache_size > 1`: cache probing, divergence capture and
    /// pinning are active. With 1 the engine is byte-identical to the
    /// original single-graph design (divergence discards the graph and
    /// the next iteration blindly re-records).
    hysteresis: bool,
    /// Reference data path ([`nanotask_core::RuntimeConfig::replay_compat`]):
    /// sweep reset, full-rescan partitioner, byte-FNV hashing, no inline
    /// routing.
    compat: bool,
    /// Signature/structural hash function of this run (fixed:
    /// recorded sigs and fed sigs must come from the same function).
    hmode: SigHashMode,
}

unsafe impl Send for EngineCapture {}
unsafe impl Sync for EngineCapture {}

impl EngineCapture {
    fn new(workers: usize, cache_size: usize, parts: usize, compat: bool) -> Self {
        Self {
            mode: UnsafeCell::new(Mode::Off),
            recorder: GraphRecorder::new(),
            cache: UnsafeCell::new(GraphCache::new(cache_size)),
            workers,
            parts,
            hysteresis: cache_size > 1,
            compat,
            hmode: SigHashMode::for_compat(compat),
        }
    }

    /// Build the per-iteration state for feeding `g`: attaches the
    /// graph's (entry-cached) NUMA partitioning when partitioning is on.
    ///
    /// # Safety-adjacent note
    /// Calls `self.cache()` — root-thread confinement (see type docs).
    fn make_state(&self, g: Arc<ReplayGraph>) -> Arc<IterState> {
        let part = if self.parts > 0 {
            Some(unsafe { self.cache() }.partitioning(&g, self.parts, self.compat))
        } else {
            None
        };
        Arc::new(IterState::new(g, self.workers, part, self.compat))
    }

    /// # Safety
    /// Root-thread confinement (see type docs).
    #[allow(clippy::mut_from_ref)]
    unsafe fn mode(&self) -> &mut Mode {
        unsafe { &mut *self.mode.get() }
    }

    /// # Safety
    /// Root-thread confinement (see type docs).
    #[allow(clippy::mut_from_ref)]
    unsafe fn cache(&self) -> &mut GraphCache {
        unsafe { &mut *self.cache.get() }
    }

    fn set_record(&self) {
        self.recorder.begin(CaptureMode::Record);
        unsafe { *self.mode() = Mode::Record };
    }

    fn set_probe(&self) {
        unsafe {
            *self.mode() = Mode::Probe {
                hash: STRUCTURAL_HASH_SEED,
            }
        };
    }

    /// Leave probe mode; returns the iteration's structural hash.
    fn end_probe(&self) -> u64 {
        let mode = unsafe { self.mode() };
        let h = match mode {
            Mode::Probe { hash } => *hash,
            _ => STRUCTURAL_HASH_SEED,
        };
        *mode = Mode::Off;
        h
    }

    fn set_feed(&self, state: Arc<IterState>) {
        unsafe {
            *self.mode() = Mode::Feed {
                state,
                next: 0,
                diverged: false,
                switched: false,
                captured: Vec::new(),
            }
        };
    }

    /// Leave feed mode, handing back what happened (`None` if feed mode
    /// was never entered).
    fn end_feed(&self) -> Option<FeedEnd> {
        let mode = unsafe { self.mode() };
        match core::mem::replace(mode, Mode::Off) {
            Mode::Feed {
                state,
                next,
                diverged,
                switched,
                captured,
            } => Some(FeedEnd {
                state,
                spawned: next,
                diverged,
                switched,
                captured,
            }),
            _ => None,
        }
    }

    fn end_record(&self) -> Vec<CapturedSpawn> {
        unsafe { *self.mode() = Mode::Off };
        self.recorder.take()
    }
}

impl SpawnCapture for EngineCapture {
    fn active(&self) -> bool {
        !matches!(unsafe { self.mode() }, Mode::Off)
    }

    fn on_spawn(
        &self,
        ctx: &TaskCtx,
        label: &'static str,
        priority: i32,
        deps: Deps,
        body: TaskBody,
    ) -> Option<(Deps, TaskBody)> {
        // SAFETY: root-thread confinement; nothing reached from the calls
        // below (spawn_held, taskwait, recorder, cache) re-enters this
        // capture — nested tasks executed while task-waiting are non-root
        // and the runtime only offers root spawns.
        let mode = unsafe { self.mode() };
        match mode {
            Mode::Off => Some((deps, body)),
            Mode::Record => self.recorder.on_spawn(ctx, label, priority, deps, body),
            Mode::Probe { hash } => {
                *hash = self
                    .hmode
                    .chain(*hash, self.hmode.sig(label, priority, deps.decls()));
                Some((deps, body))
            }
            Mode::Feed {
                state,
                next,
                diverged,
                switched,
                captured,
            } => {
                if *diverged {
                    if self.hysteresis {
                        captured.push(CapturedSpawn::bare(label, priority, deps.decls().to_vec()));
                    }
                    return Some((deps, body));
                }
                let i = *next;
                *next = i + 1;
                let sig = self.hmode.sig(label, priority, deps.decls());
                let matched = {
                    let nodes = state.graph.nodes();
                    i < nodes.len() && nodes[i].sig == sig
                };
                if matched {
                    state.feed(&Arc::clone(state), ctx, i, body);
                    return None;
                }
                if i == 0 && self.hysteresis {
                    // Nothing has been fed yet: a cached graph whose
                    // first spawn matches can take over wholesale — the
                    // phase-switch fast path of alternating bodies.
                    if let Some(g) = unsafe { self.cache() }.get_by_first_sig(sig) {
                        let st = self.make_state(g);
                        mark_partitions(ctx, &st);
                        *state = Arc::clone(&st);
                        *switched = true;
                        st.feed(&st, ctx, 0, body);
                        return None;
                    }
                }
                // Divergence mid-iteration: wait for the already-fed
                // prefix (its ordering was enforced by the graph), fold
                // any partially-fed reduction groups, then let this and
                // all later spawns go through the dependency system —
                // conservative and correct. With hysteresis the full
                // shape of this iteration is captured on the side so the
                // engine can probe the cache / freeze it afterwards.
                *diverged = true;
                if self.hysteresis {
                    // The fed prefix references the frozen decl arena by
                    // CSR index (no cloning); only the one diverging
                    // spawn's live declarations are copied — the `deps`
                    // must proceed into the dependency system.
                    let mut cv = state.graph.prefix_captured(i);
                    cv.push(CapturedSpawn::bare(label, priority, deps.decls().to_vec()));
                    *captured = cv;
                }
                ctx.taskwait();
                state.combine_partial();
                Some((deps, body))
            }
        }
    }

    fn on_spawned(&self, id: TaskId) {
        if matches!(unsafe { self.mode() }, Mode::Record) {
            self.recorder.on_spawned(id);
        }
    }
}

impl RunIterative for Runtime {
    fn run_iterative<F>(&self, iters: usize, body: F) -> ReplayReport
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static,
    {
        let (report, outcome) = self.run_iterative_outcome(iters, body);
        assert!(
            outcome.is_ok(),
            "nanotask run_iterative failed: {}",
            outcome.summary()
        );
        report
    }

    fn run_iterative_outcome<F>(&self, iters: usize, body: F) -> (ReplayReport, RunOutcome)
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static,
    {
        if iters == 0 {
            return (ReplayReport::default(), RunOutcome::default());
        }
        let cfg = self.config();
        let workers = cfg.workers;
        let cache_size = cfg.replay_cache_size.max(1);
        let giveup_after = cfg.replay_giveup_after;
        let recheck_every = cfg.replay_recheck_every.max(1);
        let hysteresis = cache_size > 1;
        // NUMA-aware replay partitioning: one partition per node of the
        // runtime's topology. 0 disables routing entirely (the release
        // path stays byte-identical to the unpartitioned engine).
        let parts = if cfg.replay_partitioning {
            self.topology().nodes()
        } else {
            0
        };
        let compat = cfg.replay_compat;

        let body = Arc::new(body);
        let capture = Arc::new(EngineCapture::new(workers, cache_size, parts, compat));
        self.set_spawn_capture(Some(Arc::clone(&capture) as _));
        let prev_graph_recording = self.graph_recording();
        self.clear_graph_edges();
        let obs = ReplayObs::new(self.metrics_registry());
        let recycled0 = self.tasks_recycled();
        let feed_hist = if self.metrics_enabled() {
            Some(obs.feed_ns.clone())
        } else {
            None
        };

        // All iterations run inside ONE root task, separated by taskwait
        // barriers: workers never tear down between iterations, which
        // keeps the per-iteration overhead to the barrier itself.
        let out: Arc<std::sync::Mutex<ReplayReport>> = Arc::default();
        let result = Arc::clone(&out);
        let cap = Arc::clone(&capture);
        let outcome = self.run_outcome(move |ctx| {
            // SAFETY (all `cap.cache()` calls below): root-thread
            // confinement — this closure is the root body.
            macro_rules! cache {
                () => {
                    unsafe { cap.cache() }
                };
            }
            /// The graph to schedule after finishing an iteration with
            /// structural hash `h`: the predicted successor phase if the
            /// cache knows one, else the graph of `h` itself.
            fn pick_next(
                cache: &mut GraphCache,
                h: u64,
                fallback: Arc<ReplayGraph>,
            ) -> Arc<ReplayGraph> {
                cache.predict_next(h).unwrap_or(fallback)
            }

            let mut cur: Option<Arc<ReplayGraph>> = None;
            let mut last_graph: Option<Arc<ReplayGraph>> = None;
            // Structural hash of the previous iteration, when known
            // (feeds the cache's phase predictor).
            let mut prev_hash: Option<u64> = None;
            // Consecutive iterations that failed to replay.
            let mut fails = 0usize;
            let mut pinned = false;
            // Nested-domain pins are permanent: no re-stabilization
            // probes, replay can never be safe for this body.
            let mut pinned_forever = false;
            let mut since_probe = 0usize;
            let mut last_probe_hash: Option<u64> = None;
            let mut report = ReplayReport::default();

            for iter in 0..iters {
                // Fault watch: any task-body failure recorded during
                // this iteration invalidates the graph it ran from and
                // drops the engine back to the dependency system — the
                // shape re-records from a clean run on its next
                // occurrence.
                let fails0 = ctx.failure_count();
                macro_rules! check_faults {
                    () => {
                        if ctx.failure_count() != fails0 {
                            report.faulted += 1;
                            if let Some(h) = prev_hash {
                                cache!().invalidate(h);
                            }
                            cur = None;
                            prev_hash = None;
                            last_probe_hash = None;
                            // The taskwait barrier just drained every
                            // task, so the iteration boundary is safe to
                            // act as the poison-recovery point: the next
                            // iteration registers on clean addresses.
                            ctx.reset_fault_propagation();
                        }
                    };
                }
                if pinned {
                    report.pinned_iterations += 1;
                    since_probe += 1;
                    if !pinned_forever && since_probe >= recheck_every {
                        // Cheap hash-only probe: did the body
                        // re-stabilize onto a cached (or repeating)
                        // shape?
                        since_probe = 0;
                        cap.set_probe();
                        body(ctx);
                        let h = cap.end_probe();
                        ctx.taskwait();
                        if let Some(g) = cache!().get(h) {
                            ctx.trace_mark(EventKind::ReplayCacheHit, iter as u64);
                            if let Some(p) = prev_hash {
                                cache!().note_transition(p, h);
                            }
                            prev_hash = Some(h);
                            cur = Some(pick_next(cache!(), h, g));
                            pinned = false;
                            fails = 0;
                            last_probe_hash = None;
                        } else if last_probe_hash == Some(h) {
                            // Two consecutive probes saw the same
                            // uncached shape: record it next iteration.
                            cur = None;
                            prev_hash = None;
                            pinned = false;
                            fails = 0;
                            last_probe_hash = None;
                        } else {
                            last_probe_hash = Some(h);
                        }
                    } else {
                        // Plain dependency-system iteration, capture off.
                        body(ctx);
                        ctx.taskwait();
                    }
                    check_faults!();
                    report.iterations += 1;
                    continue;
                }
                match cur.clone() {
                    None => {
                        // Record: execute through the full dependency
                        // system with the edge tap enabled.
                        ctx.trace_mark(EventKind::ReplayRecordBegin, iter as u64);
                        let nested0 = ctx.nested_spawn_count();
                        let _ = ctx.take_graph_edges();
                        ctx.set_graph_recording(true);
                        cap.set_record();
                        body(ctx);
                        let captured = cap.end_record();
                        ctx.taskwait();
                        ctx.set_graph_recording(prev_graph_recording);
                        let tap = ctx.take_graph_edges();
                        let nested = ctx.nested_spawn_count() - nested0;
                        let freeze_t0 = std::time::Instant::now();
                        let g = Arc::new(ReplayGraph::build_with(&captured, &tap, cap.hmode));
                        report.freeze_ns += freeze_t0.elapsed().as_nanos() as u64;
                        ctx.trace_mark(EventKind::ReplayRecordEnd, g.len() as u64);
                        report.rerecords += 1;
                        report.cache_misses += 1;
                        report.nested_spawns += nested;
                        fails += 1;
                        last_graph = Some(Arc::clone(&g));
                        if hysteresis && (g.foreign_edge_count() > 0 || nested > 0) {
                            // Nested task domains: the frozen graph
                            // cannot see cross-sibling dependencies of
                            // nested tasks — fall back permanently.
                            report.pinned_nested = true;
                            report.giveups += 1;
                            pinned = true;
                            pinned_forever = true;
                            cur = None;
                            prev_hash = None;
                            ctx.trace_mark(EventKind::ReplayGiveUp, iter as u64);
                        } else {
                            let h = g.structural_hash();
                            if hysteresis && let Some(p) = prev_hash {
                                cache!().note_transition(p, h);
                            }
                            cache!().insert(Arc::clone(&g));
                            prev_hash = Some(h);
                            cur = Some(if hysteresis {
                                pick_next(cache!(), h, g)
                            } else {
                                g
                            });
                        }
                    }
                    Some(g) => {
                        // Replay: spawns are matched against the frozen
                        // graph one by one and fed straight to it; a
                        // first-spawn mismatch may swap in another cached
                        // graph (phase switch), any other mismatch
                        // degrades to the dependency system.
                        ctx.trace_mark(EventKind::ReplayIterBegin, iter as u64);
                        let nested0 = ctx.nested_spawn_count();
                        let state = cap.make_state(g);
                        mark_partitions(ctx, &state);
                        cap.set_feed(Arc::clone(&state));
                        let feed_t0 = feed_hist.as_ref().map(|_| std::time::Instant::now());
                        body(ctx);
                        if let (Some(h), Some(t0)) = (&feed_hist, feed_t0) {
                            h.record(0, t0.elapsed().as_nanos() as u64);
                        }
                        let end = cap.end_feed().expect("feed mode active");
                        ctx.taskwait();
                        // The feed target may have been swapped by the
                        // first-spawn phase switch: count the state that
                        // actually fed (`end.state`), not the scheduled
                        // one.
                        report.routed_releases += end.state.routed.load(Ordering::Relaxed);
                        if let Some(p) = &end.state.part {
                            report.partitions = p.parts();
                            report.partition_cut_edges = p.cut_edges();
                        }
                        let complete = !end.diverged && end.spawned == end.state.graph.len();
                        let nested = ctx.nested_spawn_count() - nested0;
                        // Macro (not a closure: it mutates half the loop
                        // state) for the permanent nested-domain pin —
                        // shared by every path that observes nesting.
                        macro_rules! pin_nested {
                            () => {{
                                report.nested_spawns += nested;
                                report.pinned_nested = true;
                                report.giveups += 1;
                                pinned = true;
                                pinned_forever = true;
                                cur = None;
                                prev_hash = None;
                                ctx.trace_mark(EventKind::ReplayGiveUp, iter as u64);
                            }};
                        }
                        if complete {
                            debug_assert_eq!(
                                end.state.launched.load(Ordering::Relaxed),
                                end.state.graph.len(),
                                "every node released exactly once"
                            );
                            report.replayed += 1;
                            report.cache_hits += 1;
                            fails = 0;
                            let h = end.state.graph.structural_hash();
                            cache!().note_replay(h);
                            if end.switched {
                                ctx.trace_mark(EventKind::ReplayCacheHit, iter as u64);
                            }
                            if hysteresis && nested > 0 {
                                // The body started spawning nested
                                // children only *after* its graph was
                                // frozen: replay cannot order them, so
                                // stop replaying from here on.
                                pin_nested!();
                            } else if hysteresis {
                                if let Some(p) = prev_hash {
                                    cache!().note_transition(p, h);
                                }
                                cur = Some(pick_next(cache!(), h, Arc::clone(&end.state.graph)));
                                prev_hash = Some(h);
                            } else {
                                prev_hash = Some(h);
                            }
                        } else {
                            // Divergent (or truncated) iteration: it ran
                            // correctly via prefix + barrier + dependency
                            // system; fold any reduction groups the fed
                            // prefix touched (no-op if the divergence
                            // path already did).
                            end.state.combine_partial();
                            report.diverged += 1;
                            fails += 1;
                            if !hysteresis {
                                // Original single-graph engine: discard
                                // and blindly re-record next iteration.
                                report.cache_misses += 1;
                                cur = None;
                                prev_hash = None;
                            } else {
                                // Hysteresis: this iteration's full
                                // shape is known — probe the cache and
                                // only freeze a new graph on a miss.
                                let captured = if end.diverged {
                                    end.captured
                                } else {
                                    end.state.graph.prefix_captured(end.spawned)
                                };
                                let h = cap.hmode.structural_hash(&captured);
                                if let Some(hit) = cache!().get(h) {
                                    report.cache_hits += 1;
                                    ctx.trace_mark(EventKind::ReplayCacheHit, iter as u64);
                                    if nested > 0 {
                                        pin_nested!();
                                    } else {
                                        if let Some(p) = prev_hash {
                                            cache!().note_transition(p, h);
                                        }
                                        prev_hash = Some(h);
                                        cur = Some(pick_next(cache!(), h, hit));
                                    }
                                } else {
                                    report.rerecords += 1;
                                    report.cache_misses += 1;
                                    let freeze_t0 = std::time::Instant::now();
                                    let ng = Arc::new(ReplayGraph::build_with(
                                        &captured,
                                        &[],
                                        cap.hmode,
                                    ));
                                    report.freeze_ns += freeze_t0.elapsed().as_nanos() as u64;
                                    last_graph = Some(Arc::clone(&ng));
                                    if nested > 0 {
                                        pin_nested!();
                                    } else {
                                        if let Some(p) = prev_hash {
                                            cache!().note_transition(p, h);
                                        }
                                        cache!().insert(Arc::clone(&ng));
                                        prev_hash = Some(h);
                                        cur = Some(pick_next(cache!(), h, ng));
                                    }
                                }
                                if !pinned && giveup_after > 0 && fails >= giveup_after {
                                    // Too many consecutive failures to
                                    // replay: stop paying record costs,
                                    // pin to the dependency system. The
                                    // predictor must not learn across
                                    // the unobserved pinned stretch, so
                                    // forget the last-seen hash too.
                                    report.giveups += 1;
                                    pinned = true;
                                    since_probe = 0;
                                    last_probe_hash = None;
                                    cur = None;
                                    prev_hash = None;
                                    ctx.trace_mark(EventKind::ReplayGiveUp, iter as u64);
                                }
                            }
                        }
                        ctx.trace_mark(EventKind::ReplayIterEnd, iter as u64);
                    }
                }
                check_faults!();
                report.iterations += 1;
            }
            if let Some(g) = last_graph {
                report.tasks = g.len();
                report.edges = g.edge_count();
                report.edge_list = g.edge_pairs();
                report.foreign_edges = g.foreign_edge_count();
                report.graph_bytes = g.bytes();
            }
            report.cache_evictions = cache!().evictions();
            report.per_graph_replays = cache!().per_graph_replays();
            let (rescans, heap_ops, seeds, seed_reused, seed_total) = cache!().partition_stats();
            report.frontier_rescans = rescans;
            report.heap_ops = heap_ops;
            report.partition_seeds = seeds;
            report.partition_seed_reused = seed_reused;
            report.partition_seed_total = seed_total;
            *result.lock().unwrap() = report;
        });
        self.set_spawn_capture(None);
        let mut report = Arc::try_unwrap(out)
            .map(|m| m.into_inner().unwrap())
            .unwrap_or_default();
        // Allocator-side evidence, read from the runtime after the run:
        // recycled spawns as a per-run delta, the memory peak as the
        // runtime-lifetime high-water mark.
        report.tasks_recycled = self.tasks_recycled().saturating_sub(recycled0);
        report.peak_task_bytes = self.peak_task_bytes();
        obs.mirror(&report);
        (report, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_core::{RuntimeConfig, SendPtr};
    use std::sync::atomic::AtomicU64;

    /// Every iteration must be classified exactly once — asserted by the
    /// report itself ([`ReplayReport::assert_classification`]), in one
    /// place instead of per-test copies.
    fn check_invariants(report: &ReplayReport) {
        report.assert_classification();
    }

    #[test]
    fn empty_iterations_are_fine() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let report = rt.run_iterative(3, |_| {});
        assert_eq!(report.iterations, 3);
        assert_eq!(report.replayed, 2);
        assert_eq!(report.tasks, 0);
        check_invariants(&report);
    }

    #[test]
    fn zero_iters_is_a_noop() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let report = rt.run_iterative(0, |_| panic!("must not run"));
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn chain_replays_in_order() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(5, move |ctx| {
            for _ in 0..10 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 50);
        assert_eq!(report.iterations, 5);
        assert_eq!(report.replayed, 4);
        assert_eq!(report.rerecords, 1);
        assert_eq!(report.diverged, 0);
        assert_eq!(report.tasks, 10);
        assert_eq!(report.edges, 9);
        assert_eq!(report.cache_hits, 4);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.per_graph_replays.len(), 1);
        assert_eq!(report.per_graph_replays[0].1, 10, "tasks per graph");
        assert_eq!(report.per_graph_replays[0].2, 4, "replays of the graph");
        check_invariants(&report);
        unsafe { drop(Box::from_raw(data)) };
    }

    /// The registry view written by [`ReplayObs::mirror`] must agree
    /// with the bespoke report field-by-field (the same differential the
    /// fig17 harness asserts), and accumulate across runs on one runtime.
    #[test]
    fn registry_mirrors_the_report() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3).with_metrics(true));
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let report = rt.run_iterative(6, move |ctx| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                ctx.spawn(Deps::new(), move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        check_invariants(&report);
        let snap = rt.metrics_snapshot();
        let pairs: [(&str, u64); 10] = [
            ("nanotask_replay_iterations_total", report.iterations as u64),
            ("nanotask_replay_replayed_total", report.replayed as u64),
            ("nanotask_replay_rerecords_total", report.rerecords as u64),
            ("nanotask_replay_diverged_total", report.diverged as u64),
            ("nanotask_replay_cache_hits_total", report.cache_hits as u64),
            (
                "nanotask_replay_cache_misses_total",
                report.cache_misses as u64,
            ),
            (
                "nanotask_replay_cache_evictions_total",
                report.cache_evictions,
            ),
            (
                "nanotask_replay_pinned_iterations_total",
                report.pinned_iterations as u64,
            ),
            ("nanotask_replay_giveups_total", report.giveups as u64),
            ("nanotask_replay_nested_spawns_total", report.nested_spawns),
        ];
        for (name, want) in pairs {
            assert_eq!(snap.counter(name), Some(want), "{name}");
        }
        // Memory/freeze evidence: populated in the report and mirrored
        // (counters as running sums, sizes as high-water marks).
        assert!(report.freeze_ns > 0, "record iteration froze a graph");
        assert!(report.graph_bytes > 0, "frozen graph has a footprint");
        assert!(report.peak_task_bytes > 0, "tasks were live");
        assert!(report.tasks_recycled > 0, "iterations recycle shells");
        assert_eq!(
            snap.counter("nanotask_replay_freeze_ns_total"),
            Some(report.freeze_ns)
        );
        assert_eq!(
            snap.counter("nanotask_replay_tasks_recycled_total"),
            Some(report.tasks_recycled)
        );
        assert_eq!(
            snap.gauge("nanotask_replay_graph_bytes"),
            Some(report.graph_bytes)
        );
        assert_eq!(
            snap.gauge("nanotask_replay_peak_task_bytes"),
            Some(report.peak_task_bytes)
        );
        // Metrics are on: every replay-arm iteration (complete or
        // diverged) records exactly one feed-time sample.
        let feed = snap.histogram("nanotask_replay_feed_ns").unwrap();
        assert_eq!(feed.count, (report.replayed + report.diverged) as u64);
        // A second run on the same runtime accumulates into the registry.
        let c = Arc::clone(&count);
        let second = rt.run_iterative(4, move |ctx| {
            let c = Arc::clone(&c);
            ctx.spawn(Deps::new(), move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        });
        let snap = rt.metrics_snapshot();
        assert_eq!(
            snap.counter("nanotask_replay_iterations_total"),
            Some((report.iterations + second.iterations) as u64)
        );
    }

    #[test]
    fn independent_tasks_all_execute() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let report = rt.run_iterative(4, move |ctx| {
            for _ in 0..32 {
                let c = Arc::clone(&c);
                ctx.spawn(Deps::new(), move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 4 * 32);
        assert_eq!(report.edges, 0);
        check_invariants(&report);
    }

    #[test]
    fn reductions_replay_with_slots() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(3));
        let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
        let p = SendPtr::new(acc);
        let iters = 6u64;
        let n = 16u64;
        rt.run_iterative(iters as usize, move |ctx| {
            for i in 0..n {
                ctx.spawn(
                    Deps::new().reduce_addr(p.addr(), 8, nanotask_core::RedOp::SumF64),
                    move |c| unsafe {
                        let slot = c.red_slot(&*(p.addr() as *const f64));
                        *slot += (i + 1) as f64;
                    },
                );
            }
            // Reader forces the chain to combine before the iteration ends.
            ctx.spawn(Deps::new().read_addr(p.addr()), move |_| {});
        });
        let per_iter: f64 = (n * (n + 1) / 2) as f64;
        assert_eq!(unsafe { *acc }, per_iter * iters as f64);
        unsafe { drop(Box::from_raw(acc)) };
    }

    #[test]
    fn single_graph_mode_falls_back_and_rerecords() {
        // `replay_cache_size = 1` must reproduce the original engine
        // byte for byte: every divergence discards the graph and blindly
        // re-records on the next iteration — the alternating body never
        // replays.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .with_replay_cache_size(1),
        );
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(6, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let p = if i.is_multiple_of(2) { pa } else { pb };
            for _ in 0..4 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { (*a, *b) }, (12, 12));
        assert_eq!(report.iterations, 6);
        // Records on iterations 0/2/4, divergent fallbacks on 1/3/5.
        assert_eq!(report.rerecords, 3);
        assert_eq!(report.diverged, 3);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.pinned_iterations, 0, "no give-up policy at size 1");
        check_invariants(&report);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn alternating_body_served_from_cache() {
        // The same alternating body as the single-graph test, with the
        // default cache: each phase records once, then every iteration
        // replays — the divergence hysteresis this PR is about.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(8, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let p = if i.is_multiple_of(2) { pa } else { pb };
            for _ in 0..4 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { (*a, *b) }, (16, 16));
        assert_eq!(report.rerecords, 2, "each phase recorded exactly once");
        assert_eq!(report.diverged, 1, "only the first phase flip diverges");
        assert_eq!(report.replayed, 6, "steady state replays every phase");
        assert_eq!(report.cache_hits, 6);
        assert_eq!(report.cache_misses, 2);
        assert_eq!(report.cache_evictions, 0);
        assert_eq!(report.per_graph_replays.len(), 2);
        let total: u64 = report.per_graph_replays.iter().map(|&(_, _, r)| r).sum();
        assert_eq!(total, 6);
        check_invariants(&report);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn shared_prefix_alternation_stabilizes_via_predictor() {
        // Phases A and B share their first three spawns and only differ
        // at the tail, so the first-spawn switch probe cannot tell them
        // apart — steady-state replay relies on the cache's phase
        // predictor instead.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(10, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed);
            for _ in 0..3 {
                ctx.spawn(Deps::new().readwrite_addr(pa.addr()), move |_| unsafe {
                    *pa.get() += 1;
                });
            }
            if !i.is_multiple_of(2) {
                ctx.spawn(Deps::new().readwrite_addr(pb.addr()), move |_| unsafe {
                    *pb.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { (*a, *b) }, (30, 5));
        assert_eq!(report.rerecords, 2, "each phase recorded exactly once");
        assert_eq!(report.diverged, 2, "one flip per direction, then steady");
        assert_eq!(report.replayed, 7, "iterations 3.. replay via prediction");
        check_invariants(&report);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn truncated_iteration_counts_as_divergence() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(3, move |ctx| {
            // Iteration 1 spawns a strict prefix of the recorded graph.
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let n = if i == 1 { 2 } else { 4 };
            for _ in 0..n {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 10);
        // Iteration 1 truncates (freezing the 2-task prefix as its own
        // graph); iteration 2 then overruns that short graph but its
        // full shape hash-matches the original recording — a cache hit,
        // not a third record.
        assert_eq!(report.diverged, 2);
        assert_eq!(report.rerecords, 2);
        assert_eq!(report.cache_hits, 1);
        check_invariants(&report);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn duplicate_address_decls_do_not_deadlock_replay() {
        // Duplicate addresses within one task are a contract violation
        // (Deps::push debug_asserts them); mixed-mode duplicates deadlock
        // the dependency system itself, so only the reader+reader form —
        // which the wait-free system tolerates via early read forwarding —
        // can be driven end-to-end. The builder coalesces it to a single
        // access instead of emitting degenerate edges (the mixed-mode
        // coalescing is pinned by the graph unit test
        // `duplicate_address_decls_never_self_edge`).
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let data = Box::leak(Box::new(7u64)) as *mut u64;
        let seen = Arc::new(AtomicU64::new(0));
        let p = SendPtr::new(data);
        let report = {
            let seen = Arc::clone(&seen);
            rt.run_iterative(4, move |ctx| {
                let writer_decls = vec![nanotask_core::AccessDecl::new(
                    p.addr(),
                    8,
                    nanotask_core::AccessMode::ReadWrite,
                )];
                ctx.spawn_labeled("w", Deps::from_decls(writer_decls), move |_| unsafe {
                    *p.get() += 1;
                });
                let dup_read_decls = vec![
                    nanotask_core::AccessDecl::new(p.addr(), 8, nanotask_core::AccessMode::Read),
                    nanotask_core::AccessDecl::new(p.addr(), 8, nanotask_core::AccessMode::Read),
                ];
                let seen = Arc::clone(&seen);
                ctx.spawn_labeled("rr", Deps::from_decls(dup_read_decls), move |_| {
                    seen.fetch_add(unsafe { *p.get() }, Ordering::Relaxed);
                });
            })
        };
        assert_eq!(unsafe { *data }, 11);
        // The reader always observes the just-incremented value: 8+9+10+11.
        assert_eq!(seen.load(Ordering::Relaxed), 38);
        assert_eq!(report.replayed, 3, "no divergence, no deadlock");
        assert_eq!(report.edges, 1, "duplicate reads coalesced into one edge");
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn divergence_preserves_partial_reduction_contributions() {
        // Recorded graph: a 4-member SumF64 group (+ trailing reader).
        // The next iteration feeds only 2 members before diverging; their
        // private-slot contributions must still reach the target. The
        // third iteration diverges from the frozen 2-member shape but
        // hash-matches the original graph — the cache-hit divergence path
        // must preserve reduction contributions just the same.
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
        let other = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, po) = (SendPtr::new(acc), SendPtr::new(other));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(3, move |ctx| {
            let it = iter.fetch_add(1, Ordering::Relaxed);
            let members = if it == 1 { 2 } else { 4 };
            for i in 0..members {
                ctx.spawn(
                    Deps::new().reduce_addr(pa.addr(), 8, nanotask_core::RedOp::SumF64),
                    move |c| unsafe {
                        *c.red_slot(&*(pa.addr() as *const f64)) += (i + 1) as f64;
                    },
                );
            }
            if it == 1 {
                // Divergent third spawn: different shape than the
                // recorded node 2.
                ctx.spawn(Deps::new().readwrite_addr(po.addr()), move |_| unsafe {
                    *po.get() += 1;
                });
            } else {
                ctx.spawn(Deps::new().read_addr(pa.addr()), move |_| {});
            }
        });
        // Iterations 0 and 2: 1+2+3+4 = 10 each; iteration 1: 1+2 = 3.
        assert_eq!(unsafe { *acc }, 23.0, "partial group contributions kept");
        assert_eq!(unsafe { *other }, 1);
        assert_eq!(report.diverged, 2);
        assert_eq!(report.rerecords, 2);
        assert_eq!(report.cache_hits, 1, "iteration 2 matches the recording");
        check_invariants(&report);
        unsafe {
            drop(Box::from_raw(acc));
            drop(Box::from_raw(other));
        }
    }

    #[test]
    fn permanently_dynamic_body_gives_up_and_pins() {
        // A body whose shape never repeats: after `replay_giveup_after`
        // consecutive failures the engine pins it to the dependency
        // system; hash probes never see a repeat, so it stays pinned.
        const ITERS: usize = 20;
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .with_replay_giveup_after(3)
                .with_replay_recheck_every(4),
        );
        let slots = Box::leak(vec![0u64; ITERS].into_boxed_slice());
        let base = SendPtr::new(slots.as_mut_ptr());
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(ITERS, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed) as usize;
            let p = unsafe { base.add(i) };
            for _ in 0..2 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(*s, 2, "slot {i} ran in every mode");
        }
        assert_eq!(report.replayed, 0);
        assert_eq!(report.giveups, 1);
        // Record + two divergences hit the threshold of 3; the rest of
        // the run is pinned.
        assert_eq!(report.rerecords, 3);
        assert_eq!(report.pinned_iterations, ITERS - 3);
        check_invariants(&report);
        unsafe { drop(Box::from_raw(slots as *mut [u64])) };
    }

    #[test]
    fn pinned_body_restabilizes_to_cached_graph() {
        // Stable phase A, a dynamic burst that pins the body, then back
        // to A: the periodic hash probe finds A in the cache and replay
        // resumes.
        const ITERS: usize = 8;
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .with_replay_giveup_after(2)
                .with_replay_recheck_every(2),
        );
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let noise = Box::leak(vec![0u64; ITERS].into_boxed_slice());
        let pa = SendPtr::new(a);
        let pn = SendPtr::new(noise.as_mut_ptr());
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(ITERS, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed) as usize;
            if (2..4).contains(&i) {
                // Dynamic burst: a unique shape per iteration.
                let p = unsafe { pn.add(i) };
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            } else {
                ctx.spawn(Deps::new().readwrite_addr(pa.addr()), move |_| unsafe {
                    *pa.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *a }, (ITERS - 2) as u64);
        assert_eq!((noise[2], noise[3]), (1, 1));
        // it0 record A, it1 replay A, it2/it3 diverge (pin at the 2nd
        // consecutive failure), it4 pinned, it5 probe hits A, it6..7
        // replay A again.
        assert_eq!(report.giveups, 1);
        assert_eq!(report.replayed, 3);
        assert_eq!(report.pinned_iterations, 2);
        assert!(!report.pinned_nested);
        check_invariants(&report);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(noise as *mut [u64]));
        }
    }

    #[test]
    fn nested_spawning_body_is_pinned_not_replayed() {
        // Replay cannot see cross-sibling dependencies of nested tasks,
        // so a body whose tasks spawn children must be pinned to the
        // dependency system after the record iteration detects nesting.
        const ITERS: usize = 5;
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let report = rt.run_iterative(ITERS, move |ctx| {
            for _ in 0..3 {
                let c = Arc::clone(&c);
                ctx.spawn(Deps::new(), move |tc| {
                    let c = Arc::clone(&c);
                    tc.spawn(Deps::new(), move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), (3 * ITERS) as u64);
        assert!(report.pinned_nested, "nested domains force fallback");
        assert!(report.nested_spawns >= 3);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.rerecords, 1);
        assert_eq!(report.pinned_iterations, ITERS - 1);
        check_invariants(&report);
    }

    #[test]
    fn late_nesting_body_stops_replaying() {
        // Nested children appear only *after* the graph was recorded
        // (record saw no nesting, so the graph got cached): the replay
        // path must notice the nested-spawn delta and pin, not keep
        // replaying a graph that cannot order the children.
        const ITERS: usize = 6;
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let count = Arc::new(AtomicU64::new(0));
        let iter = Arc::new(AtomicU64::new(0));
        let report = {
            let (count, iter) = (Arc::clone(&count), Arc::clone(&iter));
            rt.run_iterative(ITERS, move |ctx| {
                let i = iter.fetch_add(1, Ordering::Relaxed);
                for _ in 0..2 {
                    let count = Arc::clone(&count);
                    ctx.spawn(Deps::new(), move |tc| {
                        if i >= 2 {
                            let count = Arc::clone(&count);
                            tc.spawn(Deps::new(), move |_| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        } else {
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            })
        };
        assert_eq!(count.load(Ordering::Relaxed), (2 * ITERS) as u64);
        // Iterations 0/1 record + replay cleanly; iteration 2 replays
        // but observes nested spawns and pins; 3.. stay pinned.
        assert!(report.pinned_nested, "{report:?}");
        assert_eq!(report.nested_spawns, 2, "{report:?}");
        assert_eq!(report.replayed, 2, "{report:?}");
        assert_eq!(report.pinned_iterations, ITERS - 3, "{report:?}");
        assert_eq!(report.giveups, 1);
        check_invariants(&report);
    }

    #[test]
    fn replay_chains_bypass_queue_with_fast_path() {
        let rt = Runtime::new(
            nanotask_core::RuntimeConfig::optimized()
                .workers(2)
                .fast_path(true),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(6, move |ctx| {
            for _ in 0..20 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 120);
        assert_eq!(report.replayed, 5);
        assert_eq!(report.diverged, 0);
        let rr = rt.run_report();
        assert!(
            rr.inline_runs > 0,
            "replayed chain successors ran inline: {rr:?}"
        );
        assert_eq!(rt.live_tasks(), 0);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn divergent_replay_correct_under_fast_path() {
        // Single-graph mode: divergence mid-iteration taskwaits on the
        // fed prefix every other iteration — the deferred-release flush
        // at taskwait entry must make that safe, repeatedly.
        let rt = Runtime::new(
            nanotask_core::RuntimeConfig::optimized()
                .workers(2)
                .fast_path(true)
                .with_replay_cache_size(1),
        );
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(6, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let p = if i.is_multiple_of(2) { pa } else { pb };
            for _ in 0..4 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { (*a, *b) }, (12, 12));
        assert_eq!(report.diverged, 3);
        assert_eq!(rt.live_tasks(), 0);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn alternating_replay_correct_under_fast_path() {
        // Cached mode + zero-queue fast path: the phase switch swaps the
        // feed target before anything was committed, so every phase
        // replays and the deferred-release machinery sees only complete
        // iterations.
        let rt = Runtime::new(
            nanotask_core::RuntimeConfig::optimized()
                .workers(2)
                .fast_path(true),
        );
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(6, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let p = if i.is_multiple_of(2) { pa } else { pb };
            for _ in 0..4 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { (*a, *b) }, (12, 12));
        assert_eq!(report.diverged, 1);
        assert_eq!(report.replayed, 4);
        assert_eq!(rt.live_tasks(), 0);
        check_invariants(&report);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn tasks_reclaimed_after_replay() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(2));
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        rt.run_iterative(4, move |ctx| {
            for _ in 0..8 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(rt.live_tasks(), 0, "all task objects reclaimed");
        let s = rt.stats();
        assert_eq!(s.tasks_created, s.tasks_freed);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn partitioned_replay_routes_every_release() {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(6, move |ctx| {
            for _ in 0..10 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 60);
        assert_eq!(report.replayed, 5);
        assert_eq!(report.partitions, 2);
        // Every replayed release was routed: 10 tasks × 5 replays.
        assert_eq!(report.routed_releases, 50, "{report}");
        assert_eq!(report.partition_cut_edges, 1, "a split chain cuts once");
        let rr = rt.run_report();
        assert_eq!(
            rr.sched.targeted_tasks, report.routed_releases,
            "engine-side and scheduler-side routing counts agree"
        );
        let targeted: u64 = rr.node_stats.iter().map(|n| n.targeted_tasks).sum();
        assert_eq!(targeted, 50, "{:?}", rr.node_stats);
        assert!(
            rr.node_stats.iter().all(|n| n.targeted_tasks > 0),
            "a split chain feeds both node buffers: {:?}",
            rr.node_stats
        );
        check_invariants(&report);
        assert_eq!(rt.live_tasks(), 0);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn partitioning_off_keeps_paths_untouched() {
        let rt = Runtime::new(RuntimeConfig::optimized().workers(4).with_numa_nodes(2));
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(4, move |ctx| {
            for _ in 0..8 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 32);
        assert_eq!(report.partitions, 0, "knob off: no partitioning");
        assert_eq!(report.routed_releases, 0);
        let rr = rt.run_report();
        assert_eq!(rr.sched.targeted_batch_adds, 0, "no targeted inserts");
        assert_eq!(rr.sched.targeted_tasks, 0);
        check_invariants(&report);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn partitioned_replay_correct_under_fast_path_and_divergence() {
        // Partitioning + zero-queue fast path + an alternating body that
        // exercises the phase switch and the divergence path: routed
        // releases must stay correct through all of it.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true)
                .fast_path(true),
        );
        let a = Box::leak(Box::new(0u64)) as *mut u64;
        let b = Box::leak(Box::new(0u64)) as *mut u64;
        let (pa, pb) = (SendPtr::new(a), SendPtr::new(b));
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(8, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed);
            let p = if i.is_multiple_of(2) { pa } else { pb };
            for _ in 0..6 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { (*a, *b) }, (24, 24));
        assert_eq!(report.partitions, 2);
        assert!(report.routed_releases > 0, "{report}");
        check_invariants(&report);
        assert_eq!(rt.live_tasks(), 0);
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn partitioned_reductions_replay_correctly() {
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true),
        );
        let acc = Box::leak(Box::new(0.0f64)) as *mut f64;
        let p = SendPtr::new(acc);
        let iters = 5u64;
        let n = 12u64;
        rt.run_iterative(iters as usize, move |ctx| {
            for i in 0..n {
                ctx.spawn(
                    Deps::new().reduce_addr(p.addr(), 8, nanotask_core::RedOp::SumF64),
                    move |c| unsafe {
                        *c.red_slot(&*(p.addr() as *const f64)) += (i + 1) as f64;
                    },
                );
            }
            ctx.spawn(Deps::new().read_addr(p.addr()), move |_| {});
        });
        let per_iter: f64 = (n * (n + 1) / 2) as f64;
        assert_eq!(unsafe { *acc }, per_iter * iters as f64);
        unsafe { drop(Box::from_raw(acc)) };
    }

    #[test]
    fn partitioned_fast_path_keeps_same_node_successors_inline() {
        // Zero-queue fast path × NUMA partitioning: a replayed chain's
        // same-node successors must run inline (dependence locality
        // composing with partition locality) instead of round-tripping
        // their node queue — counted by `SchedOpStats::inline_routed`.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true)
                .fast_path(true),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(6, move |ctx| {
            for _ in 0..20 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 120);
        assert_eq!(report.replayed, 5);
        assert!(report.routed_releases > 0, "{report}");
        assert_eq!(report.frontier_rescans, 0, "heap partitioner active");
        assert!(report.heap_ops > 0, "{report}");
        let rr = rt.run_report();
        assert!(
            rr.sched.inline_routed > 0,
            "same-node successors kept inline: {:?}",
            rr.sched
        );
        assert!(
            rr.sched.inline_routed <= report.routed_releases,
            "inline-kept releases are a subset of routed releases"
        );
        check_invariants(&report);
        assert_eq!(rt.live_tasks(), 0);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn compat_mode_runs_reference_path() {
        // `replay_compat` selects the retained PR 4 data path: sweep
        // reset, full-rescan partitioner, no inline-routing composition.
        // Results are identical; only the counters differ.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true)
                .with_replay_compat(true)
                .fast_path(true),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let report = rt.run_iterative(6, move |ctx| {
            for _ in 0..20 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *data }, 120);
        assert_eq!(report.replayed, 5);
        assert!(report.frontier_rescans > 0, "naive partitioner: {report}");
        assert_eq!(report.heap_ops, 0, "{report}");
        assert_eq!(report.partition_seeds, 0, "no eviction seeding");
        let rr = rt.run_report();
        assert_eq!(
            rr.sched.inline_routed, 0,
            "reference path never keeps routed releases inline"
        );
        check_invariants(&report);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn eviction_reentry_seeds_partitioning() {
        // Period-3 phase cycle with a 2-entry cache and partitioning on:
        // shapes keep evicting each other, and every re-entry must adopt
        // the evicted assignment (100 % reuse — the graphs re-enter
        // unchanged) instead of recomputing from scratch.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .with_numa_nodes(2)
                .with_replay_partitioning(true)
                .with_replay_cache_size(2)
                .with_replay_giveup_after(0),
        );
        let slots = Box::leak(vec![0u64; 3].into_boxed_slice());
        let base = SendPtr::new(slots.as_mut_ptr());
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(12, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed) as usize;
            let p = unsafe { base.add(i % 3) };
            for _ in 0..4 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                    *p.get() += 1;
                });
            }
        });
        for s in slots.iter() {
            assert_eq!(*s, 16);
        }
        assert!(report.cache_evictions > 0, "{report:?}");
        assert!(report.partition_seeds > 0, "re-entries seeded: {report}");
        assert_eq!(
            report.partition_seed_reused, report.partition_seed_total,
            "unchanged graphs reuse the full assignment: {report}"
        );
        check_invariants(&report);
        unsafe { drop(Box::from_raw(slots as *mut [u64])) };
    }

    #[test]
    fn report_display_includes_cache_and_partition_counters() {
        let report = ReplayReport {
            iterations: 4,
            replayed: 3,
            cache_hits: 3,
            cache_misses: 1,
            cache_evictions: 2,
            pinned_iterations: 0,
            giveups: 1,
            partitions: 2,
            routed_releases: 30,
            partition_cut_edges: 5,
            ..ReplayReport::default()
        };
        let s = report.to_string();
        assert!(s.contains("hits=3"), "{s}");
        assert!(s.contains("misses=1"), "{s}");
        assert!(s.contains("evictions=2"), "{s}");
        assert!(s.contains("pinned=0"), "{s}");
        assert!(s.contains("giveups=1"), "{s}");
        assert!(s.contains("partitions=2"), "{s}");
        assert!(s.contains("routed=30"), "{s}");
        report.assert_classification();
    }

    #[test]
    #[should_panic(expected = "hits + misses + pinned == iterations")]
    fn classification_violations_are_caught() {
        let report = ReplayReport {
            iterations: 4,
            cache_hits: 1,
            ..ReplayReport::default()
        };
        report.assert_classification();
    }

    #[test]
    fn cache_evictions_are_counted() {
        // Period-3 phase cycle with a 2-entry cache: the third shape
        // always evicts, so the cycle can never fully stabilize and the
        // eviction counter grows.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .with_replay_cache_size(2)
                .with_replay_giveup_after(0),
        );
        let slots = Box::leak(vec![0u64; 3].into_boxed_slice());
        let base = SendPtr::new(slots.as_mut_ptr());
        let iter = Arc::new(AtomicU64::new(0));
        let report = rt.run_iterative(9, move |ctx| {
            let i = iter.fetch_add(1, Ordering::Relaxed) as usize;
            let p = unsafe { base.add(i % 3) };
            ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                *p.get() += 1;
            });
        });
        for s in slots.iter() {
            assert_eq!(*s, 3);
        }
        assert!(report.cache_evictions > 0, "{report:?}");
        assert_eq!(report.pinned_iterations, 0, "give-up disabled");
        check_invariants(&report);
        unsafe { drop(Box::from_raw(slots as *mut [u64])) };
    }

    #[test]
    fn fault_during_replay_cancels_successors_and_rerecords() {
        // Iterations 0 records, 1 replays, 2 replays but node 4 panics:
        // the fed successors 5..9 must be cancelled through the frozen
        // graph's countdown protocol, the graph evicted from the cache,
        // and iteration 3 re-records from a clean dependency-system run.
        // The armed (but never-firing) plan installs the panic hook that
        // keeps planted-panic backtraces out of the test output.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .with_fault_plan(nanotask_core::FaultPlan::never()),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let iter = Arc::new(AtomicU64::new(0));
        let (report, outcome) = rt.run_iterative_outcome(5, move |ctx| {
            let it = iter.fetch_add(1, Ordering::Relaxed);
            for k in 0..10u64 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| {
                    if it == 2 && k == 4 {
                        std::panic::panic_any(format!(
                            "{}: planted",
                            nanotask_core::FAULT_PANIC_PREFIX
                        ));
                    }
                    unsafe { *p.get() += 1 };
                });
            }
        });
        // 10 + 10 + 4 (nodes 0..3 of the faulted iteration) + 10 + 10.
        assert_eq!(unsafe { *data }, 44);
        assert_eq!(outcome.failures.len(), 1, "{}", outcome.summary());
        assert_eq!(outcome.tasks_cancelled, 5, "successors 5..9 skipped");
        assert!(outcome.completed);
        assert_eq!(report.faulted, 1, "{report}");
        assert_eq!(report.rerecords, 2, "faulted graph re-recorded: {report}");
        assert_eq!(report.replayed, 3, "{report}");
        assert_eq!(rt.live_tasks(), 0, "no leaked tasks");
        let s = rt.stats();
        assert_eq!(s.tasks_created, s.tasks_freed);
        check_invariants(&report);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn fault_during_record_falls_back_and_recovers() {
        // The panic fires while iteration 0 records through the full
        // dependency system: POISON cancels the chain's tail, the tainted
        // recording is invalidated, and iteration 1 records again.
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(2)
                .with_fault_plan(nanotask_core::FaultPlan::never()),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let iter = Arc::new(AtomicU64::new(0));
        let (report, outcome) = rt.run_iterative_outcome(4, move |ctx| {
            let it = iter.fetch_add(1, Ordering::Relaxed);
            for k in 0..8u64 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| {
                    if it == 0 && k == 3 {
                        std::panic::panic_any(format!(
                            "{}: planted",
                            nanotask_core::FAULT_PANIC_PREFIX
                        ));
                    }
                    unsafe { *p.get() += 1 };
                });
            }
        });
        // 3 (faulted record) + 8 + 8 + 8.
        assert_eq!(unsafe { *data }, 27);
        assert_eq!(outcome.failures.len(), 1, "{}", outcome.summary());
        assert_eq!(outcome.tasks_cancelled, 4, "chain tail 4..7 skipped");
        assert_eq!(report.faulted, 1, "{report}");
        assert_eq!(report.rerecords, 2, "{report}");
        assert_eq!(report.replayed, 2, "{report}");
        assert_eq!(rt.live_tasks(), 0);
        check_invariants(&report);
        // A later infallible run on the same runtime is clean.
        let report = rt.run_iterative(2, move |ctx| {
            ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| unsafe {
                *p.get() += 1;
            });
        });
        assert_eq!(report.iterations, 2);
        assert_eq!(unsafe { *data }, 29);
        unsafe { drop(Box::from_raw(data)) };
    }

    #[test]
    fn partitioned_replay_fault_routes_cancellation() {
        // The poison transfer must also cover the node-targeted release
        // paths (routed batches and the inline fast-path keep).
        let rt = Runtime::new(
            RuntimeConfig::optimized()
                .workers(4)
                .with_numa_nodes(2)
                .with_replay_partitioning(true)
                .fast_path(true)
                .with_fault_plan(nanotask_core::FaultPlan::never()),
        );
        let data = Box::leak(Box::new(0u64)) as *mut u64;
        let p = SendPtr::new(data);
        let iter = Arc::new(AtomicU64::new(0));
        let (report, outcome) = rt.run_iterative_outcome(4, move |ctx| {
            let it = iter.fetch_add(1, Ordering::Relaxed);
            for k in 0..12u64 {
                ctx.spawn(Deps::new().readwrite_addr(p.addr()), move |_| {
                    if it == 2 && k == 6 {
                        std::panic::panic_any(format!(
                            "{}: planted",
                            nanotask_core::FAULT_PANIC_PREFIX
                        ));
                    }
                    unsafe { *p.get() += 1 };
                });
            }
        });
        // 12 + 12 + 6 (faulted replay prefix) + 12.
        assert_eq!(unsafe { *data }, 42);
        assert_eq!(outcome.failures.len(), 1, "{}", outcome.summary());
        assert_eq!(outcome.tasks_cancelled, 5);
        assert_eq!(report.faulted, 1);
        assert_eq!(rt.live_tasks(), 0);
        check_invariants(&report);
        unsafe { drop(Box::from_raw(data)) };
    }
}
