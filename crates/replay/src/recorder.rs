//! The [`GraphRecorder`]: a [`SpawnCapture`] that turns root spawns into
//! captured graph nodes.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use nanotask_core::{AccessDecl, AccessMode, Deps, SpawnCapture, TaskBody, TaskCtx, TaskId};

use crate::graph::ReplayGraph;

/// The access declarations of one captured spawn: owned (a live spawn
/// observed by the recorder or the divergence side-capture), or
/// referenced by CSR index into a frozen graph's declaration arena (a
/// prefix reconstructed by [`ReplayGraph::prefix_captured`]) — the
/// frozen arena is the single copy, nothing re-clones it.
pub enum CapturedDecls {
    /// Declarations owned by this capture.
    Owned(Vec<AccessDecl>),
    /// Declarations of node `node` in `graph`'s frozen decl arena.
    Frozen {
        /// The graph whose arena holds the declarations.
        graph: Arc<ReplayGraph>,
        /// CSR node index.
        node: u32,
    },
}

impl CapturedDecls {
    /// The declarations as a slice, wherever they live.
    #[inline]
    pub fn as_slice(&self) -> &[AccessDecl] {
        match self {
            Self::Owned(v) => v,
            Self::Frozen { graph, node } => graph.decls_of(*node as usize),
        }
    }
}

impl From<Vec<AccessDecl>> for CapturedDecls {
    fn from(v: Vec<AccessDecl>) -> Self {
        Self::Owned(v)
    }
}

/// One captured root spawn, in creation order.
pub struct CapturedSpawn {
    /// Task label (traces / graph dumps).
    pub label: &'static str,
    /// OmpSs-2 `priority` clause value.
    pub priority: i32,
    /// The declared access set, exactly as the user built it (owned or
    /// referenced from a frozen graph's arena).
    pub decls: CapturedDecls,
    /// The task body — present only in [`CaptureMode::Consume`].
    pub body: Option<TaskBody>,
    /// The runtime task id — present only in [`CaptureMode::Record`]
    /// (filled by the `on_spawned` callback), used to correlate captured
    /// nodes with tapped dependency-graph edges.
    pub id: Option<TaskId>,
}

impl CapturedSpawn {
    /// A metadata-only capture (no body, no id) owning its declarations
    /// — the shape every test fixture and divergence side-capture uses.
    pub fn bare(label: &'static str, priority: i32, decls: Vec<AccessDecl>) -> Self {
        Self {
            label,
            priority,
            decls: decls.into(),
            body: None,
            id: None,
        }
    }
}

/// What the recorder does with offered spawns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    /// Note metadata, hand the parts back: the spawn proceeds through
    /// the full dependency system (the instrumented record iteration).
    Record,
    /// Keep body and access set, consume the spawn (the caller will
    /// schedule the bodies by other means).
    Consume,
}

/// Captures the root task's spawns while active. Install with
/// [`nanotask_core::Runtime::set_spawn_capture`] (directly, or via the
/// replay engine which embeds one); drive with [`GraphRecorder::begin`]
/// / [`GraphRecorder::take`].
#[derive(Default)]
pub struct GraphRecorder {
    active: AtomicBool,
    mode: AtomicU8, // 0 = Record, 1 = Consume
    buf: Mutex<Vec<CapturedSpawn>>,
    /// Length of the last taken capture: [`GraphRecorder::begin`]
    /// pre-reserves it so a million-spawn record pays one allocation
    /// instead of a doubling-growth series (`take` hands the buffer —
    /// and its capacity — to the caller).
    last_len: AtomicUsize,
}

/// FNV-1a over a byte stream.
fn fnv(mut h: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a offset basis — the seed of both [`spawn_sig_hash`] and the
/// iteration-level structural hash.
pub const STRUCTURAL_HASH_SEED: u64 = 0xcbf29ce484222325;

/// Signature hash of one spawn: label, priority and access set. The
/// replay engine matches incoming spawns against recorded nodes with
/// this (cheap, allocation-free) hash.
///
/// This is the original byte-at-a-time FNV-1a, kept verbatim as the
/// reference path (`RuntimeConfig::replay_compat`); the steady-state hot
/// loop pays this per spawn per iteration, so the default engine uses
/// the word-folded [`spawn_sig_hash_fast`] instead (~8× fewer multiplies
/// on the same inputs). The two produce different *values* but identical
/// matching behavior — equal spawn metadata ⇒ equal hash, per function.
pub fn spawn_sig_hash(label: &str, priority: i32, decls: &[AccessDecl]) -> u64 {
    let mut h = fnv(STRUCTURAL_HASH_SEED, label.bytes());
    h = fnv(h, (priority as u64).to_le_bytes());
    h = fnv(h, (decls.len() as u64).to_le_bytes());
    for d in decls {
        h = fnv(h, (d.addr as u64).to_le_bytes());
        h = fnv(h, (d.len as u64).to_le_bytes());
        h = fnv(h, mode_tag(d.mode).to_le_bytes());
    }
    h
}

/// One multiply-rotate mixing step of the word-folded hash.
#[inline]
fn mix(h: u64, w: u64) -> u64 {
    (h.rotate_left(26) ^ w).wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Word-folded signature hash: same inputs as [`spawn_sig_hash`], mixed
/// 8 bytes at a time (one multiply per word instead of one per byte).
/// The per-spawn divergence check is the replay engine's hottest
/// steady-state instruction stream — this folds a ~100 ns/FNV hash down
/// to ~15 ns. Hash *values* differ from the byte FNV; matching behavior
/// (equal metadata ⇒ equal hash) is identical, and a run only ever
/// compares hashes produced by the same function
/// ([`SigHashMode`] is fixed per engine run).
pub fn spawn_sig_hash_fast(label: &str, priority: i32, decls: &[AccessDecl]) -> u64 {
    let b = label.as_bytes();
    let mut h = STRUCTURAL_HASH_SEED;
    for chunk in b.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(w));
    }
    h = mix(h, b.len() as u64);
    h = mix(h, priority as u64);
    h = mix(h, decls.len() as u64);
    for d in decls {
        h = mix(h, d.addr as u64);
        h = mix(h, d.len as u64);
        h = mix(h, mode_tag(d.mode));
    }
    h
}

/// Which signature/structural hash function an engine run uses. Fixed
/// for the lifetime of one `run_iterative` call: recorded node sigs,
/// fed-spawn sigs, probe hashes and cache keys must all come from the
/// same function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigHashMode {
    /// Word-folded ([`spawn_sig_hash_fast`]) — the default hot loop.
    Folded,
    /// Byte-at-a-time FNV-1a ([`spawn_sig_hash`]) — the retained
    /// reference path (`RuntimeConfig::replay_compat`).
    ByteFnv,
}

impl SigHashMode {
    /// The mode for an engine with the given compat setting.
    pub fn for_compat(compat: bool) -> Self {
        if compat { Self::ByteFnv } else { Self::Folded }
    }

    /// Signature hash of one spawn under this mode.
    #[inline]
    pub fn sig(self, label: &str, priority: i32, decls: &[AccessDecl]) -> u64 {
        match self {
            Self::Folded => spawn_sig_hash_fast(label, priority, decls),
            Self::ByteFnv => spawn_sig_hash(label, priority, decls),
        }
    }

    /// Fold one spawn signature into a running structural hash under
    /// this mode.
    #[inline]
    pub fn chain(self, h: u64, sig: u64) -> u64 {
        match self {
            Self::Folded => mix(h, sig),
            Self::ByteFnv => chain_structural_hash(h, sig),
        }
    }

    /// Structural hash of a captured spawn sequence under this mode.
    pub fn structural_hash(self, captured: &[CapturedSpawn]) -> u64 {
        let mut h = STRUCTURAL_HASH_SEED;
        for c in captured {
            h = self.chain(h, self.sig(c.label, c.priority, c.decls.as_slice()));
        }
        h
    }
}

/// Fold one spawn's [`spawn_sig_hash`] into a running structural hash.
/// Chaining every spawn of an iteration from [`STRUCTURAL_HASH_SEED`]
/// yields [`GraphRecorder::structural_hash`] — this incremental form is
/// what the replay engine's pinned-mode probe computes without buffering
/// anything.
pub fn chain_structural_hash(h: u64, sig: u64) -> u64 {
    fnv(h, sig.to_le_bytes())
}

impl GraphRecorder {
    /// A new, inactive recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start capturing in `mode` (clears any previous capture).
    pub fn begin(&self, mode: CaptureMode) {
        {
            let mut buf = self.buf.lock().unwrap();
            buf.clear();
            let hint = self.last_len.load(Ordering::Relaxed);
            if buf.capacity() < hint {
                // `buf` was just cleared: reserve the full hint.
                buf.reserve_exact(hint);
            }
        }
        self.mode.store(
            if mode == CaptureMode::Consume { 1 } else { 0 },
            Ordering::Relaxed,
        );
        self.active.store(true, Ordering::Release);
    }

    /// Stop capturing.
    pub fn stop(&self) {
        self.active.store(false, Ordering::Release);
    }

    /// Stop capturing and take the captured spawns.
    pub fn take(&self) -> Vec<CapturedSpawn> {
        self.stop();
        let taken = std::mem::take(&mut *self.buf.lock().unwrap());
        self.last_len.store(taken.len(), Ordering::Relaxed);
        taken
    }

    /// Structural hash of a captured spawn sequence (the per-spawn
    /// [`spawn_sig_hash`]es chained in creation order) under the
    /// byte-FNV reference mode — delegates to
    /// [`SigHashMode::structural_hash`]; the engine hashes through its
    /// run's own [`SigHashMode`] instead. Two iterations with equal
    /// hashes spawn the same graph shape over the same addresses — the
    /// replay engine's divergence check.
    pub fn structural_hash(captured: &[CapturedSpawn]) -> u64 {
        SigHashMode::ByteFnv.structural_hash(captured)
    }
}

/// Stable discriminant for hashing an access mode.
fn mode_tag(m: AccessMode) -> u64 {
    match m {
        AccessMode::Read => 1,
        AccessMode::Write => 2,
        AccessMode::ReadWrite => 3,
        AccessMode::Reduction(op) => 100 + op as u64,
    }
}

impl SpawnCapture for GraphRecorder {
    fn active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    fn on_spawn(
        &self,
        _ctx: &TaskCtx,
        label: &'static str,
        priority: i32,
        deps: Deps,
        body: TaskBody,
    ) -> Option<(Deps, TaskBody)> {
        let consume = self.mode.load(Ordering::Relaxed) == 1;
        let mut buf = self.buf.lock().unwrap();
        if consume {
            buf.push(CapturedSpawn {
                label,
                priority,
                decls: deps.into_decls().into(),
                body: Some(body),
                id: None,
            });
            None
        } else {
            buf.push(CapturedSpawn {
                label,
                priority,
                decls: deps.decls().to_vec().into(),
                body: None,
                id: None,
            });
            Some((deps, body))
        }
    }

    fn on_spawned(&self, id: TaskId) {
        if let Some(last) = self.buf.lock().unwrap().last_mut() {
            last.id = Some(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(label: &'static str, prio: i32, decls: Vec<AccessDecl>) -> CapturedSpawn {
        CapturedSpawn::bare(label, prio, decls)
    }

    #[test]
    fn hash_sensitive_to_structure() {
        let a = vec![cap(
            "t",
            0,
            vec![AccessDecl::new(0x10, 8, AccessMode::Read)],
        )];
        let b = vec![cap(
            "t",
            0,
            vec![AccessDecl::new(0x10, 8, AccessMode::Write)],
        )];
        let c = vec![cap(
            "t",
            1,
            vec![AccessDecl::new(0x10, 8, AccessMode::Read)],
        )];
        let d = vec![cap(
            "u",
            0,
            vec![AccessDecl::new(0x10, 8, AccessMode::Read)],
        )];
        let ha = GraphRecorder::structural_hash(&a);
        assert_ne!(ha, GraphRecorder::structural_hash(&b), "mode");
        assert_ne!(ha, GraphRecorder::structural_hash(&c), "priority");
        assert_ne!(ha, GraphRecorder::structural_hash(&d), "label");
        assert_eq!(ha, GraphRecorder::structural_hash(&a), "stable");
    }

    #[test]
    fn incremental_hash_matches_structural_hash() {
        let seq = vec![
            cap("a", 0, vec![AccessDecl::new(0x10, 8, AccessMode::Read)]),
            cap("b", 2, vec![AccessDecl::new(0x20, 8, AccessMode::Write)]),
            cap("c", 0, vec![]),
        ];
        let mut h = STRUCTURAL_HASH_SEED;
        for c in &seq {
            h = chain_structural_hash(h, spawn_sig_hash(c.label, c.priority, c.decls.as_slice()));
        }
        assert_eq!(h, GraphRecorder::structural_hash(&seq));
        assert_eq!(STRUCTURAL_HASH_SEED, GraphRecorder::structural_hash(&[]));
    }

    #[test]
    fn sig_hash_distinguishes_access_sets() {
        let a = [AccessDecl::new(0x10, 8, AccessMode::Read)];
        let b = [
            AccessDecl::new(0x10, 8, AccessMode::Read),
            AccessDecl::new(0x20, 8, AccessMode::Write),
        ];
        assert_ne!(spawn_sig_hash("t", 0, &a), spawn_sig_hash("t", 0, &b));
        assert_eq!(spawn_sig_hash("t", 0, &a), spawn_sig_hash("t", 0, &a));
    }
}
