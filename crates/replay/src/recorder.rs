//! The [`GraphRecorder`]: a [`SpawnCapture`] that turns root spawns into
//! captured graph nodes.

use std::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

use nanotask_core::{AccessDecl, AccessMode, Deps, SpawnCapture, TaskBody, TaskCtx, TaskId};

/// One captured root spawn, in creation order.
pub struct CapturedSpawn {
    /// Task label (traces / graph dumps).
    pub label: &'static str,
    /// OmpSs-2 `priority` clause value.
    pub priority: i32,
    /// The declared access set, exactly as the user built it.
    pub decls: Vec<AccessDecl>,
    /// The task body — present only in [`CaptureMode::Consume`].
    pub body: Option<TaskBody>,
    /// The runtime task id — present only in [`CaptureMode::Record`]
    /// (filled by the `on_spawned` callback), used to correlate captured
    /// nodes with tapped dependency-graph edges.
    pub id: Option<TaskId>,
}

/// What the recorder does with offered spawns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    /// Note metadata, hand the parts back: the spawn proceeds through
    /// the full dependency system (the instrumented record iteration).
    Record,
    /// Keep body and access set, consume the spawn (the caller will
    /// schedule the bodies by other means).
    Consume,
}

/// Captures the root task's spawns while active. Install with
/// [`nanotask_core::Runtime::set_spawn_capture`] (directly, or via the
/// replay engine which embeds one); drive with [`GraphRecorder::begin`]
/// / [`GraphRecorder::take`].
#[derive(Default)]
pub struct GraphRecorder {
    active: AtomicBool,
    mode: AtomicU8, // 0 = Record, 1 = Consume
    buf: Mutex<Vec<CapturedSpawn>>,
}

/// FNV-1a over a byte stream.
fn fnv(mut h: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a offset basis — the seed of both [`spawn_sig_hash`] and the
/// iteration-level structural hash.
pub const STRUCTURAL_HASH_SEED: u64 = 0xcbf29ce484222325;

/// Signature hash of one spawn: label, priority and access set. The
/// replay engine matches incoming spawns against recorded nodes with
/// this (cheap, allocation-free) hash.
pub fn spawn_sig_hash(label: &str, priority: i32, decls: &[AccessDecl]) -> u64 {
    let mut h = fnv(STRUCTURAL_HASH_SEED, label.bytes());
    h = fnv(h, (priority as u64).to_le_bytes());
    h = fnv(h, (decls.len() as u64).to_le_bytes());
    for d in decls {
        h = fnv(h, (d.addr as u64).to_le_bytes());
        h = fnv(h, (d.len as u64).to_le_bytes());
        h = fnv(h, mode_tag(d.mode).to_le_bytes());
    }
    h
}

/// Fold one spawn's [`spawn_sig_hash`] into a running structural hash.
/// Chaining every spawn of an iteration from [`STRUCTURAL_HASH_SEED`]
/// yields [`GraphRecorder::structural_hash`] — this incremental form is
/// what the replay engine's pinned-mode probe computes without buffering
/// anything.
pub fn chain_structural_hash(h: u64, sig: u64) -> u64 {
    fnv(h, sig.to_le_bytes())
}

impl GraphRecorder {
    /// A new, inactive recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start capturing in `mode` (clears any previous capture).
    pub fn begin(&self, mode: CaptureMode) {
        self.buf.lock().unwrap().clear();
        self.mode.store(
            if mode == CaptureMode::Consume { 1 } else { 0 },
            Ordering::Relaxed,
        );
        self.active.store(true, Ordering::Release);
    }

    /// Stop capturing.
    pub fn stop(&self) {
        self.active.store(false, Ordering::Release);
    }

    /// Stop capturing and take the captured spawns.
    pub fn take(&self) -> Vec<CapturedSpawn> {
        self.stop();
        std::mem::take(&mut *self.buf.lock().unwrap())
    }

    /// Structural hash of a captured spawn sequence (the per-spawn
    /// [`spawn_sig_hash`]es chained in creation order). Two iterations
    /// with equal hashes spawn the same graph shape over the same
    /// addresses — the replay engine's divergence check.
    pub fn structural_hash(captured: &[CapturedSpawn]) -> u64 {
        let mut h = STRUCTURAL_HASH_SEED;
        for c in captured {
            h = chain_structural_hash(h, spawn_sig_hash(c.label, c.priority, &c.decls));
        }
        h
    }
}

/// Stable discriminant for hashing an access mode.
fn mode_tag(m: AccessMode) -> u64 {
    match m {
        AccessMode::Read => 1,
        AccessMode::Write => 2,
        AccessMode::ReadWrite => 3,
        AccessMode::Reduction(op) => 100 + op as u64,
    }
}

impl SpawnCapture for GraphRecorder {
    fn active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    fn on_spawn(
        &self,
        _ctx: &TaskCtx,
        label: &'static str,
        priority: i32,
        deps: Deps,
        body: TaskBody,
    ) -> Option<(Deps, TaskBody)> {
        let consume = self.mode.load(Ordering::Relaxed) == 1;
        let mut buf = self.buf.lock().unwrap();
        if consume {
            buf.push(CapturedSpawn {
                label,
                priority,
                decls: deps.into_decls(),
                body: Some(body),
                id: None,
            });
            None
        } else {
            buf.push(CapturedSpawn {
                label,
                priority,
                decls: deps.decls().to_vec(),
                body: None,
                id: None,
            });
            Some((deps, body))
        }
    }

    fn on_spawned(&self, id: TaskId) {
        if let Some(last) = self.buf.lock().unwrap().last_mut() {
            last.id = Some(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(label: &'static str, prio: i32, decls: Vec<AccessDecl>) -> CapturedSpawn {
        CapturedSpawn {
            label,
            priority: prio,
            decls,
            body: None,
            id: None,
        }
    }

    #[test]
    fn hash_sensitive_to_structure() {
        let a = vec![cap(
            "t",
            0,
            vec![AccessDecl::new(0x10, 8, AccessMode::Read)],
        )];
        let b = vec![cap(
            "t",
            0,
            vec![AccessDecl::new(0x10, 8, AccessMode::Write)],
        )];
        let c = vec![cap(
            "t",
            1,
            vec![AccessDecl::new(0x10, 8, AccessMode::Read)],
        )];
        let d = vec![cap(
            "u",
            0,
            vec![AccessDecl::new(0x10, 8, AccessMode::Read)],
        )];
        let ha = GraphRecorder::structural_hash(&a);
        assert_ne!(ha, GraphRecorder::structural_hash(&b), "mode");
        assert_ne!(ha, GraphRecorder::structural_hash(&c), "priority");
        assert_ne!(ha, GraphRecorder::structural_hash(&d), "label");
        assert_eq!(ha, GraphRecorder::structural_hash(&a), "stable");
    }

    #[test]
    fn incremental_hash_matches_structural_hash() {
        let seq = vec![
            cap("a", 0, vec![AccessDecl::new(0x10, 8, AccessMode::Read)]),
            cap("b", 2, vec![AccessDecl::new(0x20, 8, AccessMode::Write)]),
            cap("c", 0, vec![]),
        ];
        let mut h = STRUCTURAL_HASH_SEED;
        for c in &seq {
            h = chain_structural_hash(h, spawn_sig_hash(c.label, c.priority, &c.decls));
        }
        assert_eq!(h, GraphRecorder::structural_hash(&seq));
        assert_eq!(STRUCTURAL_HASH_SEED, GraphRecorder::structural_hash(&[]));
    }

    #[test]
    fn sig_hash_distinguishes_access_sets() {
        let a = [AccessDecl::new(0x10, 8, AccessMode::Read)];
        let b = [
            AccessDecl::new(0x10, 8, AccessMode::Read),
            AccessDecl::new(0x20, 8, AccessMode::Write),
        ];
        assert_ne!(spawn_sig_hash("t", 0, &a), spawn_sig_hash("t", 0, &b));
        assert_eq!(spawn_sig_hash("t", 0, &a), spawn_sig_hash("t", 0, &a));
    }
}
