//! The [`GraphCache`]: an LRU of frozen [`ReplayGraph`]s keyed by
//! structural hash, plus the one-step phase predictor the engine uses to
//! pick the graph an alternating body will spawn *next*.
//!
//! The single-graph engine of PR 1 re-recorded on every structural
//! divergence, so a body alternating between two shapes (miniAMR-style
//! refine/coarsen phases) re-recorded every iteration and never
//! replayed. The cache gives divergence hysteresis: a diverging
//! iteration first probes for an already-frozen graph that matches
//! (by the first spawn's signature hash mid-switch, or by the full
//! structural hash after the fact) and only re-records on a miss. Each
//! entry also remembers the structural hash of the iteration that
//! *followed* it last time — for any stable phase cycle that fits in the
//! cache, predicting `next_of(current)` converges to full replay of
//! every phase.

use std::sync::Arc;

use crate::graph::ReplayGraph;
use crate::partition::Partitioning;

/// One cached frozen graph.
struct Entry {
    graph: Arc<ReplayGraph>,
    /// LRU stamp (monotonic use tick).
    last_used: u64,
    /// Iterations fully replayed from this graph.
    replays: u64,
    /// Structural hash of the iteration observed right after one of this
    /// graph's iterations — the phase predictor.
    next: Option<u64>,
    /// NUMA partitioning of the graph, computed once at first use and
    /// cached with the entry (freeze-time analysis, reused by every
    /// replay of the graph), keyed by the *requested* part count so a
    /// changed request recomputes regardless of how
    /// [`Partitioning::compute`] clamps internally.
    part: Option<(usize, Arc<Partitioning>)>,
}

/// A bounded LRU of frozen replay graphs, keyed by structural hash.
pub struct GraphCache {
    cap: usize,
    tick: u64,
    entries: Vec<Entry>,
    evictions: u64,
    /// Partitionings that survived their entry's eviction, FIFO-bounded:
    /// `(structural hash, requested part count, assignment)`. A graph
    /// re-entering the cache seeds its partitioning from here
    /// ([`Partitioning::compute_seeded`]) instead of recomputing from
    /// scratch, so worker caches stay warm across evictions.
    evicted_parts: Vec<(u64, usize, Arc<Partitioning>)>,
    /// Partitionings seeded from an evicted assignment.
    part_seeds: u64,
    /// Nodes adopted from seeds / total nodes of seeded computations.
    part_seed_reused: u64,
    part_seed_total: u64,
    /// Accumulated partitioner operation counters across every
    /// computation this cache performed (cached entries recompute once,
    /// so these measure exactly the first-replay partitioning cost).
    part_frontier_rescans: u64,
    part_heap_ops: u64,
}

impl GraphCache {
    /// Evicted assignments kept per cache slot (the stash is
    /// `cap * EVICTED_PART_KEEP` entries, oldest dropped first).
    const EVICTED_PART_KEEP: usize = 2;

    /// An empty cache holding at most `cap` graphs (min 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            tick: 0,
            entries: Vec::new(),
            evictions: 0,
            evicted_parts: Vec::new(),
            part_seeds: 0,
            part_seed_reused: 0,
            part_seed_total: 0,
            part_frontier_rescans: 0,
            part_heap_ops: 0,
        }
    }

    /// Maximum number of graphs kept.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Graphs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Graphs evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.entries[idx].last_used = self.tick;
    }

    fn position(&self, hash: u64) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.graph.structural_hash() == hash)
    }

    /// Whether a graph with this structural hash is cached.
    pub fn contains(&self, hash: u64) -> bool {
        self.position(hash).is_some()
    }

    /// Look up a graph by structural hash (refreshes its LRU position).
    pub fn get(&mut self, hash: u64) -> Option<Arc<ReplayGraph>> {
        let idx = self.position(hash)?;
        self.touch(idx);
        Some(Arc::clone(&self.entries[idx].graph))
    }

    /// Look up a graph whose *first spawn* has signature hash `sig`,
    /// preferring the most recently used on ties (refreshes LRU). This
    /// is the mid-iteration phase-switch probe: when the first spawn of
    /// an iteration does not match the current graph, a cached graph
    /// starting with that spawn can be fed instead — before anything was
    /// committed to the wrong graph.
    pub fn get_by_first_sig(&mut self, sig: u64) -> Option<Arc<ReplayGraph>> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.graph.first_sig() == Some(sig))
            .max_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)?;
        self.touch(idx);
        Some(Arc::clone(&self.entries[idx].graph))
    }

    /// Insert a frozen graph, evicting the least recently used entry if
    /// the cache is full. Re-inserting an already-cached hash just
    /// refreshes it (replay counts survive).
    pub fn insert(&mut self, graph: Arc<ReplayGraph>) {
        if let Some(idx) = self.position(graph.structural_hash()) {
            self.entries[idx].graph = graph;
            self.touch(idx);
            return;
        }
        if self.entries.len() >= self.cap {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache is non-empty when full");
            let victim = self.entries.swap_remove(lru);
            // Eviction survival: stash the victim's partitioning so a
            // re-entering graph seeds from it instead of recomputing.
            if let Some((parts, p)) = victim.part {
                let hash = victim.graph.structural_hash();
                self.evicted_parts
                    .retain(|&(h, n, _)| (h, n) != (hash, parts));
                if self.evicted_parts.len() >= self.cap * Self::EVICTED_PART_KEEP {
                    self.evicted_parts.remove(0);
                }
                self.evicted_parts.push((hash, parts, p));
            }
            self.evictions += 1;
        }
        self.tick += 1;
        self.entries.push(Entry {
            graph,
            last_used: self.tick,
            replays: 0,
            next: None,
            part: None,
        });
    }

    /// The NUMA partitioning of `graph` into `parts` parts: returned from
    /// the entry cache when already computed (with a matching part
    /// count), computed and cached otherwise. Graphs not in the cache
    /// (e.g. nested-pinned shapes) are partitioned without caching.
    ///
    /// A fresh computation first checks the eviction stash: a graph that
    /// re-enters after being evicted seeds from its saved assignment
    /// ([`Partitioning::compute_seeded`], 100 % reuse on an unchanged
    /// graph). `naive` selects the retained full-rescan reference
    /// partitioner instead (`RuntimeConfig::replay_compat` — which, like
    /// the pre-heap engine, also recomputes from scratch on re-entry).
    /// Operation counters of every computation accumulate on the cache
    /// ([`GraphCache::partition_stats`]).
    pub fn partitioning(
        &mut self,
        graph: &Arc<ReplayGraph>,
        parts: usize,
        naive: bool,
    ) -> Arc<Partitioning> {
        let hash = graph.structural_hash();
        if let Some(idx) = self.position(hash)
            && let Some((requested, p)) = &self.entries[idx].part
            && *requested == parts
        {
            return Arc::clone(p);
        }
        let p = Arc::new(if naive {
            Partitioning::compute_naive(graph, parts)
        } else if let Some(pos) = self
            .evicted_parts
            .iter()
            .position(|&(h, n, _)| (h, n) == (hash, parts))
        {
            let (_, _, seed) = self.evicted_parts.remove(pos);
            Partitioning::compute_seeded(graph, parts, &seed)
        } else {
            Partitioning::compute(graph, parts)
        });
        let st = p.stats();
        self.part_frontier_rescans += st.frontier_rescans;
        self.part_heap_ops += st.heap_ops;
        if st.seeded {
            self.part_seeds += 1;
            self.part_seed_reused += st.seed_reused as u64;
            self.part_seed_total += graph.len() as u64;
        }
        if let Some(idx) = self.position(hash) {
            self.entries[idx].part = Some((parts, Arc::clone(&p)));
        }
        p
    }

    /// Accumulated partitioner counters: `(frontier_rescans, heap_ops,
    /// seeds, seed_reused_nodes, seed_total_nodes)` across every
    /// partitioning this cache computed.
    pub fn partition_stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.part_frontier_rescans,
            self.part_heap_ops,
            self.part_seeds,
            self.part_seed_reused,
            self.part_seed_total,
        )
    }

    /// Drop the graph with this structural hash (no eviction-stash
    /// entry — an invalidated graph must not seed anything). The engine
    /// calls this when an iteration of the graph faulted: a cancellation
    /// wave ran a subset of the recorded bodies, so the frozen schedule
    /// is no longer trusted and the next occurrence of the shape
    /// re-records from the dependency system. Dangling predictor edges
    /// pointing at the removed graph are harmless —
    /// [`GraphCache::predict_next`] resolves through `get`, which misses.
    pub fn invalidate(&mut self, hash: u64) {
        if let Some(idx) = self.position(hash) {
            self.entries.swap_remove(idx);
        }
    }

    /// Count one fully-replayed iteration against the graph with this
    /// structural hash.
    pub fn note_replay(&mut self, hash: u64) {
        if let Some(idx) = self.position(hash) {
            self.entries[idx].replays += 1;
            self.touch(idx);
        }
    }

    /// Teach the predictor that an iteration with hash `next` followed
    /// one with hash `prev` (no-op if `prev` is not cached — predictor
    /// state lives and dies with the cache entries, so it stays bounded).
    pub fn note_transition(&mut self, prev: u64, next: u64) {
        if let Some(idx) = self.position(prev) {
            self.entries[idx].next = Some(next);
        }
    }

    /// The graph predicted to follow an iteration with hash `hash`, if
    /// both the transition and the successor graph are cached.
    pub fn predict_next(&mut self, hash: u64) -> Option<Arc<ReplayGraph>> {
        let next = self.position(hash).and_then(|i| self.entries[i].next)?;
        self.get(next)
    }

    /// Per-graph replay counts for the currently cached graphs:
    /// `(structural_hash, tasks, replays)`, most recently used first.
    pub fn per_graph_replays(&self) -> Vec<(u64, usize, u64)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .map(|e| {
                (
                    e.last_used,
                    e.graph.structural_hash(),
                    e.graph.len(),
                    e.replays,
                )
            })
            .collect();
        v.sort_unstable_by_key(|&(used, ..)| core::cmp::Reverse(used));
        v.into_iter().map(|(_, h, n, r)| (h, n, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::CapturedSpawn;
    use nanotask_core::{AccessDecl, AccessMode};

    fn graph(addr: usize) -> Arc<ReplayGraph> {
        let captured = vec![CapturedSpawn::bare(
            "t",
            0,
            vec![AccessDecl::new(addr, 8, AccessMode::ReadWrite)],
        )];
        Arc::new(ReplayGraph::build(&captured, &[]))
    }

    /// A two-independent-task graph (so a 2-way split is possible).
    fn graph2(a: usize, b: usize) -> Arc<ReplayGraph> {
        let captured = vec![
            CapturedSpawn::bare("a", 0, vec![AccessDecl::new(a, 8, AccessMode::ReadWrite)]),
            CapturedSpawn::bare("b", 0, vec![AccessDecl::new(b, 8, AccessMode::ReadWrite)]),
        ];
        Arc::new(ReplayGraph::build(&captured, &[]))
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = GraphCache::new(2);
        let g = graph(0x10);
        let h = g.structural_hash();
        c.insert(Arc::clone(&g));
        assert!(c.contains(h));
        assert_eq!(c.get(h).unwrap().structural_hash(), h);
        assert!(c.get(h ^ 1).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = GraphCache::new(2);
        let (a, b, d) = (graph(0x10), graph(0x20), graph(0x30));
        let (ha, hb, hd) = (
            a.structural_hash(),
            b.structural_hash(),
            d.structural_hash(),
        );
        c.insert(a);
        c.insert(b);
        // Touch `a` so `b` becomes the LRU victim.
        assert!(c.get(ha).is_some());
        c.insert(d);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.contains(ha) && c.contains(hd) && !c.contains(hb));
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut c = GraphCache::new(1);
        let g = graph(0x10);
        let h = g.structural_hash();
        c.insert(Arc::clone(&g));
        c.note_replay(h);
        c.insert(g);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.per_graph_replays(), vec![(h, 1, 1)]);
    }

    #[test]
    fn first_sig_lookup_prefers_most_recent() {
        let mut c = GraphCache::new(4);
        let (a, b) = (graph(0x10), graph(0x20));
        let sig_a = a.first_sig().unwrap();
        c.insert(Arc::clone(&a));
        c.insert(b);
        assert_eq!(
            c.get_by_first_sig(sig_a).unwrap().structural_hash(),
            a.structural_hash()
        );
        assert!(c.get_by_first_sig(sig_a ^ 1).is_none());
    }

    #[test]
    fn partitioning_computed_once_and_cached() {
        let mut c = GraphCache::new(2);
        let g = graph2(0x10, 0x20);
        c.insert(Arc::clone(&g));
        let p1 = c.partitioning(&g, 2, false);
        let p2 = c.partitioning(&g, 2, false);
        assert!(Arc::ptr_eq(&p1, &p2), "second call served from the entry");
        // A different part count recomputes.
        let p3 = c.partitioning(&g, 1, false);
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(p3.parts(), 1);
        // Uncached graphs still get a (fresh) partitioning.
        let foreign = graph(0x999);
        let pf = c.partitioning(&foreign, 2, false);
        assert_eq!(pf.assignments().len(), 1);
    }

    #[test]
    fn evicted_partitioning_seeds_reentry() {
        // Cache of 1: inserting a second graph evicts the first along
        // with its partitioning; when the first graph re-enters, its
        // partitioning must be seeded from the stash (full reuse), not
        // recomputed from scratch.
        let mut c = GraphCache::new(1);
        let g = graph2(0x10, 0x20);
        c.insert(Arc::clone(&g));
        let original = c.partitioning(&g, 2, false);
        c.insert(graph2(0x30, 0x40));
        assert_eq!(c.evictions(), 1);
        c.insert(Arc::clone(&g));
        let reseeded = c.partitioning(&g, 2, false);
        assert_eq!(*reseeded, *original, "identical placement after eviction");
        assert!(reseeded.stats().seeded);
        assert_eq!(reseeded.stats().seed_reused, 2);
        let (_, _, seeds, reused, total) = c.partition_stats();
        assert_eq!(seeds, 1);
        assert_eq!((reused, total), (2, 2), "100% of the assignment reused");
    }

    #[test]
    fn naive_partitioning_skips_seeding() {
        // The compat (pre-heap) reference recomputes from scratch on
        // re-entry — no seeding, and the rescan counter grows instead of
        // the heap counter.
        let mut c = GraphCache::new(1);
        let g = graph2(0x10, 0x20);
        c.insert(Arc::clone(&g));
        let _ = c.partitioning(&g, 2, true);
        c.insert(graph2(0x30, 0x40));
        c.insert(Arc::clone(&g));
        let p = c.partitioning(&g, 2, true);
        assert!(!p.stats().seeded);
        let (rescans, heap_ops, seeds, ..) = c.partition_stats();
        assert!(rescans > 0);
        assert_eq!(heap_ops, 0);
        assert_eq!(seeds, 0);
    }

    #[test]
    fn invalidate_drops_entry_and_dangling_predictions() {
        let mut c = GraphCache::new(4);
        let (a, b) = (graph(0x10), graph(0x20));
        let (ha, hb) = (a.structural_hash(), b.structural_hash());
        c.insert(a);
        c.insert(b);
        c.note_transition(ha, hb);
        c.invalidate(hb);
        assert!(!c.contains(hb));
        assert!(c.contains(ha));
        assert_eq!(c.evictions(), 0, "invalidation is not an eviction");
        assert!(
            c.predict_next(ha).is_none(),
            "dangling prediction resolves to a miss"
        );
        // Invalidating a missing hash is a no-op.
        c.invalidate(hb);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn predictor_follows_cached_transitions() {
        let mut c = GraphCache::new(4);
        let (a, b) = (graph(0x10), graph(0x20));
        let (ha, hb) = (a.structural_hash(), b.structural_hash());
        c.insert(a);
        c.insert(b);
        c.note_transition(ha, hb);
        c.note_transition(hb, ha);
        assert_eq!(c.predict_next(ha).unwrap().structural_hash(), hb);
        assert_eq!(c.predict_next(hb).unwrap().structural_hash(), ha);
        // Unknown transition or evicted successor: no prediction.
        assert!(c.predict_next(hb ^ 1).is_none());
    }
}
