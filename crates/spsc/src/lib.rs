//! Bounded wait-free single-producer single-consumer queue.
//!
//! §3.1 of *Advanced Synchronization Techniques for Task-based Runtime
//! Systems* (PPoPP '21) decouples *adding* ready tasks from *scheduling*
//! them: a task that becomes ready is pushed into a bounded wait-free SPSC
//! queue (the paper uses `boost::lockfree::spsc_queue`) and only moved
//! into the real scheduler when a worker enters it. This crate is that
//! queue: a classic Lamport ring buffer with cache-padded head/tail
//! indices and cached remote indices (the "fast-forward" optimisation) so
//! the producer and consumer touch each other's cache lines only when the
//! queue is near-full or near-empty.
//!
//! Both `push` and `pop` are a bounded number of instructions with no
//! retries — wait-free, which is what keeps the *producer* (the task
//! creator, the scarce resource in §3) insulated from consumer-side
//! contention.

use core::cell::{Cell, UnsafeCell};
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads to a cache line (kept local to avoid a cross-crate dependency for
/// one type; same layout rationale as `nanotask_locks::CachePadded`).
#[repr(align(128))]
struct Pad<T>(T);

/// Shared state of the ring buffer.
struct Ring<T> {
    /// Next slot to write. Owned by the producer, read by the consumer.
    head: Pad<AtomicUsize>,
    /// Next slot to read. Owned by the consumer, read by the producer.
    tail: Pad<AtomicUsize>,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
}

unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// Producer endpoint of the queue. `!Sync`: exactly one thread may push.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Cached copy of the consumer's tail, refreshed only when the queue
    /// looks full; avoids loading the remote line on every push.
    cached_tail: Cell<usize>,
}

/// Consumer endpoint of the queue. `!Sync`: exactly one thread may pop.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Cached copy of the producer's head, refreshed only when the queue
    /// looks empty.
    cached_head: Cell<usize>,
}

unsafe impl<T: Send> Send for Producer<T> {}
unsafe impl<T: Send> Send for Consumer<T> {}

/// Create a bounded SPSC queue with room for `capacity` elements.
///
/// ```
/// let (p, mut c) = nanotask_spsc::channel::<u32>(8);
/// assert!(p.push(1).is_ok());
/// assert!(p.push(2).is_ok());
/// assert_eq!(c.pop(), Some(1));
/// assert_eq!(c.pop(), Some(2));
/// assert_eq!(c.pop(), None);
/// ```
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "capacity must be positive");
    // One slot is sacrificed to distinguish full from empty.
    let cap = capacity + 1;
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let ring = Arc::new(Ring {
        head: Pad(AtomicUsize::new(0)),
        tail: Pad(AtomicUsize::new(0)),
        buf,
        cap,
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            cached_tail: Cell::new(0),
        },
        Consumer {
            ring,
            cached_head: Cell::new(0),
        },
    )
}

#[inline]
fn next(i: usize, cap: usize) -> usize {
    let n = i + 1;
    if n == cap { 0 } else { n }
}

impl<T> Producer<T> {
    /// Push an element; returns it back if the queue is full.
    ///
    /// Wait-free: one load, one store, at most one remote refresh.
    #[inline]
    pub fn push(&self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        let nxt = next(head, ring.cap);
        if nxt == self.cached_tail.get() {
            // Looks full — refresh the remote tail once.
            self.cached_tail.set(ring.tail.0.load(Ordering::Acquire));
            if nxt == self.cached_tail.get() {
                return Err(value);
            }
        }
        // SAFETY: slot `head` is outside the consumer's visible window
        // (tail..head), and we are the only producer.
        unsafe { (*ring.buf[head].get()).write(value) };
        ring.head.0.store(nxt, Ordering::Release);
        Ok(())
    }

    /// Number of free slots (approximate from the producer side).
    #[inline]
    pub fn free(&self) -> usize {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        let tail = ring.tail.0.load(Ordering::Acquire);
        ring.cap - 1 - (head + ring.cap - tail) % ring.cap
    }

    /// Capacity the queue was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ring.cap - 1
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest element, or `None` if the queue is empty.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let tail = ring.tail.0.load(Ordering::Relaxed);
        if tail == self.cached_head.get() {
            // Looks empty — refresh the remote head once.
            self.cached_head.set(ring.head.0.load(Ordering::Acquire));
            if tail == self.cached_head.get() {
                return None;
            }
        }
        // SAFETY: head > tail so the producer has published this slot; we
        // are the only consumer.
        let value = unsafe { (*ring.buf[tail].get()).assume_init_read() };
        ring.tail.0.store(next(tail, ring.cap), Ordering::Release);
        Some(value)
    }

    /// Drain every currently-visible element into `f`, returning the count.
    ///
    /// This is the `consume_all` of Listing 5: the scheduler-owning worker
    /// moves every buffered ready task into the real scheduler in one call.
    #[inline]
    pub fn consume_all(&mut self, mut f: impl FnMut(T)) -> usize {
        let mut n = 0;
        // Snapshot the head once: elements pushed after the call started
        // are picked up by the next drain, keeping the call bounded.
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Acquire);
        self.cached_head.set(head);
        let mut tail = ring.tail.0.load(Ordering::Relaxed);
        while tail != head {
            let value = unsafe { (*ring.buf[tail].get()).assume_init_read() };
            tail = next(tail, ring.cap);
            ring.tail.0.store(tail, Ordering::Release);
            f(value);
            n += 1;
        }
        n
    }

    /// True if no element is currently visible to the consumer.
    #[inline]
    pub fn is_empty(&self) -> bool {
        let ring = &*self.ring;
        ring.tail.0.load(Ordering::Relaxed) == ring.head.0.load(Ordering::Acquire)
    }

    /// Number of elements currently visible (approximate).
    #[inline]
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        let tail = ring.tail.0.load(Ordering::Relaxed);
        let head = ring.head.0.load(Ordering::Acquire);
        (head + ring.cap - tail) % ring.cap
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drop any elements still in the queue.
        let mut tail = *self.tail.0.get_mut();
        let head = *self.head.0.get_mut();
        while tail != head {
            unsafe { (*self.buf[tail].get()).assume_init_drop() };
            tail = next(tail, self.cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (p, mut c) = channel::<u32>(4);
        for i in 0..4 {
            p.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_rejects_and_returns_value() {
        let (p, mut c) = channel::<String>(2);
        p.push("a".into()).unwrap();
        p.push("b".into()).unwrap();
        assert_eq!(p.push("c".into()), Err("c".to_string()));
        assert_eq!(c.pop().as_deref(), Some("a"));
        // Space freed: push succeeds again.
        p.push("c".into()).unwrap();
    }

    #[test]
    fn capacity_exact() {
        let (p, _c) = channel::<u8>(7);
        assert_eq!(p.capacity(), 7);
        for _ in 0..7 {
            p.push(0).unwrap();
        }
        assert!(p.push(0).is_err());
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn consume_all_drains_snapshot() {
        let (p, mut c) = channel::<u32>(16);
        for i in 0..10 {
            p.push(i).unwrap();
        }
        let mut out = Vec::new();
        let n = c.consume_all(|v| out.push(v));
        assert_eq!(n, 10);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(c.is_empty());
    }

    #[test]
    fn len_tracks_contents() {
        let (p, mut c) = channel::<u32>(8);
        assert_eq!(c.len(), 0);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(c.len(), 2);
        c.pop();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn wraparound_many_rounds() {
        let (p, mut c) = channel::<usize>(3);
        for round in 0..1000 {
            p.push(round).unwrap();
            assert_eq!(c.pop(), Some(round));
        }
    }

    #[test]
    fn drop_releases_queued_elements() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (p, _c) = channel::<D>(8);
            assert!(p.push(D).is_ok());
            assert!(p.push(D).is_ok());
            assert!(p.push(D).is_ok());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn cross_thread_transfer_preserves_sequence() {
        const COUNT: usize = 100_000;
        let (p, mut c) = channel::<usize>(64);
        let producer = std::thread::spawn(move || {
            for i in 0..COUNT {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < COUNT {
            match c.pop() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn cross_thread_consume_all_batches() {
        const COUNT: usize = 50_000;
        let (p, mut c) = channel::<usize>(128);
        let producer = std::thread::spawn(move || {
            for i in 0..COUNT {
                let mut v = i;
                while let Err(back) = p.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut received = Vec::with_capacity(COUNT);
        while received.len() < COUNT {
            let got = c.consume_all(|v| received.push(v));
            if got == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(received, (0..COUNT).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod prop_tests {
    //! Model-based testing: the queue must behave exactly like a bounded
    //! `VecDeque` under any single-threaded sequence of operations, and
    //! preserve the exact element sequence under concurrent use.

    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Push(u32),
        Pop,
        ConsumeAll,
        Len,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u32>().prop_map(Op::Push),
            3 => Just(Op::Pop),
            1 => Just(Op::ConsumeAll),
            1 => Just(Op::Len),
        ]
    }

    proptest! {
        #[test]
        fn behaves_like_bounded_vecdeque(
            cap in 1usize..32,
            ops in proptest::collection::vec(op(), 1..200),
        ) {
            let (p, mut c) = channel::<u32>(cap);
            let mut model: VecDeque<u32> = VecDeque::new();
            for o in ops {
                match o {
                    Op::Push(v) => {
                        let real = p.push(v);
                        if model.len() < cap {
                            model.push_back(v);
                            prop_assert!(real.is_ok());
                        } else {
                            prop_assert_eq!(real, Err(v));
                        }
                    }
                    Op::Pop => {
                        prop_assert_eq!(c.pop(), model.pop_front());
                    }
                    Op::ConsumeAll => {
                        let mut got = Vec::new();
                        c.consume_all(|v| got.push(v));
                        let want: Vec<u32> = model.drain(..).collect();
                        prop_assert_eq!(got, want);
                    }
                    Op::Len => {
                        prop_assert_eq!(c.len(), model.len());
                        prop_assert_eq!(c.is_empty(), model.is_empty());
                        prop_assert_eq!(p.free(), cap - model.len());
                    }
                }
            }
        }

        #[test]
        fn concurrent_sequence_preserved(
            cap in 1usize..16,
            count in 1usize..2_000,
        ) {
            let (p, mut c) = channel::<usize>(cap);
            let producer = std::thread::spawn(move || {
                for i in 0..count {
                    let mut v = i;
                    while let Err(back) = p.push(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            });
            let mut next = 0usize;
            while next < count {
                match c.pop() {
                    Some(v) => {
                        prop_assert_eq!(v, next);
                        next += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            producer.join().unwrap();
            prop_assert_eq!(c.pop(), None);
        }
    }
}
