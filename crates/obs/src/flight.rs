//! In-run flight recorder: a bounded ring of recent registry snapshots.
//!
//! A post-run report collapses the whole execution into one total; the
//! flight recorder keeps the last N [`Snapshot`]s taken every `every`
//! ticks (a tick is whatever the caller makes it — the runtime ticks
//! once per executed task, the replay engine once per iteration), so an
//! anomaly like a divergence storm or a giveup spiral shows up as a
//! *delta between adjacent frames* and can be localized to a window.

use crate::registry::{Registry, Snapshot};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

/// One recorded frame: which tick triggered it, and the snapshot.
#[derive(Clone, Debug)]
pub struct FlightFrame {
    /// Tick count at capture time (1-based).
    pub tick: u64,
    /// Registry state at capture time.
    pub snapshot: Snapshot,
}

struct FlightInner {
    every: u64,
    capacity: usize,
    ticks: AtomicU64,
    ring: Mutex<VecDeque<FlightFrame>>,
}

/// Periodic snapshot ring. Cloning shares the ring. A recorder built
/// with `every == 0` is disabled: [`FlightRecorder::tick`] is one
/// branch and no snapshot is ever taken.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl FlightRecorder {
    /// Record a snapshot every `every` ticks, keeping the last
    /// `capacity` frames. `every == 0` disables recording.
    pub fn new(every: u64, capacity: usize) -> Self {
        Self {
            inner: Arc::new(FlightInner {
                every,
                capacity: capacity.max(1),
                ticks: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// A recorder that never records.
    pub fn disabled() -> Self {
        Self::new(0, 1)
    }

    /// Whether ticks can ever produce frames.
    pub fn enabled(&self) -> bool {
        self.inner.every != 0
    }

    /// Count one tick; snapshots `registry` into the ring when the tick
    /// count crosses the interval.
    pub fn tick(&self, registry: &Registry) {
        if self.inner.every == 0 {
            return;
        }
        let t = self.inner.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if !t.is_multiple_of(self.inner.every) {
            return;
        }
        let frame = FlightFrame {
            tick: t,
            snapshot: registry.snapshot(),
        };
        let mut ring = self.inner.ring.lock();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(frame);
    }

    /// Total ticks counted so far.
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// The recorded frames, oldest first.
    pub fn frames(&self) -> Vec<FlightFrame> {
        self.inner.ring.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_every_interval_and_bounds_ring() {
        let reg = Registry::new(1);
        let c = reg.counter("nanotask_iters_total");
        let fr = FlightRecorder::new(2, 3);
        assert!(fr.enabled());
        for i in 0..10 {
            c.add(0, 1);
            fr.tick(&reg);
            let _ = i;
        }
        assert_eq!(fr.ticks(), 10);
        let frames = fr.frames();
        // Ticks 2,4,6,8,10 fired; capacity 3 keeps the last three.
        assert_eq!(frames.len(), 3);
        assert_eq!(
            frames.iter().map(|f| f.tick).collect::<Vec<_>>(),
            vec![6, 8, 10]
        );
        // Frames capture monotone counter progress: deltas localize
        // anomalies to a tick window.
        let values: Vec<u64> = frames
            .iter()
            .map(|f| f.snapshot.counter("nanotask_iters_total").unwrap())
            .collect();
        assert_eq!(values, vec![6, 8, 10]);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let reg = Registry::new(1);
        let fr = FlightRecorder::disabled();
        assert!(!fr.enabled());
        for _ in 0..5 {
            fr.tick(&reg);
        }
        assert!(fr.frames().is_empty());
        assert_eq!(fr.ticks(), 0);
    }
}
