//! Runtime observatory: live, uniformly-named, exportable telemetry.
//!
//! The paper's §5 instrumentation backend writes trace events into
//! **per-core lock-free buffers** so recording is a plain store on
//! thread-private memory. This crate applies the same discipline to
//! *metrics*: every counter, gauge and histogram is a [`registry`] entry
//! backed by one cache-padded cell per worker shard, incremented with a
//! plain load+store by its owning worker and only aggregated when a
//! [`registry::Snapshot`] is taken. That turns the runtime's ad-hoc
//! report structs (`RunReport`, `SchedOpStats`, `ReplayReport`,
//! `node_stats`) into *views over one registry* that exists while the
//! run is still going, which is what the exporters need:
//!
//! * [`registry`] — sharded [`registry::Counter`] / [`registry::Gauge`] /
//!   [`registry::MaxGauge`] cells plus log-bucketed fixed-64-bucket
//!   pow-2 [`registry::Histogram`]s (HDR-style: bucket `i` holds values
//!   whose bit-length is `i`, so relative error is bounded by 2× at any
//!   magnitude) for task execution time, ready-queue wait, release-batch
//!   size and replay feed time.
//! * [`perfetto`] — converts a CTF-lite `Trace` into a Chrome/Perfetto
//!   `trace.json` (one track per core, complete spans from task and
//!   replay-iteration events, instants for cache hits and giveups).
//!   Open it at `https://ui.perfetto.dev` or `chrome://tracing`.
//! * [`prometheus`] — text-exposition dump of a snapshot (`nanotask_*`
//!   metric names, scheduler/dep-system/node labels) plus a line-by-line
//!   validator used by tests and the `fig17_observatory` harness.
//! * [`flight`] — an in-run flight recorder: a ring of the last N
//!   registry snapshots taken every `every` ticks, so replay-health
//!   anomalies (divergence storms, giveup spirals, routing-ratio
//!   collapse) can be localized to an iteration window instead of one
//!   end-of-run total.

pub mod flight;
pub mod perfetto;
pub mod prometheus;
pub mod registry;

pub use flight::{FlightFrame, FlightRecorder};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MaxGauge, MetricValue, Registry, SnapEntry,
    Snapshot,
};
