//! Chrome/Perfetto `trace.json` export of a CTF-lite [`Trace`].
//!
//! Emits the Trace Event Format (the JSON flavour both `chrome://tracing`
//! and `https://ui.perfetto.dev` open directly): one track (`tid`) per
//! core, complete `"X"` spans reconstructed from `TaskStart`/`TaskEnd`
//! and `ReplayIterBegin`/`ReplayIterEnd` (plus the record-phase
//! `ReplayRecordBegin`/`End`), and instant `"i"` events for replay cache
//! hits and giveups. Timestamps are microseconds with nanosecond
//! fractions, relative to the tracer epoch.
//!
//! Span matching is per-core and tolerant: an `End` without a matching
//! `Begin` is dropped, an unclosed `Begin` never emits. Taskwait makes
//! task spans nest on one core (a task body can run other tasks inside
//! its taskwait), so `TaskEnd` closes the *innermost* start with the
//! same task id.

use nanotask_trace::{EventKind, Trace};

/// `ns` as a Trace-Event-Format microsecond timestamp string.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn new() -> Self {
        Self {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }

    fn meta_thread_name(&mut self, tid: u16, name: &str) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        ));
        push_escaped(&mut self.out, name);
        self.out.push_str("\"}}");
    }

    fn complete(&mut self, tid: u16, name: &str, cat: &str, start_ns: u64, end_ns: u64, id: u64) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\"cat\":\"{cat}\",\"name\":\"",
            ts_us(start_ns),
            ts_us(end_ns.saturating_sub(start_ns)),
        ));
        push_escaped(&mut self.out, name);
        self.out.push_str(&format!("\",\"args\":{{\"id\":{id}}}}}"));
    }

    fn instant(&mut self, tid: u16, name: &str, cat: &str, ns: u64, payload: u64) {
        self.sep();
        self.out.push_str(&format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"cat\":\"{cat}\",\"name\":\"",
            ts_us(ns),
        ));
        push_escaped(&mut self.out, name);
        self.out
            .push_str(&format!("\",\"args\":{{\"payload\":{payload}}}}}"));
    }

    fn finish(mut self) -> String {
        self.out.push_str("]}");
        self.out
    }
}

/// Convert a trace into a Chrome/Perfetto Trace-Event-Format JSON string.
pub fn trace_json(trace: &Trace) -> String {
    let mut w = EventWriter::new();
    let ncores = (trace.ncores() as usize).max(
        trace
            .events()
            .iter()
            .map(|e| e.core as usize + 1)
            .max()
            .unwrap_or(0),
    );
    for core in 0..ncores {
        w.meta_thread_name(core as u16, &format!("core {core}"));
    }

    // Per-core open-span stacks: (task id, start ns).
    let mut tasks: Vec<Vec<(u64, u64)>> = vec![Vec::new(); ncores];
    let mut replay: Vec<Vec<(EventKind, u64, u64)>> = vec![Vec::new(); ncores];
    for e in trace.events() {
        let core = e.core as usize;
        if core >= ncores {
            continue;
        }
        match e.kind {
            EventKind::TaskStart => tasks[core].push((e.payload, e.ns)),
            EventKind::TaskEnd => {
                // Innermost start with this id (taskwait nests spans).
                if let Some(i) = tasks[core].iter().rposition(|&(id, _)| id == e.payload) {
                    let (id, start) = tasks[core].remove(i);
                    w.complete(e.core, &format!("task {id}"), "task", start, e.ns, id);
                }
            }
            EventKind::ReplayIterBegin | EventKind::ReplayRecordBegin => {
                replay[core].push((e.kind, e.payload, e.ns));
            }
            EventKind::ReplayIterEnd | EventKind::ReplayRecordEnd => {
                let open = match e.kind {
                    EventKind::ReplayIterEnd => EventKind::ReplayIterBegin,
                    _ => EventKind::ReplayRecordBegin,
                };
                if let Some(i) = replay[core].iter().rposition(|&(k, _, _)| k == open) {
                    let (_, payload, start) = replay[core].remove(i);
                    let (name, cat) = if open == EventKind::ReplayIterBegin {
                        (format!("replay iter {payload}"), "replay")
                    } else {
                        (format!("record iter {payload}"), "replay")
                    };
                    w.complete(e.core, &name, cat, start, e.ns, payload);
                }
            }
            EventKind::ReplayCacheHit => {
                w.instant(e.core, "replay cache hit", "replay", e.ns, e.payload);
            }
            EventKind::ReplayGiveUp => {
                w.instant(e.core, "replay giveup", "replay", e.ns, e.payload);
            }
            _ => {}
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanotask_trace::Event;

    fn ev(ns: u64, payload: u64, core: u16, kind: EventKind) -> Event {
        Event {
            ns,
            payload,
            core,
            kind,
        }
    }

    #[test]
    fn exports_spans_and_instants() {
        let t = Trace::from_events(
            2,
            vec![
                ev(1000, 7, 0, EventKind::TaskStart),
                ev(3500, 7, 0, EventKind::TaskEnd),
                ev(2000, 9, 1, EventKind::TaskStart),
                ev(2600, 9, 1, EventKind::TaskEnd),
                ev(100, 0, 0, EventKind::ReplayIterBegin),
                ev(5000, 0, 0, EventKind::ReplayIterEnd),
                ev(4000, 3, 1, EventKind::ReplayCacheHit),
                ev(4100, 4, 1, EventKind::ReplayGiveUp),
            ],
        );
        let json = trace_json(&t);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"task 7\""));
        assert!(json.contains("\"ts\":1.000,\"dur\":2.500"));
        assert!(json.contains("\"name\":\"replay iter 0\""));
        assert!(json.contains("\"name\":\"replay cache hit\""));
        assert!(json.contains("\"name\":\"replay giveup\""));
        // Two task spans, one replay span.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
    }

    #[test]
    fn nested_same_core_tasks_close_innermost_first() {
        // Outer task 1 runs task 2 inside its taskwait on the same core.
        let t = Trace::from_events(
            1,
            vec![
                ev(10, 1, 0, EventKind::TaskStart),
                ev(20, 2, 0, EventKind::TaskStart),
                ev(30, 2, 0, EventKind::TaskEnd),
                ev(40, 1, 0, EventKind::TaskEnd),
            ],
        );
        let json = trace_json(&t);
        assert!(json.contains("\"ts\":0.020,\"dur\":0.010")); // task 2
        assert!(json.contains("\"ts\":0.010,\"dur\":0.030")); // task 1
    }

    #[test]
    fn unmatched_events_are_dropped_not_panicked() {
        let t = Trace::from_events(
            1,
            vec![
                ev(10, 1, 0, EventKind::TaskEnd),   // end without start
                ev(20, 2, 0, EventKind::TaskStart), // start without end
                ev(30, 0, 0, EventKind::ReplayIterEnd),
            ],
        );
        let json = trace_json(&t);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 0);
    }

    #[test]
    fn empty_trace_is_valid_container() {
        let json = trace_json(&Trace::from_events(0, vec![]));
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
    }
}
