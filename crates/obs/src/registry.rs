//! Sharded metrics registry.
//!
//! Same write discipline as the §5 tracer: each metric owns one
//! cache-padded cell *per worker shard*, and the owning worker updates
//! its shard with a plain load + store (`Relaxed`, no RMW — the
//! compiled form of a non-atomic increment, kept well-defined for the
//! aggregating reader). Cross-shard aggregation happens only in
//! [`Registry::snapshot`], so the hot path never shares a cache line
//! between writers.
//!
//! Single-writer contract: shard `i` must only be written by the thread
//! acting as worker `i`. Violating it loses increments (two writers can
//! overlap their load/store pairs) but is never undefined behaviour and
//! never corrupts other shards.

use nanotask_locks::CachePadded;
use parking_lot::Mutex;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed histogram resolution: one bucket per bit-length (pow-2 bounds).
pub const HIST_BUCKETS: usize = 64;

/// Metric labels: static keys, owned values.
pub type Labels = Vec<(&'static str, String)>;

fn shard_index(shard: usize, len: usize) -> usize {
    if shard < len { shard } else { len - 1 }
}

struct CounterCells {
    cells: Box<[CachePadded<AtomicU64>]>,
}

impl CounterCells {
    fn new(shards: usize) -> Self {
        Self {
            cells: (0..shards)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    #[inline]
    fn add(&self, shard: usize, n: u64) {
        let c = &*self.cells[shard_index(shard, self.cells.len())];
        // Plain increment: single-writer per shard, aggregated on read.
        c.store(c.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.cells
            .iter()
            .fold(0u64, |acc, c| acc.wrapping_add(c.load(Ordering::Relaxed)))
    }

    fn max(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

/// Monotone event counter. `add` is a plain store on the caller's shard.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<CounterCells>,
}

impl Counter {
    /// Add `n` to this worker's shard.
    #[inline]
    pub fn add(&self, shard: usize, n: u64) {
        self.cells.add(shard, n);
    }

    /// Add 1 to this worker's shard.
    #[inline]
    pub fn inc(&self, shard: usize) {
        self.cells.add(shard, 1);
    }

    /// Aggregated value across all shards.
    pub fn value(&self) -> u64 {
        self.cells.sum()
    }
}

/// Up/down gauge. Increments and decrements may land on different
/// shards (a task created on worker 0 can be freed on worker 3); the
/// aggregate is the wrapping sum, which is exact as long as the true
/// value is non-negative.
#[derive(Clone)]
pub struct Gauge {
    cells: Arc<CounterCells>,
}

impl Gauge {
    /// Increment on this worker's shard.
    #[inline]
    pub fn inc(&self, shard: usize) {
        self.cells.add(shard, 1);
    }

    /// Decrement on this worker's shard.
    #[inline]
    pub fn dec(&self, shard: usize) {
        self.cells.add(shard, u64::MAX); // wrapping -1
    }

    /// Set the aggregate to an absolute value by writing the wrapping
    /// delta onto shard 0. For low-frequency publish paths (e.g. copying
    /// allocator stats into a scrape) — not safe against concurrent
    /// `set` calls, and concurrent `inc`/`dec` traffic will move the
    /// aggregate off `v` as usual.
    pub fn set(&self, v: u64) {
        self.cells.add(0, v.wrapping_sub(self.value()));
    }

    /// Aggregated value (wrapping sum of all shards).
    pub fn value(&self) -> u64 {
        self.cells.sum()
    }
}

/// High-water-mark gauge: each shard keeps its own maximum, the
/// aggregate is the max over shards.
#[derive(Clone)]
pub struct MaxGauge {
    cells: Arc<CounterCells>,
}

impl MaxGauge {
    /// Raise this worker's shard to at least `v`.
    #[inline]
    pub fn record(&self, shard: usize, v: u64) {
        let c = &*self.cells.cells[shard_index(shard, self.cells.cells.len())];
        if v > c.load(Ordering::Relaxed) {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Maximum across all shards.
    pub fn value(&self) -> u64 {
        self.cells.max()
    }
}

struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        Self {
            buckets: core::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

struct HistCells {
    shards: Box<[CachePadded<HistShard>]>,
}

/// Which bucket a value falls into: its bit-length (0 for 0), capped at
/// 63. Bucket `i` (i ≥ 1) therefore holds values in `[2^(i-1), 2^i)`,
/// bounding relative error by 2× at any magnitude — the fixed-size,
/// allocation-free core of an HDR histogram.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Log-bucketed latency/size histogram (64 pow-2 buckets per shard,
/// plus per-shard count and sum for exact means).
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    /// Record one observation on this worker's shard.
    #[inline]
    pub fn record(&self, shard: usize, v: u64) {
        let s = &*self.cells.shards[shard_index(shard, self.cells.shards.len())];
        let b = &s.buckets[bucket_of(v)];
        b.store(b.load(Ordering::Relaxed).wrapping_add(1), Ordering::Relaxed);
        s.count.store(
            s.count.load(Ordering::Relaxed).wrapping_add(1),
            Ordering::Relaxed,
        );
        s.sum.store(
            s.sum.load(Ordering::Relaxed).wrapping_add(v),
            Ordering::Relaxed,
        );
    }

    /// Aggregate all shards into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for s in self.cells.shards.iter() {
            for (i, b) in s.buckets.iter().enumerate() {
                out.buckets[i] = out.buckets[i].wrapping_add(b.load(Ordering::Relaxed));
            }
            out.count = out.count.wrapping_add(s.count.load(Ordering::Relaxed));
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
        }
        out
    }
}

/// Aggregated histogram state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= HIST_BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `q · count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return Self::upper_bound(i);
            }
        }
        u64::MAX
    }
}

enum Cells {
    Counter(Arc<CounterCells>),
    Gauge(Arc<CounterCells>),
    Max(Arc<CounterCells>),
    Histogram(Arc<HistCells>),
}

struct Entry {
    name: &'static str,
    labels: Labels,
    cells: Cells,
}

struct RegistryInner {
    shards: usize,
    base_labels: Labels,
    metrics: Mutex<Vec<Entry>>,
}

/// Get-or-create metric registry. Cloning is cheap (shared `Arc`);
/// every handle it returns stays valid for the registry's lifetime.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Registry with `shards` per-worker cells per metric (min 1) and no
    /// base labels.
    pub fn new(shards: usize) -> Self {
        Self::with_base(shards, Vec::new())
    }

    /// Registry with base labels attached to every exported metric
    /// (e.g. `scheduler="Delegation", deps="WaitFree"`).
    pub fn with_base(shards: usize, base_labels: Labels) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                shards: shards.max(1),
                base_labels,
                metrics: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Number of writer shards per metric.
    pub fn shards(&self) -> usize {
        self.inner.shards
    }

    /// Base labels attached to every metric.
    pub fn base_labels(&self) -> &Labels {
        &self.inner.base_labels
    }

    fn lookup<T>(
        &self,
        name: &'static str,
        labels: Labels,
        matches: impl Fn(&Cells) -> Option<T>,
        create: impl FnOnce(usize) -> (Cells, T),
    ) -> T {
        let mut metrics = self.inner.metrics.lock();
        for e in metrics.iter() {
            if e.name == name && e.labels == labels {
                return matches(&e.cells).unwrap_or_else(|| {
                    panic!("metric {name:?} re-registered with a different type")
                });
            }
        }
        let (cells, handle) = create(self.inner.shards);
        metrics.push(Entry {
            name,
            labels,
            cells,
        });
        handle
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, Vec::new())
    }

    /// Get or create a labeled counter.
    pub fn counter_with(&self, name: &'static str, labels: Labels) -> Counter {
        self.lookup(
            name,
            labels,
            |c| match c {
                Cells::Counter(cells) => Some(Counter {
                    cells: Arc::clone(cells),
                }),
                _ => None,
            },
            |shards| {
                let cells = Arc::new(CounterCells::new(shards));
                (Cells::Counter(Arc::clone(&cells)), Counter { cells })
            },
        )
    }

    /// Get or create an unlabeled up/down gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.lookup(
            name,
            Vec::new(),
            |c| match c {
                Cells::Gauge(cells) => Some(Gauge {
                    cells: Arc::clone(cells),
                }),
                _ => None,
            },
            |shards| {
                let cells = Arc::new(CounterCells::new(shards));
                (Cells::Gauge(Arc::clone(&cells)), Gauge { cells })
            },
        )
    }

    /// Get or create an unlabeled high-water-mark gauge.
    pub fn max_gauge(&self, name: &'static str) -> MaxGauge {
        self.lookup(
            name,
            Vec::new(),
            |c| match c {
                Cells::Max(cells) => Some(MaxGauge {
                    cells: Arc::clone(cells),
                }),
                _ => None,
            },
            |shards| {
                let cells = Arc::new(CounterCells::new(shards));
                (Cells::Max(Arc::clone(&cells)), MaxGauge { cells })
            },
        )
    }

    /// Get or create an unlabeled histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.lookup(
            name,
            Vec::new(),
            |c| match c {
                Cells::Histogram(cells) => Some(Histogram {
                    cells: Arc::clone(cells),
                }),
                _ => None,
            },
            |shards| {
                let cells = Arc::new(HistCells {
                    shards: (0..shards)
                        .map(|_| CachePadded::new(HistShard::new()))
                        .collect(),
                });
                (Cells::Histogram(Arc::clone(&cells)), Histogram { cells })
            },
        )
    }

    /// Aggregate every metric into an owned, immutable snapshot, in
    /// registration order.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.metrics.lock();
        Snapshot {
            base_labels: self.inner.base_labels.clone(),
            entries: metrics
                .iter()
                .map(|e| SnapEntry {
                    name: e.name,
                    labels: e.labels.clone(),
                    value: match &e.cells {
                        Cells::Counter(c) => MetricValue::Counter(c.sum()),
                        Cells::Gauge(c) => MetricValue::Gauge(c.sum()),
                        Cells::Max(c) => MetricValue::Max(c.max()),
                        Cells::Histogram(h) => MetricValue::Histogram(Box::new(
                            Histogram {
                                cells: Arc::clone(h),
                            }
                            .snapshot(),
                        )),
                    },
                })
                .collect(),
        }
    }
}

/// Aggregated value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Up/down gauge value.
    Gauge(u64),
    /// High-water mark.
    Max(u64),
    /// Full histogram state (boxed: the 64-bucket array dwarfs the
    /// scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One metric in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct SnapEntry {
    /// Metric name (`nanotask_*`).
    pub name: &'static str,
    /// Per-metric labels (base labels live on the snapshot).
    pub labels: Labels,
    /// Aggregated value.
    pub value: MetricValue,
}

/// Point-in-time aggregation of a whole registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Labels shared by every entry.
    pub base_labels: Labels,
    /// All metrics, in registration order.
    pub entries: Vec<SnapEntry>,
}

impl Snapshot {
    fn find(&self, name: &str, labels: Option<&[(&str, &str)]>) -> Option<&SnapEntry> {
        self.entries.iter().find(|e| {
            e.name == name
                && labels.is_none_or(|want| {
                    e.labels.len() == want.len()
                        && want
                            .iter()
                            .all(|(k, v)| e.labels.iter().any(|(ek, ev)| ek == k && ev == v))
                })
        })
    }

    /// First counter named `name` (any labels).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name, None)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Counter named `name` with exactly the given labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, Some(labels))?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Gauge or max-gauge named `name`.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.find(name, None)?.value {
            MetricValue::Gauge(v) | MetricValue::Max(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram named `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.find(name, None)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_aggregate() {
        let reg = Registry::new(4);
        let c = reg.counter("nanotask_test_total");
        c.add(0, 10);
        c.add(1, 5);
        c.inc(3);
        assert_eq!(c.value(), 16);
        // Out-of-range shard clamps to the last cell instead of panicking.
        c.add(99, 1);
        assert_eq!(c.value(), 17);
    }

    #[test]
    fn get_or_create_returns_same_cells() {
        let reg = Registry::new(2);
        let a = reg.counter("nanotask_shared_total");
        let b = reg.counter("nanotask_shared_total");
        a.add(0, 3);
        b.add(1, 4);
        assert_eq!(a.value(), 7);
        assert_eq!(b.value(), 7);
        // Different labels are a different metric.
        let c = reg.counter_with("nanotask_shared_total", vec![("node", "0".into())]);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn gauge_cross_shard_inc_dec() {
        let reg = Registry::new(4);
        let g = reg.gauge("nanotask_live");
        g.inc(0);
        g.inc(0);
        g.inc(1);
        g.dec(3); // freed on a different worker than created
        assert_eq!(g.value(), 2);
    }

    #[test]
    fn gauge_set_is_absolute() {
        let reg = Registry::new(4);
        let g = reg.gauge("nanotask_alloc_slab_bytes");
        g.set(4096);
        assert_eq!(g.value(), 4096);
        g.set(1024); // downward across the shard sum still lands exactly
        assert_eq!(g.value(), 1024);
        g.inc(2);
        g.set(77);
        assert_eq!(g.value(), 77);
    }

    #[test]
    fn max_gauge_takes_max_over_shards() {
        let reg = Registry::new(3);
        let m = reg.max_gauge("nanotask_depth_max");
        m.record(0, 4);
        m.record(1, 9);
        m.record(1, 2); // lower value does not regress the shard
        m.record(2, 7);
        assert_eq!(m.value(), 9);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1 << 62), 63);
        assert_eq!(bucket_of(u64::MAX), 63);
        // Upper bounds mirror the bucket map: v ≤ upper_bound(bucket_of(v)).
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 40, u64::MAX] {
            assert!(v <= HistogramSnapshot::upper_bound(bucket_of(v)));
        }
    }

    #[test]
    fn histogram_counts_sum_quantiles() {
        let reg = Registry::new(2);
        let h = reg.histogram("nanotask_lat_ns");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(0, v);
        }
        h.record(1, 1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 2 + 3 + 100 + 1000 + 1_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        assert!((s.mean() - s.sum as f64 / 6.0).abs() < 1e-9);
        // Median lands in a small bucket, p100 covers the outlier.
        assert!(s.quantile(0.5) <= 127);
        assert!(s.quantile(1.0) >= 1_000_000);
        assert_eq!(HistogramSnapshot::default().quantile(0.9), 0);
    }

    #[test]
    fn snapshot_lookup_by_name_and_labels() {
        let reg = Registry::with_base(2, vec![("scheduler", "Delegation".into())]);
        reg.counter("nanotask_a_total").add(0, 5);
        reg.counter_with("nanotask_node_total", vec![("node", "0".into())])
            .add(0, 1);
        reg.counter_with("nanotask_node_total", vec![("node", "1".into())])
            .add(1, 2);
        reg.gauge("nanotask_g").inc(0);
        reg.histogram("nanotask_h").record(0, 42);
        let s = reg.snapshot();
        assert_eq!(s.base_labels.len(), 1);
        assert_eq!(s.counter("nanotask_a_total"), Some(5));
        assert_eq!(
            s.counter_with("nanotask_node_total", &[("node", "0")]),
            Some(1)
        );
        assert_eq!(
            s.counter_with("nanotask_node_total", &[("node", "1")]),
            Some(2)
        );
        assert_eq!(s.gauge("nanotask_g"), Some(1));
        assert_eq!(s.histogram("nanotask_h").unwrap().count, 1);
        assert_eq!(s.counter("nanotask_missing"), None);
    }

    #[test]
    fn concurrent_single_writer_shards_lose_nothing() {
        let reg = Registry::new(8);
        let c = reg.counter("nanotask_mt_total");
        let h = reg.histogram("nanotask_mt_ns");
        std::thread::scope(|sc| {
            for shard in 0..8 {
                let c = c.clone();
                let h = h.clone();
                sc.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc(shard);
                        h.record(shard, i);
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
        assert_eq!(h.snapshot().count, 80_000);
    }
}
