//! Prometheus text-exposition export of a registry [`Snapshot`].
//!
//! Renders the version-0.0.4 text format: a `# TYPE` comment per metric
//! family, then one sample per line. Base labels (scheduler /
//! dep-system) merge with per-metric labels (e.g. `node="1"`);
//! histograms expand into cumulative `_bucket{le="..."}` series plus
//! `_sum` and `_count`. [`validate`] is the consumer side: a
//! line-by-line parser used by tests and the `fig17_observatory`
//! harness to prove the dump is well-formed.

use crate::registry::{HistogramSnapshot, MetricValue, Snapshot};

fn push_label_escaped(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// `{base...,extra...}` rendered label set; empty string when no labels.
fn label_set(base: &[(&'static str, String)], extra: &[(&'static str, String)]) -> String {
    if base.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in base.iter().chain(extra.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        push_label_escaped(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Same as [`label_set`] but with one extra `le` label (histogram buckets).
fn label_set_le(
    base: &[(&'static str, String)],
    extra: &[(&'static str, String)],
    le: &str,
) -> String {
    let mut out = String::from("{");
    for (k, v) in base.iter().chain(extra.iter()) {
        out.push_str(k);
        out.push_str("=\"");
        push_label_escaped(&mut out, v);
        out.push_str("\",");
    }
    out.push_str("le=\"");
    out.push_str(le);
    out.push_str("\"}");
    out
}

type LabelRefs<'a> = (&'a [(&'static str, String)], &'a [(&'static str, String)]);

fn render_histogram(out: &mut String, name: &str, labels: LabelRefs<'_>, h: &HistogramSnapshot) {
    let (base, extra) = labels;
    let mut cum = 0u64;
    for (i, &b) in h.buckets.iter().enumerate() {
        cum += b;
        if b == 0 && i != h.buckets.len() - 1 {
            // Keep the dump compact: only non-empty buckets plus +Inf.
            continue;
        }
        let le = if i == h.buckets.len() - 1 {
            "+Inf".to_string()
        } else {
            format!("{}", HistogramSnapshot::upper_bound(i))
        };
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            label_set_le(base, extra, &le)
        ));
    }
    out.push_str(&format!("{name}_sum{} {}\n", label_set(base, extra), h.sum));
    out.push_str(&format!(
        "{name}_count{} {}\n",
        label_set(base, extra),
        h.count
    ));
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut typed: Vec<&str> = Vec::new();
    for e in &snap.entries {
        let (ty, is_hist) = match e.value {
            MetricValue::Counter(_) => ("counter", false),
            MetricValue::Gauge(_) | MetricValue::Max(_) => ("gauge", false),
            MetricValue::Histogram(_) => ("histogram", true),
        };
        if !typed.contains(&e.name) {
            out.push_str(&format!("# TYPE {} {ty}\n", e.name));
            typed.push(e.name);
        }
        match &e.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) | MetricValue::Max(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    e.name,
                    label_set(&snap.base_labels, &e.labels)
                ));
            }
            MetricValue::Histogram(h) => {
                debug_assert!(is_hist);
                render_histogram(&mut out, e.name, (&snap.base_labels, &e.labels), h);
            }
        }
    }
    out
}

/// Line-by-line validation of a text-exposition dump. Returns the number
/// of sample lines, or a description of the first malformed line.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| Err(format!("line {}: {what}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let name = match parts.next() {
                        Some(n) => n,
                        None => return err("TYPE without metric name"),
                    };
                    if !valid_name(name) {
                        return err("bad metric name in TYPE");
                    }
                    match parts.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        _ => return err("bad metric type"),
                    }
                }
                Some("HELP") => {}
                _ => return err("unknown comment"),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_labels, value) = match line.rsplit_once(' ') {
            Some(p) => p,
            None => return err("no value"),
        };
        if value.parse::<f64>().is_err() {
            return err("bad value");
        }
        let name = match name_labels.split_once('{') {
            Some((name, labels)) => {
                let labels = match labels.strip_suffix('}') {
                    Some(l) => l,
                    None => return err("unterminated label set"),
                };
                if !valid_labels(labels) {
                    return err("bad label set");
                }
                name
            }
            None => name_labels,
        };
        if !valid_name(name) {
            return err("bad metric name");
        }
        samples += 1;
    }
    Ok(samples)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `k="v",k="v"` with quote/backslash escapes inside values.
fn valid_labels(mut s: &str) -> bool {
    loop {
        let eq = match s.find('=') {
            Some(i) => i,
            None => return false,
        };
        let key = &s[..eq];
        if key.is_empty()
            || key.starts_with(|c: char| c.is_ascii_digit())
            || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return false;
        }
        s = &s[eq + 1..];
        if !s.starts_with('"') {
            return false;
        }
        s = &s[1..];
        // Scan to the closing unescaped quote.
        let mut close = None;
        let mut escaped = false;
        for (i, c) in s.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(i);
                break;
            }
        }
        let close = match close {
            Some(i) => i,
            None => return false,
        };
        s = &s[close + 1..];
        if s.is_empty() {
            return true;
        }
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::with_base(
            2,
            vec![
                ("scheduler", "Delegation".into()),
                ("deps", "WaitFree".into()),
            ],
        );
        reg.counter("nanotask_tasks_executed_total").add(0, 42);
        reg.counter_with("nanotask_node_home_tasks_total", vec![("node", "0".into())])
            .add(0, 7);
        reg.counter_with("nanotask_node_home_tasks_total", vec![("node", "1".into())])
            .add(1, 9);
        reg.gauge("nanotask_tasks_live").inc(0);
        let h = reg.histogram("nanotask_task_exec_ns");
        h.record(0, 100);
        h.record(1, 90_000);
        reg.snapshot()
    }

    #[test]
    fn renders_and_validates() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE nanotask_tasks_executed_total counter\n"));
        assert!(text.contains(
            "nanotask_tasks_executed_total{scheduler=\"Delegation\",deps=\"WaitFree\"} 42\n"
        ));
        assert!(text.contains("node=\"1\"} 9\n"));
        assert!(text.contains("nanotask_task_exec_ns_bucket"));
        assert!(text.contains("le=\"+Inf\"} 2\n"));
        assert!(text.contains("nanotask_task_exec_ns_sum"));
        let samples = validate(&text).expect("own output validates");
        // 1 counter + 2 node counters + 1 gauge + hist(2 buckets + Inf + sum + count).
        assert_eq!(samples, 9);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let text = render(&sample_snapshot());
        // 100 lands in bucket 7 (le=127), 90_000 in bucket 17 (le=131071).
        assert!(text.contains("le=\"127\"} 1\n"));
        assert!(text.contains("le=\"131071\"} 2\n"));
    }

    #[test]
    fn validate_rejects_malformed_lines() {
        assert!(validate("no_value_here\n").is_err());
        assert!(validate("1bad_name 3\n").is_err());
        assert!(validate("name{unterminated=\"x\" 3\n").is_err());
        assert!(validate("name{k=\"v\"} notanumber\n").is_err());
        assert!(validate("# TYPE name nonsense\n").is_err());
        assert!(validate("name{k=v} 3\n").is_err());
        assert_eq!(validate("").unwrap(), 0);
        assert_eq!(validate("ok_metric 1\nok2{a=\"b\"} 2.5\n").unwrap(), 2);
    }

    #[test]
    fn empty_label_metric_renders_bare() {
        let reg = Registry::new(1);
        reg.counter("nanotask_bare_total").add(0, 1);
        let text = render(&reg.snapshot());
        assert!(text.contains("\nnanotask_bare_total 1\n"));
        assert_eq!(validate(&text).unwrap(), 1);
    }
}
