//! Cache-line padding to prevent false sharing.
//!
//! The paper's Listing 3 notes: "we have omitted the padding of the fields
//! to prevent false sharing". This module is that padding. Each slot of the
//! PTLock/DTLock waiting arrays, and the head/tail indices of the SPSC
//! queues, are wrapped in [`CachePadded`] so that every busy-waiting core
//! spins on a private cache line — the entire point of the partitioned
//! ticket design.

/// Pads and aligns a value to (at least) one cache line.
///
/// 128 bytes is used rather than 64 because modern Intel prefetchers pull
/// pairs of lines ("spatial prefetcher") and Apple/ARM big cores use 128-byte
/// lines; this matches what crossbeam and folly do.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in a cache-line-aligned cell.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consume the wrapper, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> core::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    #[inline]
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::mem::{align_of, size_of};
    use core::sync::atomic::AtomicU64;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(align_of::<CachePadded<u8>>() >= 128);
        assert!(align_of::<CachePadded<AtomicU64>>() >= 128);
    }

    #[test]
    fn size_is_multiple_of_alignment() {
        assert_eq!(size_of::<CachePadded<u8>>() % 128, 0);
        assert_eq!(size_of::<CachePadded<[u64; 40]>>() % 128, 0);
    }

    #[test]
    fn array_slots_land_on_distinct_lines() {
        let arr: [CachePadded<AtomicU64>; 4] = Default::default();
        let base = arr.as_ptr() as usize;
        for (i, slot) in arr.iter().enumerate() {
            let addr = slot as *const _ as usize;
            assert_eq!((addr - base) % 128, 0);
            assert!(addr - base >= i * 128);
        }
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        *p = 9;
        assert_eq!(p.into_inner(), 9);
    }
}
