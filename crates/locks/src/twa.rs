//! TWA — Ticket lock augmented With a waiting Array (Dice & Kogan,
//! Euro-Par 2019), the paper's third §3.2 comparison point.
//!
//! TWA keeps the two-word footprint of a classic ticket lock but moves
//! *long-term* waiting off the `serving` word: a waiter whose ticket is
//! more than one position away parks on a slot of a global shared waiting
//! array (hashed by lock address and ticket), and only the waiter that is
//! next in line spins on `serving` itself. Each release therefore
//! invalidates at most two remote lines: the `serving` word (one direct
//! spinner) and one waiting-array slot (promoting the following waiter to
//! direct spinning).

use core::sync::atomic::{AtomicU64, Ordering};

use crate::{Backoff, CachePadded, RawLock};

/// Size of the process-global waiting array. Power of two; collisions are
/// benign (they cause spurious re-checks, never missed wakeups).
const WA_SIZE: usize = 4096;

/// The global waiting array shared by every `TwaLock` in the process, as
/// in the TWA paper ("a single array shared amongst all locks").
static WAITING_ARRAY: [AtomicU64; WA_SIZE] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; WA_SIZE]
};

#[inline]
fn wa_slot(lock_addr: usize, ticket: u64) -> &'static AtomicU64 {
    // Mix the lock identity and ticket; the shift drops alignment zeros.
    let h = (lock_addr >> 4) as u64 ^ ticket.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    &WAITING_ARRAY[(h as usize) & (WA_SIZE - 1)]
}

/// Ticket lock augmented with a waiting array.
#[derive(Default)]
pub struct TwaLock {
    next: CachePadded<AtomicU64>,
    serving: CachePadded<AtomicU64>,
}

impl TwaLock {
    /// Long-term threshold: waiters further than this from their turn park
    /// on the waiting array. The TWA paper uses 1 (only the immediate
    /// successor spins on `serving`).
    const LONG_TERM: u64 = 1;

    /// Create an unlocked TWA lock.
    pub const fn new() -> Self {
        Self {
            next: CachePadded::new(AtomicU64::new(0)),
            serving: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

impl RawLock for TwaLock {
    fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        loop {
            let serving = self.serving.load(Ordering::Acquire);
            let dist = ticket.wrapping_sub(serving);
            if dist == 0 {
                return;
            }
            if dist <= Self::LONG_TERM {
                // Short-term: spin directly on the serving word.
                backoff.snooze();
                continue;
            }
            // Long-term: watch the waiting-array slot for our ticket and
            // only re-read `serving` when the slot changes (or periodically,
            // to be immune to hash collisions and missed pings).
            let slot = wa_slot(self as *const _ as usize, ticket);
            let seen = slot.load(Ordering::Acquire);
            let mut spins = 0u32;
            while slot.load(Ordering::Acquire) == seen {
                backoff.snooze();
                spins += 1;
                if spins >= 64 {
                    break; // periodic serving re-check
                }
            }
        }
    }

    fn unlock(&self) {
        let s = self.serving.load(Ordering::Relaxed).wrapping_add(1);
        self.serving.store(s, Ordering::Release);
        // Promote the waiter that is now at long-term distance boundary:
        // ticket s + LONG_TERM parks on the array; ping its slot.
        let slot = wa_slot(self as *const _ as usize, s.wrapping_add(Self::LONG_TERM));
        slot.fetch_add(1, Ordering::Release);
    }

    fn try_lock(&self) -> bool {
        let serving = self.serving.load(Ordering::Relaxed);
        self.next
            .compare_exchange(
                serving,
                serving.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutual_exclusion() {
        crate::tests::mutual_exclusion::<TwaLock>(4, 2_000);
    }

    #[test]
    fn heavier_contention_exercises_long_term_path() {
        // 8 threads guarantees distances > LONG_TERM occur.
        crate::tests::mutual_exclusion::<TwaLock>(8, 500);
    }

    #[test]
    fn try_lock_behaviour() {
        let l = TwaLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn two_locks_share_waiting_array_without_interference() {
        use std::sync::Arc;
        let a = Arc::new(TwaLock::new());
        let b = Arc::new(TwaLock::new());
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if i % 2 == 0 {
                            a.lock();
                            a.unlock();
                        } else {
                            b.lock();
                            b.unlock();
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
}
