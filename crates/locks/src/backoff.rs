//! Bounded exponential backoff for spin loops.
//!
//! On the paper's evaluation machines every worker owns a hardware thread,
//! so raw `pause`-style spinning is appropriate. This reproduction also has
//! to stay live when workers are *oversubscribed* (more worker threads than
//! hardware threads — e.g. simulating the 128-core AMD Rome profile on a
//! small container). A waiter that never yields would then starve the very
//! thread that is supposed to release it. `Backoff` therefore spins with
//! `core::hint::spin_loop` for a short exponentially-growing burst and
//! switches to `std::thread::yield_now` once the burst budget is exhausted.

/// Exponential spin/yield backoff helper.
///
/// ```
/// use nanotask_locks::Backoff;
/// use core::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true); // normally set by another thread
/// let mut backoff = Backoff::new();
/// while !flag.load(Ordering::Acquire) {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin budget (log2) before starting to yield the CPU.
    const SPIN_LIMIT: u32 = 6;

    /// Create a fresh backoff state.
    #[inline]
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Reset to the initial (pure-spin) state.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Back off once: spin for `2^step` pause instructions, or yield the
    /// thread once the spin budget is exhausted.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                core::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Spin without ever yielding; used in wait-free paths where the
    /// awaited condition is guaranteed to arrive within a bounded number of
    /// remote instructions.
    #[inline]
    pub fn spin(&mut self) {
        let limit = self.step.min(Self::SPIN_LIMIT);
        for _ in 0..(1u32 << limit) {
            core::hint::spin_loop();
        }
        self.step = self.step.saturating_add(1);
    }

    /// True once the backoff has escalated to yielding.
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_yielding() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_yielding());
        // Further snoozes stay in the yielding regime and must not panic.
        for _ in 0..8 {
            b.snooze();
        }
        assert!(b.is_yielding());
    }

    #[test]
    fn reset_returns_to_spinning() {
        let mut b = Backoff::new();
        for _ in 0..32 {
            b.snooze();
        }
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn spin_never_yields_flag() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        // `spin` saturates the step counter but is_yielding reflects snooze
        // escalation; after heavy spinning the state must still be valid.
        b.reset();
        assert!(!b.is_yielding());
    }
}
