//! MCS queue lock (Mellor-Crummey & Scott, 1991).
//!
//! The classic scalable queue lock the paper cites as the design PTLocks
//! "perform as well as" (§3.2) while PTLock needs more memory. Each waiter
//! spins on a flag inside its *own* queue node, so releases touch exactly
//! one remote cache line.
//!
//! The textbook algorithm threads a node through the `lock`/`unlock` call
//! pair. To also offer the crate-wide [`RawLock`] interface (which the
//! scheduler ablations need), the lock records the holder's node pointer
//! internally and recycles nodes through a small thread-local pool, so
//! `lock()`/`unlock()` work without explicit node management.

use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::cell::RefCell;

use crate::{Backoff, RawLock};

/// A queue node; one per in-flight acquisition.
pub struct McsNode {
    locked: AtomicBool,
    next: AtomicPtr<McsNode>,
}

impl Default for McsNode {
    fn default() -> Self {
        Self {
            locked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

thread_local! {
    /// Recycled queue nodes. A thread needs one node per lock it holds
    /// simultaneously; nodes are leaked once and reused forever, so the
    /// pool size is bounded by the deepest lock nesting the thread reaches.
    static NODE_POOL: RefCell<Vec<&'static McsNode>> = const { RefCell::new(Vec::new()) };
}

fn take_node() -> &'static McsNode {
    NODE_POOL.with(|p| {
        p.borrow_mut()
            .pop()
            .unwrap_or_else(|| Box::leak(Box::new(McsNode::default())))
    })
}

fn recycle_node(node: &'static McsNode) {
    NODE_POOL.with(|p| p.borrow_mut().push(node));
}

/// MCS list-based queue lock.
pub struct McsLock {
    tail: AtomicPtr<McsNode>,
    /// Node of the current holder, stored after acquisition so that
    /// `unlock(&self)` does not need the node threaded through the API.
    holder: AtomicPtr<McsNode>,
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

impl McsLock {
    /// Create an unlocked MCS lock.
    pub const fn new() -> Self {
        Self {
            tail: AtomicPtr::new(ptr::null_mut()),
            holder: AtomicPtr::new(ptr::null_mut()),
        }
    }

    fn lock_node(&self, node: &'static McsNode) {
        node.locked.store(true, Ordering::Relaxed);
        node.next.store(ptr::null_mut(), Ordering::Relaxed);
        let node_ptr = node as *const McsNode as *mut McsNode;
        let prev = self.tail.swap(node_ptr, Ordering::AcqRel);
        if !prev.is_null() {
            // Link behind the previous waiter and spin on our own flag.
            unsafe { (*prev).next.store(node_ptr, Ordering::Release) };
            let mut backoff = Backoff::new();
            while node.locked.load(Ordering::Acquire) {
                backoff.snooze();
            }
        }
    }

    fn unlock_node(&self, node: &'static McsNode) {
        let node_ptr = node as *const McsNode as *mut McsNode;
        let mut next = node.next.load(Ordering::Acquire);
        if next.is_null() {
            // Possibly no successor: try to swing the tail back to null.
            if self
                .tail
                .compare_exchange(
                    node_ptr,
                    ptr::null_mut(),
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
            // A successor is in the middle of linking; wait for it.
            let mut backoff = Backoff::new();
            loop {
                next = node.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                backoff.snooze();
            }
        }
        unsafe { (*next).locked.store(false, Ordering::Release) };
    }
}

impl RawLock for McsLock {
    fn lock(&self) {
        let node = take_node();
        self.lock_node(node);
        self.holder
            .store(node as *const McsNode as *mut McsNode, Ordering::Relaxed);
    }

    fn unlock(&self) {
        let node = self.holder.load(Ordering::Relaxed);
        debug_assert!(!node.is_null(), "unlock without holder");
        self.holder.store(ptr::null_mut(), Ordering::Relaxed);
        let node: &'static McsNode = unsafe { &*node };
        self.unlock_node(node);
        recycle_node(node);
    }

    fn try_lock(&self) -> bool {
        // Uncontended fast path: tail is null → install our node.
        let node = take_node();
        node.locked.store(true, Ordering::Relaxed);
        node.next.store(ptr::null_mut(), Ordering::Relaxed);
        let node_ptr = node as *const McsNode as *mut McsNode;
        match self.tail.compare_exchange(
            ptr::null_mut(),
            node_ptr,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                self.holder.store(node_ptr, Ordering::Relaxed);
                true
            }
            Err(_) => {
                recycle_node(node);
                false
            }
        }
    }
}

unsafe impl Send for McsLock {}
unsafe impl Sync for McsLock {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutual_exclusion() {
        crate::tests::mutual_exclusion::<McsLock>(4, 2_000);
    }

    #[test]
    fn try_lock_behaviour() {
        let l = McsLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn reacquire_many_times() {
        let l = McsLock::new();
        for _ in 0..10_000 {
            l.lock();
            l.unlock();
        }
    }

    #[test]
    fn nested_distinct_locks() {
        // A thread may hold several MCS locks at once; each acquisition
        // uses its own pooled node.
        let a = McsLock::new();
        let b = McsLock::new();
        a.lock();
        b.lock();
        b.unlock();
        a.unlock();
        // Non-LIFO release order must also work.
        a.lock();
        b.lock();
        a.unlock();
        b.unlock();
    }

    #[test]
    fn handoff_between_threads() {
        use std::sync::Arc;
        use std::sync::atomic::AtomicUsize;
        let l = Arc::new(McsLock::new());
        let c = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        l.lock();
                        c.fetch_add(1, Ordering::Relaxed);
                        l.unlock();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 3_000);
    }
}
