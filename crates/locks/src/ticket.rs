//! Classic ticket lock (Reed & Kanodia, 1979).
//!
//! Fair, FIFO, two words. Every waiter spins on the *same* `serving`
//! word, so each release invalidates the cache line of every waiting core —
//! the contention problem §3.2 of the paper cites as the reason ticket
//! locks "are not suitable for our centralized scheduler". It is the
//! baseline the Partitioned Ticket Lock improves upon.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::{Backoff, CachePadded, RawLock};

/// A fair FIFO ticket lock.
///
/// `next` hands out tickets with a fetch-and-add; `serving` publishes the
/// ticket currently allowed to hold the lock. The two counters live on
/// separate cache lines so ticket acquisition does not contend with the
/// release path.
#[derive(Default)]
pub struct TicketLock {
    next: CachePadded<AtomicU64>,
    serving: CachePadded<AtomicU64>,
}

impl TicketLock {
    /// Create an unlocked ticket lock.
    pub const fn new() -> Self {
        Self {
            next: CachePadded::new(AtomicU64::new(0)),
            serving: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of threads currently waiting (approximate, for diagnostics).
    pub fn queue_length(&self) -> u64 {
        let next = self.next.load(Ordering::Relaxed);
        let serving = self.serving.load(Ordering::Relaxed);
        next.saturating_sub(serving).saturating_sub(1)
    }
}

impl RawLock for TicketLock {
    #[inline]
    fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
    }

    #[inline]
    fn unlock(&self) {
        // Only the holder calls unlock, so a plain add (not RMW on a
        // contended line from multiple writers) suffices.
        let cur = self.serving.load(Ordering::Relaxed);
        self.serving.store(cur.wrapping_add(1), Ordering::Release);
    }

    #[inline]
    fn try_lock(&self) -> bool {
        let serving = self.serving.load(Ordering::Relaxed);
        // The lock is free iff next == serving; claim the ticket only then.
        self.next
            .compare_exchange(
                serving,
                serving.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn mutual_exclusion() {
        crate::tests::mutual_exclusion::<TicketLock>(4, 2_000);
    }

    #[test]
    fn try_lock_behaviour() {
        let l = TicketLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn fifo_order_single_thread() {
        // With a single thread, repeated lock/unlock must always succeed and
        // keep the counters in sync.
        let l = TicketLock::new();
        for _ in 0..100 {
            l.lock();
            l.unlock();
        }
        assert_eq!(l.queue_length(), 0);
    }

    #[test]
    fn fifo_fairness_under_contention() {
        // Each thread records the order in which it acquired the lock; with
        // a FIFO ticket lock no thread can acquire twice while another has
        // been waiting the whole time. We verify global progress: every
        // thread gets the lock `iters` times.
        let l = Arc::new(TicketLock::new());
        let acquired = Arc::new(AtomicUsize::new(0));
        let threads = 4;
        let iters = 500;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let l = Arc::clone(&l);
                let acquired = Arc::clone(&acquired);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        l.lock();
                        acquired.fetch_add(1, Ordering::Relaxed);
                        l.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(acquired.load(Ordering::Relaxed), threads * iters);
    }

    #[test]
    fn try_lock_contention_never_blocks() {
        let l = Arc::new(TicketLock::new());
        l.lock();
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            for _ in 0..1000 {
                assert!(
                    !l2.try_lock() || {
                        l2.unlock();
                        true
                    }
                );
            }
        });
        h.join().unwrap();
        l.unlock();
    }
}
