//! Delegation Ticket Lock (DTLock) — the paper's novel lock (§3.3,
//! Listing 4).
//!
//! The DTLock extends the [`PtLock`] with *fine-grained, dynamic
//! delegation*: a thread calling [`DtLock::lock_or_delegate`] either
//! acquires the lock (like a normal PTLock `lock`) or — if another thread
//! currently owns it — *publishes its identity* in a log queue (`logq`)
//! and waits. The owner can observe the waiting threads ([`DtLock::empty`],
//! [`DtLock::front`]), execute the delegated operation on their behalf,
//! deposit the result in a per-thread slot ([`DtLock::set_item`]) and
//! release them ([`DtLock::pop_front`]) without ever handing the lock
//! over. If the owner releases the lock without serving a waiter, that
//! waiter acquires the lock normally and executes its operation itself —
//! this is what makes the delegation *dynamic*, unlike classic delegation
//! (ffwd) which needs a dedicated server core.
//!
//! Protocol recap (Listing 4 with the paper's text):
//! * `lock_or_delegate(id)` takes a ticket, stores `ticket + id` into
//!   `logq[ticket % N]`, and busy-waits on the PTLock waiting array.
//!   Waking up, it checks `readyq[id].ticket`: if it equals its own
//!   ticket, the operation was delegated and the item is the result;
//!   otherwise it now owns the lock.
//! * The owner: `empty()` is true iff `logq[tail % N] < tail` (stale
//!   entry); `front()` recovers the waiter id as `logq[tail % N] - tail`
//!   (exact inverse of the registration store, valid because the waiter at
//!   the queue head always has `ticket == tail`); `set_item(id, item)`
//!   writes the result and marks it valid by setting the slot ticket to
//!   `tail`; `pop_front()` is `unlock()`, which advances `tail` and lets
//!   the served waiter out of its busy-wait.
//!
//! ### Deviation from Listing 4 as printed
//!
//! The listing's acquired path executes an extra `_tail++` after
//! `_waitTurn`. With the listing's own `unlock` (which already advances
//! `_tail` when it published our slot) that second increment desynchronizes
//! `tail` from the admitted ticket: the owner then inspects the wrong
//! `logq` slot (missing real waiters) and a subsequent `unlock` publishes a
//! slot no waiter is parked on. We keep the PTLock invariant —
//! **`tail` is always the next ticket to be admitted** — which makes the
//! acquired path increment-free and keeps `empty`/`front`/`set_item`
//! consistent in every interleaving (see `tests::serve_and_handoff_mix`).

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU64, Ordering};

use crate::ptlock::PtLock;
use crate::{CachePadded, RawLock};

/// Result of [`DtLock::lock_or_delegate`].
#[derive(Debug, PartialEq, Eq)]
pub enum LockOrDelegate<T> {
    /// The caller now owns the lock and must eventually `unlock` it.
    Acquired,
    /// The operation was executed by the lock owner on the caller's
    /// behalf; the payload is the result. The caller does **not** own the
    /// lock.
    Served(T),
}

struct ReadySlot<T> {
    /// Ticket for which `item` is valid; `u64::MAX` means "never served".
    ticket: AtomicU64,
    item: UnsafeCell<Option<T>>,
}

impl<T> Default for ReadySlot<T> {
    fn default() -> Self {
        Self {
            ticket: AtomicU64::new(u64::MAX),
            item: UnsafeCell::new(None),
        }
    }
}

/// Delegation Ticket Lock over result type `T`, with `N` slots.
///
/// At most `N` threads may use the lock, each with a unique id in
/// `0..N` (the paper: "we need to know in advance the maximum number of
/// threads that can call the DTLock").
pub struct DtLock<T, const N: usize = { crate::ptlock::DEFAULT_SLOTS }> {
    inner: PtLock<N>,
    /// Waiter registration: slot `t % N` holds `t + id` for ticket `t`.
    logq: Box<[CachePadded<AtomicU64>]>,
    /// Per-thread-id delegation results.
    readyq: Box<[CachePadded<ReadySlot<T>>]>,
}

unsafe impl<T: Send, const N: usize> Send for DtLock<T, N> {}
unsafe impl<T: Send, const N: usize> Sync for DtLock<T, N> {}

impl<T, const N: usize> Default for DtLock<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> DtLock<T, N> {
    /// Create an unlocked DTLock.
    pub fn new() -> Self {
        Self {
            inner: PtLock::new(),
            logq: (0..N)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            readyq: (0..N)
                .map(|_| CachePadded::new(ReadySlot::default()))
                .collect(),
        }
    }

    /// Maximum number of participating threads (== distinct ids).
    pub const fn capacity(&self) -> usize {
        N
    }

    /// Sentinel returned by [`DtLock::front`] for a waiter that entered
    /// through plain [`RawLock::lock`] and therefore cannot be served; the
    /// owner must eventually admit it by unlocking.
    pub const UNSERVABLE: usize = N;

    /// Acquire the lock or wait to be served by the current owner.
    ///
    /// `id` must be unique per participating thread and in `0..N`.
    pub fn lock_or_delegate(&self, id: usize) -> LockOrDelegate<T> {
        debug_assert!(id < N, "thread id {id} out of range 0..{N}");
        let ticket = self.inner.get_ticket();
        // Register: one store combining ticket and id. Cannot be overrun
        // because at most N threads hold outstanding tickets.
        self.logq[(ticket % N as u64) as usize].store(ticket + id as u64, Ordering::Release);
        self.inner.wait_turn(ticket);
        // Either the owner served us (readyq[id].ticket == our ticket,
        // published before the wait_turn release we just synchronized
        // with), or we have been admitted and now own the lock.
        let slot = &self.readyq[id];
        if slot.ticket.load(Ordering::Acquire) != ticket {
            return LockOrDelegate::Acquired;
        }
        // SAFETY: the owner wrote the item before the ticket store we just
        // observed with Acquire and will never touch this slot again for
        // this ticket; we are the only reader.
        let item = unsafe { (*slot.item.get()).take() };
        LockOrDelegate::Served(item.expect("served slot must hold an item"))
    }

    /// True iff no thread is currently registered behind the owner.
    ///
    /// Owner-only. "Intrinsically racy but harmless": a waiter registering
    /// concurrently may be missed, in which case it is admitted by the
    /// owner's eventual `unlock`.
    pub fn empty(&self) -> bool {
        let tail = self.inner.tail();
        self.logq[(tail % N as u64) as usize].load(Ordering::Acquire) < tail
    }

    /// Id of the first waiting thread, or [`Self::UNSERVABLE`] for a
    /// plain-`lock()` waiter. Owner-only; call only after
    /// [`DtLock::empty`] returned `false`.
    pub fn front(&self) -> usize {
        let tail = self.inner.tail();
        let entry = self.logq[(tail % N as u64) as usize].load(Ordering::Acquire);
        debug_assert!(entry >= tail, "front() without a registered waiter");
        (entry - tail) as usize
    }

    /// Deposit the delegated result for waiter `id` (which must be the
    /// current [`DtLock::front`]). Owner-only. Follow with
    /// [`DtLock::pop_front`] to release the waiter.
    pub fn set_item(&self, id: usize, item: T) {
        debug_assert!(id < N);
        let slot = &self.readyq[id];
        // SAFETY: `id` is the front waiter, which is parked in wait_turn
        // and cannot read the slot until pop_front publishes; the owner is
        // the only writer.
        unsafe { *slot.item.get() = Some(item) };
        // Mark valid: the front waiter's ticket always equals `tail`.
        slot.ticket.store(self.inner.tail(), Ordering::Release);
    }

    /// Release the front waiter (after [`DtLock::set_item`], it leaves as
    /// *served*; without it, it leaves as the new lock owner). Owner-only.
    pub fn pop_front(&self) {
        self.inner.publish_tail();
    }

    // ----- flat-combining extension -------------------------------------
    //
    // §8 of the paper: "we plan to investigate extensions of the DTLock
    // interface to support flat combining. This interface will require
    // the ability to access and unblock several waiting threads
    // simultaneously to be able to combine their operations." The two
    // methods below are that interface.

    /// Ids of up to `max` *consecutive* servable waiters, in queue order
    /// (owner-only). Scanning stops at the first ticket that has not
    /// registered yet or at an unservable (plain-`lock`) waiter.
    ///
    /// Safe against stale log entries: an old entry in slot `t % N` holds
    /// at most `t - N + (N-1) < t`, so it can never masquerade as the
    /// current ticket `t`.
    pub fn waiters(&self, max: usize) -> Vec<usize> {
        let tail = self.inner.tail();
        let mut out = Vec::new();
        for i in 0..max.min(N) as u64 {
            let t = tail + i;
            let entry = self.logq[(t % N as u64) as usize].load(Ordering::Acquire);
            if entry < t {
                break; // ticket t has not arrived yet
            }
            let id = (entry - t) as usize;
            if id >= N {
                break; // plain-lock waiter: can only be admitted
            }
            out.push(id);
        }
        out
    }

    /// Serve a whole batch of waiters in one combining pass: for each
    /// currently-waiting servable thread (in queue order), `supply` is
    /// asked for its result; `None` stops the batch. Returns the number
    /// of waiters served and released. Owner-only; the owner keeps the
    /// lock.
    pub fn serve_batch(&self, mut supply: impl FnMut(usize) -> Option<T>) -> usize {
        let ids = self.waiters(N);
        let mut served = 0;
        for id in ids {
            match supply(id) {
                Some(item) => {
                    self.set_item(id, item);
                    self.pop_front();
                    served += 1;
                }
                None => break,
            }
        }
        served
    }
}

impl<T: Send, const N: usize> RawLock for DtLock<T, N> {
    #[inline]
    fn lock(&self) {
        // A plain lock() waits without offering itself for delegation: it
        // registers the UNSERVABLE sentinel (id == N) so an owner
        // inspecting the queue head knows this waiter can only be admitted
        // via unlock, never served via set_item.
        let ticket = self.inner.get_ticket();
        self.logq[(ticket % N as u64) as usize]
            .store(ticket + Self::UNSERVABLE as u64, Ordering::Release);
        self.inner.wait_turn(ticket);
    }

    #[inline]
    fn unlock(&self) {
        self.inner.publish_tail();
    }

    #[inline]
    fn try_lock(&self) -> bool {
        // Delegate to the PTLock fast path; on success we own the lock and
        // no logq registration is needed (nobody will try to serve us —
        // servers only inspect logq entries at `tail`, and our admission
        // already advanced past our ticket... registration happens below
        // for consistency of front()).
        if !self.inner.try_lock() {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::atomic::{AtomicBool, AtomicUsize};

    #[test]
    fn uncontended_acquire() {
        let l: DtLock<u64, 8> = DtLock::new();
        assert!(matches!(l.lock_or_delegate(0), LockOrDelegate::Acquired));
        assert!(l.empty());
        l.unlock();
    }

    #[test]
    fn try_lock_and_unlock() {
        let l: DtLock<u64, 8> = DtLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn owner_serves_one_waiter() {
        let l: Arc<DtLock<u64, 8>> = Arc::new(DtLock::new());
        assert!(matches!(l.lock_or_delegate(0), LockOrDelegate::Acquired));

        let l2 = Arc::clone(&l);
        let waiter = std::thread::spawn(move || l2.lock_or_delegate(3));

        // Wait for the registration to land.
        while l.empty() {
            std::hint::spin_loop();
        }
        assert_eq!(l.front(), 3);
        l.set_item(3, 42);
        l.pop_front();

        assert_eq!(waiter.join().unwrap(), LockOrDelegate::Served(42));
        // We still own the lock.
        assert!(!l.try_lock());
        l.unlock();
    }

    #[test]
    fn unserved_waiter_acquires_on_unlock() {
        let l: Arc<DtLock<u64, 8>> = Arc::new(DtLock::new());
        assert!(matches!(l.lock_or_delegate(0), LockOrDelegate::Acquired));

        let l2 = Arc::clone(&l);
        let released = Arc::new(AtomicBool::new(false));
        let released2 = Arc::clone(&released);
        let waiter = std::thread::spawn(move || {
            let r = l2.lock_or_delegate(5);
            assert!(matches!(r, LockOrDelegate::Acquired));
            released2.store(true, Ordering::SeqCst);
            l2.unlock();
        });

        while l.empty() {
            std::hint::spin_loop();
        }
        assert!(!released.load(Ordering::SeqCst));
        l.unlock(); // hand the lock over instead of serving
        waiter.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
        // Lock must be free again.
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn serve_many_waiters_in_fifo_order() {
        const THREADS: usize = 6;
        let l: Arc<DtLock<u64, 8>> = Arc::new(DtLock::new());
        assert!(matches!(l.lock_or_delegate(7), LockOrDelegate::Acquired));

        let hs: Vec<_> = (0..THREADS)
            .map(|id| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || match l.lock_or_delegate(id) {
                    LockOrDelegate::Served(v) => v,
                    LockOrDelegate::Acquired => {
                        l.unlock();
                        u64::MAX
                    }
                })
            })
            .collect();

        // Serve every waiter a value derived from its id.
        let mut served = 0;
        while served < THREADS {
            if !l.empty() {
                let id = l.front();
                l.set_item(id, 1000 + id as u64);
                l.pop_front();
                served += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        l.unlock();

        for (id, h) in hs.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), 1000 + id as u64);
        }
    }

    #[test]
    fn serve_and_handoff_mix() {
        // Stress the exact interleaving the printed Listing 4 breaks on:
        // the owner serves some waiters, then unlocks with waiters still
        // queued; the woken waiter becomes owner and must see a consistent
        // tail (correct empty()/front()).
        const ROUNDS: usize = 300;
        const THREADS: usize = 4;
        let l: Arc<DtLock<u64, 8>> = Arc::new(DtLock::new());
        let total = Arc::new(AtomicUsize::new(0));

        let hs: Vec<_> = (0..THREADS)
            .map(|id| {
                let l = Arc::clone(&l);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for r in 0..ROUNDS {
                        match l.lock_or_delegate(id) {
                            LockOrDelegate::Served(_) => {
                                total.fetch_add(1, Ordering::Relaxed);
                            }
                            LockOrDelegate::Acquired => {
                                // Serve at most one waiter, then hand off.
                                if r % 2 == 0 && !l.empty() {
                                    let w = l.front();
                                    l.set_item(w, w as u64);
                                    l.pop_front();
                                }
                                total.fetch_add(1, Ordering::Relaxed);
                                l.unlock();
                            }
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), ROUNDS * THREADS);
        // Lock ends free.
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn empty_is_racy_but_harmless() {
        // empty() may transiently report true while a registration is in
        // flight; the waiter must still make progress via unlock.
        let l: Arc<DtLock<u64, 4>> = Arc::new(DtLock::new());
        for _ in 0..100 {
            assert!(matches!(l.lock_or_delegate(0), LockOrDelegate::Acquired));
            let l2 = Arc::clone(&l);
            let h = std::thread::spawn(move || match l2.lock_or_delegate(1) {
                LockOrDelegate::Acquired => {
                    l2.unlock();
                }
                LockOrDelegate::Served(_) => {}
            });
            // Unlock immediately — maybe before the waiter registered.
            l.unlock();
            h.join().unwrap();
        }
    }

    #[test]
    fn capacity_reports_n() {
        let l: DtLock<u32, 16> = DtLock::new();
        assert_eq!(l.capacity(), 16);
    }

    #[test]
    fn waiters_empty_without_contention() {
        let l: DtLock<u64, 8> = DtLock::new();
        assert!(matches!(l.lock_or_delegate(0), LockOrDelegate::Acquired));
        assert!(l.waiters(8).is_empty());
        l.unlock();
    }

    #[test]
    fn waiters_lists_queue_in_order() {
        let l: Arc<DtLock<u64, 8>> = Arc::new(DtLock::new());
        assert!(matches!(l.lock_or_delegate(7), LockOrDelegate::Acquired));
        let mut hs = Vec::new();
        for (i, &id) in [3usize, 5, 1].iter().enumerate() {
            let l2 = Arc::clone(&l);
            hs.push(std::thread::spawn(move || l2.lock_or_delegate(id)));
            // Stagger arrivals so ticket order is deterministic.
            while l.waiters(8).len() < i + 1 {
                std::hint::spin_loop();
            }
        }
        let ws = l.waiters(8);
        assert_eq!(ws, vec![3, 5, 1], "queue order == arrival order");
        assert_eq!(ws[0], l.front());
        // Serve them all in one combining pass.
        let served = l.serve_batch(|id| Some(1000 + id as u64));
        assert_eq!(served, 3);
        l.unlock();
        for h in hs {
            match h.join().unwrap() {
                LockOrDelegate::Served(v) => assert!(v >= 1000),
                LockOrDelegate::Acquired => panic!("batch should have served all"),
            }
        }
    }

    #[test]
    fn serve_batch_stops_when_supply_dries() {
        let l: Arc<DtLock<u64, 8>> = Arc::new(DtLock::new());
        assert!(matches!(l.lock_or_delegate(0), LockOrDelegate::Acquired));
        let l2 = Arc::clone(&l);
        let h1 = std::thread::spawn(move || l2.lock_or_delegate(1));
        while l.waiters(8).is_empty() {
            std::hint::spin_loop();
        }
        let l3 = Arc::clone(&l);
        let h2 = std::thread::spawn(move || l3.lock_or_delegate(2));
        while l.waiters(8).len() < 2 {
            std::hint::spin_loop();
        }
        // Supply only one item: first waiter served, second admitted by
        // the subsequent unlock.
        let mut budget = 1;
        let served = l.serve_batch(|_| {
            if budget > 0 {
                budget -= 1;
                Some(42)
            } else {
                None
            }
        });
        assert_eq!(served, 1);
        l.unlock();
        assert_eq!(h1.join().unwrap(), LockOrDelegate::Served(42));
        match h2.join().unwrap() {
            LockOrDelegate::Acquired => l.unlock(),
            LockOrDelegate::Served(_) => panic!("only one item was supplied"),
        }
    }
}
