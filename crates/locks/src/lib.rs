//! Scalable lock designs for task-based runtime systems.
//!
//! This crate implements every lock discussed in §3 of *Advanced
//! Synchronization Techniques for Task-based Runtime Systems* (PPoPP '21):
//!
//! * [`TicketLock`](ticket::TicketLock) — the classic fair FIFO ticket lock
//!   (Reed & Kanodia), used as the baseline that "has contention problems
//!   under high-load conditions".
//! * [`PtLock`](ptlock::PtLock) — the *Partitioned Ticket Lock* (Dice,
//!   SPAA '11), Listing 3 of the paper: a ticket lock whose waiters spin on
//!   a padded circular array so each core busy-waits on a private cache
//!   line.
//! * [`McsLock`](mcs::McsLock) — the Mellor-Crummey/Scott queue lock, the
//!   classic scalable design PTLock is compared against.
//! * [`TwaLock`](twa::TwaLock) — *Ticket lock augmented With a waiting
//!   Array* (Dice & Kogan, Euro-Par '19), the third comparison point.
//! * [`DtLock`](dtlock::DtLock) — the paper's novel **Delegation Ticket
//!   Lock** (Listing 4): a PTLock extended with a waiter log (`_logq`) and
//!   a result array (`_readyq`) so the lock owner can *serve* operations on
//!   behalf of the threads that are still waiting.
//!
//! All locks implement the [`RawLock`] trait so the runtime's central
//! scheduler can be instantiated with any of them (the paper's
//! "w/o DTLock" ablation uses the PTLock through exactly this seam).
//!
//! # Spinning policy
//!
//! The paper evaluates on 48–256 hardware threads where pure busy-waiting
//! is fine. This reproduction must also run correctly on heavily
//! oversubscribed hosts (CI containers with a single core), so every spin
//! loop uses [`Backoff`](backoff::Backoff): a short burst of
//! `core::hint::spin_loop` followed by `std::thread::yield_now`. This
//! preserves the algorithms' fairness and cache behaviour while remaining
//! live under oversubscription.

pub mod backoff;
pub mod dtlock;
pub mod mcs;
pub mod pad;
pub mod ptlock;
pub mod ticket;
pub mod twa;

pub use backoff::Backoff;
pub use dtlock::DtLock;
pub use mcs::McsLock;
pub use pad::CachePadded;
pub use ptlock::PtLock;
pub use ticket::TicketLock;
pub use twa::TwaLock;

/// A raw mutual-exclusion primitive.
///
/// The runtime's central scheduler (and the producer side of the ready-task
/// SPSC buffers) are generic over this trait so the paper's lock ablations
/// are a one-line configuration change.
pub trait RawLock: Send + Sync + Default {
    /// Acquire the lock, blocking (spinning) until it is held.
    fn lock(&self);
    /// Release the lock. Must only be called by the current holder.
    fn unlock(&self);
    /// Try to acquire the lock without waiting.
    fn try_lock(&self) -> bool;

    /// Run `f` while holding the lock.
    #[inline]
    fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        let r = f();
        self.unlock();
        r
    }
}

/// RAII guard returned by [`LockExt::guard`].
pub struct Guard<'a, L: RawLock> {
    lock: &'a L,
}

impl<L: RawLock> Drop for Guard<'_, L> {
    #[inline]
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

/// Guard-style convenience over any [`RawLock`].
pub trait LockExt: RawLock + Sized {
    /// Acquire the lock and return an RAII guard that releases on drop.
    #[inline]
    fn guard(&self) -> Guard<'_, Self> {
        self.lock();
        Guard { lock: self }
    }
}

impl<L: RawLock + Sized> LockExt for L {}

/// A trivial spin lock on one atomic bool; used in tests as a reference
/// implementation and as the cheapest possible `RawLock`.
#[derive(Default)]
pub struct SpinLock {
    locked: core::sync::atomic::AtomicBool,
}

impl RawLock for SpinLock {
    #[inline]
    fn lock(&self) {
        use core::sync::atomic::Ordering;
        let mut backoff = Backoff::new();
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
        }
    }

    #[inline]
    fn unlock(&self) {
        self.locked
            .store(false, core::sync::atomic::Ordering::Release);
    }

    #[inline]
    fn try_lock(&self) -> bool {
        !self
            .locked
            .swap(true, core::sync::atomic::Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Generic mutual-exclusion smoke test shared by all lock tests.
    pub(crate) fn mutual_exclusion<L: RawLock + 'static>(threads: usize, iters: usize) {
        let lock = Arc::new(L::default());
        let counter = Arc::new(AtomicUsize::new(0));
        let inside = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let inside = Arc::clone(&inside);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        lock.lock();
                        assert_eq!(inside.fetch_add(1, Ordering::Relaxed), 0, "lock violated");
                        counter.fetch_add(1, Ordering::Relaxed);
                        inside.fetch_sub(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), threads * iters);
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        mutual_exclusion::<SpinLock>(4, 2_000);
    }

    #[test]
    fn spinlock_try_lock() {
        let l = SpinLock::default();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = SpinLock::default();
        {
            let _g = l.guard();
            assert!(!l.try_lock());
        }
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn with_returns_value() {
        let l = SpinLock::default();
        let v = l.with(|| 42);
        assert_eq!(v, 42);
        assert!(l.try_lock());
        l.unlock();
    }
}
