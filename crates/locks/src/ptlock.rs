//! Partitioned Ticket Lock (Dice, SPAA '11) — Listing 3 of the paper.
//!
//! A ticket lock whose waiters busy-wait on a *padded circular array*
//! (`waitq`) instead of a single serving word. With an array at least as
//! large as the number of CPUs, every core spins on a private cache line
//! and a release invalidates exactly one waiter's line. The paper uses the
//! PTLock both as the scheduler lock of the "w/o DTLock" ablation and as
//! the building block the Delegation Ticket Lock extends.
//!
//! The implementation follows Listing 3, with the padding and memory
//! orderings the listing omits "for the sake of clarity" filled in:
//!
//! * `head` is the index of the latest slot in the virtual waiting queue
//!   (tickets are taken from it with fetch-and-add);
//! * `tail` is the index of the next slot that will be able to acquire the
//!   lock; when the lock is free and nobody waits, `tail == head + 1`;
//! * slot `waitq[t % N]` is published with the value `t` when ticket `t`
//!   may proceed; waiters spin while `waitq[t % N] < t`.
//!
//! The array is initialised so that `waitq[head % N] == head`, letting the
//! first arriving thread through without a release.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::{Backoff, CachePadded, RawLock};

/// Default number of waiting-array slots; must be at least the number of
/// threads that can simultaneously contend, and 64 matches the paper.
pub const DEFAULT_SLOTS: usize = 64;

/// Partitioned Ticket Lock with `N` padded waiting slots.
///
/// `N` bounds the number of threads that may simultaneously *wait*; the
/// virtual waiting queue is infinite (64-bit tickets), the array is only
/// the medium the release values travel through.
pub struct PtLock<const N: usize = DEFAULT_SLOTS> {
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    waitq: Box<[CachePadded<AtomicU64>]>,
}

impl<const N: usize> Default for PtLock<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> PtLock<N> {
    /// Create an unlocked PTLock.
    pub fn new() -> Self {
        assert!(N > 0, "PtLock needs at least one slot");
        let n = N as u64;
        let waitq: Box<[CachePadded<AtomicU64>]> = (0..N)
            .map(|_| CachePadded::new(AtomicU64::new(n)))
            .collect();
        // head starts at N so that slot head % N == 0 holds the value N,
        // guaranteeing the first thread that arrives acquires immediately.
        Self {
            head: CachePadded::new(AtomicU64::new(n)),
            tail: CachePadded::new(AtomicU64::new(n + 1)),
            waitq,
        }
    }

    /// Take the next ticket from the virtual waiting queue.
    #[inline]
    pub(crate) fn get_ticket(&self) -> u64 {
        self.head.fetch_add(1, Ordering::Relaxed)
    }

    /// Busy-wait until `ticket` is allowed to proceed.
    #[inline]
    pub(crate) fn wait_turn(&self, ticket: u64) {
        let slot = &self.waitq[(ticket % N as u64) as usize];
        let mut backoff = Backoff::new();
        while slot.load(Ordering::Acquire) < ticket {
            backoff.snooze();
        }
    }

    /// Current value of the tail index (next ticket to be admitted).
    /// Only meaningful to the lock holder; exposed for the DTLock.
    #[inline]
    pub(crate) fn tail(&self) -> u64 {
        self.tail.load(Ordering::Relaxed)
    }

    /// Advance the tail without publishing a release; used by the DTLock
    /// when a waiter is *served* rather than admitted. Holder-only.
    #[inline]
    pub(crate) fn publish_tail(&self) -> u64 {
        let t = self.tail.load(Ordering::Relaxed);
        let idx = (t % N as u64) as usize;
        // Release on both stores: a waiter synchronizes through the waitq
        // slot, while a `try_lock` caller synchronizes through `tail`.
        self.tail.store(t + 1, Ordering::Release);
        self.waitq[idx].store(t, Ordering::Release);
        t
    }

    /// Number of waiting-array slots.
    #[inline]
    pub const fn slots(&self) -> usize {
        N
    }
}

impl<const N: usize> RawLock for PtLock<N> {
    #[inline]
    fn lock(&self) {
        let ticket = self.get_ticket();
        self.wait_turn(ticket);
    }

    #[inline]
    fn unlock(&self) {
        // "The unlock operation calculates the next slot index that will be
        // able to acquire the lock. Then it increments tail and writes
        // tail-1 in the computed slot to release the lock."
        self.publish_tail();
    }

    #[inline]
    fn try_lock(&self) -> bool {
        // Free iff head + 1 == tail. Claim the head ticket only in that
        // case; the claimed ticket equals the pre-published slot value, so
        // the caller proceeds without waiting. The Acquire load of `tail`
        // synchronizes with the previous holder's Release in publish_tail,
        // making its critical-section writes visible without touching the
        // waitq slot.
        let tail = self.tail.load(Ordering::Acquire);
        let head = tail - 1;
        self.head
            .compare_exchange(head, head + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}

// The waitq box is only mutated through atomics.
unsafe impl<const N: usize> Send for PtLock<N> {}
unsafe impl<const N: usize> Sync for PtLock<N> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_default() {
        crate::tests::mutual_exclusion::<PtLock<64>>(4, 2_000);
    }

    #[test]
    fn mutual_exclusion_small_array() {
        // More threads than in-flight slots is fine as long as no more than
        // N threads *wait* at once; with 4 threads and 4 slots that holds.
        crate::tests::mutual_exclusion::<PtLock<4>>(4, 1_000);
    }

    #[test]
    fn first_acquire_is_immediate() {
        let l = PtLock::<8>::new();
        // Must not block on a fresh lock.
        l.lock();
        l.unlock();
        l.lock();
        l.unlock();
    }

    #[test]
    fn try_lock_when_held_fails() {
        let l = PtLock::<8>::new();
        l.lock();
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn try_lock_interleaves_with_lock() {
        let l = Arc::new(PtLock::<16>::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            for _ in 0..2_000 {
                if l2.try_lock() {
                    l2.unlock();
                }
            }
        });
        for _ in 0..2_000 {
            l.lock();
            l.unlock();
        }
        h.join().unwrap();
        // Lock must still be acquirable.
        l.lock();
        l.unlock();
    }

    #[test]
    fn ticket_wraps_across_array_many_rounds() {
        // Drive the virtual queue far past N to exercise slot reuse.
        let l = PtLock::<4>::new();
        for _ in 0..1_000 {
            l.lock();
            l.unlock();
        }
    }

    #[test]
    fn slots_reports_n() {
        assert_eq!(PtLock::<32>::new().slots(), 32);
    }
}
