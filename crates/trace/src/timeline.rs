//! Timeline reconstruction and analysis — the machinery behind the
//! paper's Figures 10 and 11.
//!
//! Figure 10's view "displays running tasks (in red), specific runtime
//! subsystems such as task creation (in cyan), or other generic runtime
//! parts (in deep blue) along time (X axis) for a number of cores
//! (Y axis)"; starving cores are khaki and DTLock serves are yellow
//! arrows. This module rebuilds exactly those per-core state intervals
//! from a [`Trace`] and renders them as ASCII art, plus the aggregate
//! statistics (starvation fraction, serve counts/bursts) used to compare
//! the PTLock and DTLock schedulers quantitatively.

use crate::Trace;
use crate::event::EventKind;

/// What a core was doing during an interval. Maps 1:1 onto the colour
/// legend of Figure 10/11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreState {
    /// Executing a task body (red).
    Running,
    /// Creating child tasks (cyan).
    Creating,
    /// Inside the scheduler (deep blue).
    Scheduler,
    /// Starving: asked for work and found none (khaki).
    Idle,
    /// Stalled by a (synthetic) kernel interrupt (purple).
    Interrupted,
    /// Blocked in a taskwait.
    Taskwait,
    /// Anything else (runtime glue).
    Other,
}

impl CoreState {
    /// One-character glyph used by the ASCII rendering.
    pub fn glyph(self) -> char {
        match self {
            CoreState::Running => 'R',
            CoreState::Creating => 'C',
            CoreState::Scheduler => 's',
            CoreState::Idle => '.',
            CoreState::Interrupted => '!',
            CoreState::Taskwait => 'w',
            CoreState::Other => ' ',
        }
    }
}

/// A maximal interval of one core in one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Start, ns since trace epoch.
    pub start: u64,
    /// End, ns since trace epoch.
    pub end: u64,
    /// State during the interval.
    pub state: CoreState,
}

impl Interval {
    /// Interval length in ns.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True if the interval is degenerate.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Aggregate statistics for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// ns spent in each state.
    pub running_ns: u64,
    /// ns spent creating tasks.
    pub creating_ns: u64,
    /// ns spent inside the scheduler.
    pub scheduler_ns: u64,
    /// ns starving.
    pub idle_ns: u64,
    /// ns stalled by interrupts.
    pub interrupted_ns: u64,
    /// ns blocked in taskwait.
    pub taskwait_ns: u64,
    /// Number of task bodies executed.
    pub tasks_run: u64,
}

impl CoreStats {
    /// ns accounted to any known state.
    pub fn accounted_ns(&self) -> u64 {
        self.running_ns
            + self.creating_ns
            + self.scheduler_ns
            + self.idle_ns
            + self.interrupted_ns
            + self.taskwait_ns
    }

    /// Fraction of accounted time spent running tasks.
    pub fn utilisation(&self) -> f64 {
        let total = self.accounted_ns();
        if total == 0 {
            0.0
        } else {
            self.running_ns as f64 / total as f64
        }
    }

    /// Fraction of accounted time spent starving.
    pub fn starvation(&self) -> f64 {
        let total = self.accounted_ns();
        if total == 0 {
            0.0
        } else {
            self.idle_ns as f64 / total as f64
        }
    }

    /// Accumulate `overlap` ns of `state` (plus one task start when the
    /// interval began inside the accounted window) — the one shared rule
    /// for clipped-window accounting ([`Timeline::stats_in`],
    /// [`Timeline::record_vs_replay`]).
    fn accumulate(&mut self, state: CoreState, overlap: u64, started_in_window: bool) {
        match state {
            CoreState::Running => {
                self.running_ns += overlap;
                if started_in_window {
                    self.tasks_run += 1;
                }
            }
            CoreState::Creating => self.creating_ns += overlap,
            CoreState::Scheduler => self.scheduler_ns += overlap,
            CoreState::Idle => self.idle_ns += overlap,
            CoreState::Interrupted => self.interrupted_ns += overlap,
            CoreState::Taskwait => self.taskwait_ns += overlap,
            CoreState::Other => {}
        }
    }

    /// Accumulate another set of counters into this one.
    pub fn add(&mut self, other: &CoreStats) {
        self.running_ns += other.running_ns;
        self.creating_ns += other.creating_ns;
        self.scheduler_ns += other.scheduler_ns;
        self.idle_ns += other.idle_ns;
        self.interrupted_ns += other.interrupted_ns;
        self.taskwait_ns += other.taskwait_ns;
        self.tasks_run += other.tasks_run;
    }
}

/// Aggregate statistics of one side of the record-vs-replay split.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Phase windows summed.
    pub windows: u64,
    /// Total wall-clock ns covered by the windows.
    pub wall_ns: u64,
    /// Core statistics clipped to the windows.
    pub stats: CoreStats,
}

impl PhaseStats {
    /// Mean wall-clock ns per phase window (0 when empty).
    pub fn mean_window_ns(&self) -> u64 {
        self.wall_ns.checked_div(self.windows).unwrap_or(0)
    }
}

/// Which replay-engine mode a window of the trace belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayPhase {
    /// Graph capture through the full dependency system
    /// (`ReplayRecordBegin`/`End`).
    Record,
    /// Frozen-graph replay, dependency system bypassed
    /// (`ReplayIterBegin`/`End`).
    Replay,
}

/// One record- or replay-phase window of the trace, reconstructed from
/// the replay engine's phase-boundary events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Record or replay.
    pub phase: ReplayPhase,
    /// Iteration index (the `Begin` event's payload).
    pub iter: u64,
    /// Start, ns since trace epoch.
    pub start: u64,
    /// End, ns since trace epoch.
    pub end: u64,
}

impl PhaseSpan {
    /// Window length in ns.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True if the window is degenerate.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Whole-trace analysis result.
#[derive(Debug, Clone)]
pub struct Timeline {
    ncores: u16,
    span: (u64, u64),
    intervals: Vec<Vec<Interval>>,
    per_core: Vec<CoreStats>,
    serves: Vec<(u64, u64)>,
    drains: Vec<(u64, u64)>,
    phases: Vec<PhaseSpan>,
}

impl Timeline {
    /// Reconstruct per-core intervals from a trace.
    pub fn build(trace: &Trace) -> Self {
        // Event cores are u16 on the wire, so the u16 clamp only ever
        // trims synthetic `Trace::from_events` core counts past 65535.
        let ncores = trace
            .ncores()
            .max(
                trace
                    .events()
                    .iter()
                    .map(|e| e.core as u32 + 1)
                    .max()
                    .unwrap_or(0),
            )
            .min(u16::MAX as u32) as u16;
        let start = trace.events().first().map(|e| e.ns).unwrap_or(0);
        let end = trace.events().last().map(|e| e.ns).unwrap_or(0);
        let mut intervals: Vec<Vec<Interval>> = vec![Vec::new(); ncores as usize];
        let mut per_core: Vec<CoreStats> = vec![CoreStats::default(); ncores as usize];
        let mut serves = Vec::new();
        let mut drains = Vec::new();
        let mut phases: Vec<PhaseSpan> = Vec::new();
        // Currently-open phase window: (phase, iter, since). The engine
        // never nests record inside replay or vice versa, so one slot
        // suffices; a Begin while another phase is open closes it.
        let mut open_phase: Option<(ReplayPhase, u64, u64)> = None;
        let close_phase =
            |open: &mut Option<(ReplayPhase, u64, u64)>, now: u64, phases: &mut Vec<PhaseSpan>| {
                if let Some((phase, iter, since)) = open.take()
                    && now > since
                {
                    phases.push(PhaseSpan {
                        phase,
                        iter,
                        start: since,
                        end: now,
                    });
                }
            };
        // Per-core state machine: (state, since).
        let mut cur: Vec<(CoreState, u64)> = vec![(CoreState::Other, start); ncores as usize];

        let switch = |core: usize,
                      now: u64,
                      next: CoreState,
                      intervals: &mut Vec<Vec<Interval>>,
                      per_core: &mut Vec<CoreStats>,
                      cur: &mut Vec<(CoreState, u64)>| {
            let (state, since) = cur[core];
            if now > since && state != CoreState::Other {
                intervals[core].push(Interval {
                    start: since,
                    end: now,
                    state,
                });
                let len = now - since;
                let s = &mut per_core[core];
                match state {
                    CoreState::Running => s.running_ns += len,
                    CoreState::Creating => s.creating_ns += len,
                    CoreState::Scheduler => s.scheduler_ns += len,
                    CoreState::Idle => s.idle_ns += len,
                    CoreState::Interrupted => s.interrupted_ns += len,
                    CoreState::Taskwait => s.taskwait_ns += len,
                    CoreState::Other => {}
                }
            }
            cur[core] = (next, now);
        };

        for e in trace.events() {
            let core = e.core as usize;
            match e.kind {
                EventKind::TaskStart => {
                    per_core[core].tasks_run += 1;
                    switch(
                        core,
                        e.ns,
                        CoreState::Running,
                        &mut intervals,
                        &mut per_core,
                        &mut cur,
                    );
                }
                EventKind::TaskEnd => switch(
                    core,
                    e.ns,
                    CoreState::Other,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::CreateBegin => switch(
                    core,
                    e.ns,
                    CoreState::Creating,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::CreateEnd => {
                    // Creation happens inside a running task body: fall back
                    // to Running rather than Other.
                    switch(
                        core,
                        e.ns,
                        CoreState::Running,
                        &mut intervals,
                        &mut per_core,
                        &mut cur,
                    )
                }
                EventKind::SchedEnter => switch(
                    core,
                    e.ns,
                    CoreState::Scheduler,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::SchedExit => switch(
                    core,
                    e.ns,
                    CoreState::Other,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::IdleBegin => switch(
                    core,
                    e.ns,
                    CoreState::Idle,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::IdleEnd => switch(
                    core,
                    e.ns,
                    CoreState::Other,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::KernelInterruptBegin => switch(
                    core,
                    e.ns,
                    CoreState::Interrupted,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::KernelInterruptEnd => switch(
                    core,
                    e.ns,
                    CoreState::Other,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::TaskwaitBegin => switch(
                    core,
                    e.ns,
                    CoreState::Taskwait,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::TaskwaitEnd => switch(
                    core,
                    e.ns,
                    CoreState::Running,
                    &mut intervals,
                    &mut per_core,
                    &mut cur,
                ),
                EventKind::SchedServe => serves.push((e.ns, e.payload)),
                EventKind::SchedDrain => drains.push((e.ns, e.payload)),
                EventKind::ReplayRecordBegin => {
                    close_phase(&mut open_phase, e.ns, &mut phases);
                    open_phase = Some((ReplayPhase::Record, e.payload, e.ns));
                }
                EventKind::ReplayIterBegin => {
                    close_phase(&mut open_phase, e.ns, &mut phases);
                    open_phase = Some((ReplayPhase::Replay, e.payload, e.ns));
                }
                // RecordEnd's payload is the captured task count, so the
                // iteration index comes from the opening event.
                EventKind::ReplayRecordEnd | EventKind::ReplayIterEnd => {
                    close_phase(&mut open_phase, e.ns, &mut phases);
                }
                EventKind::AddReady
                | EventKind::DepRegister
                | EventKind::DepRelease
                | EventKind::UserMarker
                | EventKind::InlineRun
                | EventKind::ReadyBatch
                | EventKind::ReplayCacheHit
                | EventKind::ReplayGiveUp
                | EventKind::ReplayPartitionAssign
                | EventKind::NodeReadyBatch => {}
            }
        }
        // Close any open interval (and phase window) at the trace end.
        for core in 0..ncores as usize {
            let state = cur[core].0;
            switch(core, end, state, &mut intervals, &mut per_core, &mut cur);
        }
        close_phase(&mut open_phase, end, &mut phases);
        Self {
            ncores,
            span: (start, end),
            intervals,
            per_core,
            serves,
            drains,
            phases,
        }
    }

    /// Number of cores.
    pub fn ncores(&self) -> u16 {
        self.ncores
    }

    /// (start, end) of the trace, ns.
    pub fn span(&self) -> (u64, u64) {
        self.span
    }

    /// Intervals of one core.
    pub fn core_intervals(&self, core: u16) -> &[Interval] {
        &self.intervals[core as usize]
    }

    /// Statistics of one core.
    pub fn core_stats(&self, core: u16) -> &CoreStats {
        &self.per_core[core as usize]
    }

    /// Sum of the per-core statistics.
    pub fn total_stats(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for s in &self.per_core {
            t.running_ns += s.running_ns;
            t.creating_ns += s.creating_ns;
            t.scheduler_ns += s.scheduler_ns;
            t.idle_ns += s.idle_ns;
            t.interrupted_ns += s.interrupted_ns;
            t.taskwait_ns += s.taskwait_ns;
            t.tasks_run += s.tasks_run;
        }
        t
    }

    /// All DTLock serve events `(ns, served_worker)` — the yellow arrows.
    pub fn serves(&self) -> &[(u64, u64)] {
        &self.serves
    }

    /// All SPSC drain events `(ns, ntasks)` — green in Figure 10.
    pub fn drains(&self) -> &[(u64, u64)] {
        &self.drains
    }

    /// The record/replay phase windows of the trace, in time order —
    /// empty when the trace was not produced by `run_iterative` (or
    /// tracing was off during it).
    pub fn replay_phases(&self) -> &[PhaseSpan] {
        &self.phases
    }

    /// Aggregate core statistics restricted to the `[start, end)` window:
    /// interval time is clipped to the window; `tasks_run` counts task
    /// bodies that *started* inside it.
    pub fn stats_in(&self, start: u64, end: u64) -> CoreStats {
        let mut t = CoreStats::default();
        for core_ivs in &self.intervals {
            for iv in core_ivs {
                let overlap = iv.end.min(end).saturating_sub(iv.start.max(start));
                if overlap == 0 {
                    continue;
                }
                t.accumulate(iv.state, overlap, (start..end).contains(&iv.start));
            }
        }
        t
    }

    /// The record-vs-replay split of an iterative run: summed core
    /// statistics (and total wall-clock ns) over every record window and
    /// every replay window. `None` when the trace has no phase events.
    ///
    /// One pass over the intervals: each interval binary-searches its
    /// first overlapping window (the windows are disjoint and
    /// time-ordered) instead of every window rescanning every interval —
    /// `O(intervals · (log windows + overlaps))`, linear for the typical
    /// interval-inside-one-window trace.
    pub fn record_vs_replay(&self) -> Option<(PhaseStats, PhaseStats)> {
        if self.phases.is_empty() {
            return None;
        }
        let mut rec = PhaseStats::default();
        let mut rep = PhaseStats::default();
        for p in &self.phases {
            let side = match p.phase {
                ReplayPhase::Record => &mut rec,
                ReplayPhase::Replay => &mut rep,
            };
            side.windows += 1;
            side.wall_ns += p.len();
        }
        for core_ivs in &self.intervals {
            for iv in core_ivs {
                // First window that ends after the interval starts.
                let first = self.phases.partition_point(|p| p.end <= iv.start);
                for p in &self.phases[first..] {
                    if p.start >= iv.end {
                        break;
                    }
                    let overlap = iv.end.min(p.end).saturating_sub(iv.start.max(p.start));
                    if overlap == 0 {
                        continue;
                    }
                    let side = match p.phase {
                        ReplayPhase::Record => &mut rec,
                        ReplayPhase::Replay => &mut rep,
                    };
                    side.stats
                        .accumulate(iv.state, overlap, (p.start..p.end).contains(&iv.start));
                }
            }
        }
        Some((rec, rep))
    }

    /// Histogram of serve events over `bins` equal time windows: the
    /// "yellow lines pattern" Figure 11 reads (irregular before the
    /// interrupt, regular after).
    pub fn serve_histogram(&self, bins: usize) -> Vec<u64> {
        let mut hist = vec![0u64; bins.max(1)];
        let (s, e) = self.span;
        let width = (e - s).max(1);
        for &(ns, _) in &self.serves {
            let idx = ((ns - s) as u128 * bins as u128 / width as u128) as usize;
            hist[idx.min(bins - 1)] += 1;
        }
        hist
    }

    /// Render the timeline as ASCII art: one row per core, `width`
    /// columns, glyph = dominant state in each time bin. Legend:
    /// `R` running, `C` creating, `s` scheduler, `.` starving,
    /// `!` interrupted, `w` taskwait.
    #[allow(clippy::needless_range_loop)] // bin index is used for time math
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(1);
        let (s, e) = self.span;
        let span = (e - s).max(1);
        let mut out = String::new();
        for core in 0..self.ncores as usize {
            let mut dominant = vec![(CoreState::Other, 0u64); width];
            for iv in &self.intervals[core] {
                let b0 = ((iv.start - s) as u128 * width as u128 / span as u128) as usize;
                let b1 = ((iv.end - s) as u128 * width as u128 / span as u128) as usize;
                for b in b0..=b1.min(width - 1) {
                    // Bin boundaries in ns:
                    let bin_start = s + (b as u64 * span) / width as u64;
                    let bin_end = s + ((b + 1) as u64 * span) / width as u64;
                    let overlap = iv.end.min(bin_end).saturating_sub(iv.start.max(bin_start));
                    if overlap > dominant[b].1 {
                        dominant[b] = (iv.state, overlap);
                    }
                }
            }
            out.push_str(&format!("core {core:>3} |"));
            for (state, _) in dominant {
                out.push(state.glyph());
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(ns: u64, core: u16, kind: EventKind, payload: u64) -> Event {
        Event {
            ns,
            payload,
            core,
            kind,
        }
    }

    fn simple_trace() -> Trace {
        Trace::from_events(
            2,
            vec![
                ev(0, 0, EventKind::TaskStart, 1),
                ev(100, 0, EventKind::TaskEnd, 1),
                ev(100, 0, EventKind::IdleBegin, 0),
                ev(200, 0, EventKind::IdleEnd, 0),
                ev(0, 1, EventKind::SchedEnter, 1),
                ev(50, 1, EventKind::SchedServe, 0),
                ev(60, 1, EventKind::SchedDrain, 4),
                ev(80, 1, EventKind::SchedExit, 1),
                ev(80, 1, EventKind::TaskStart, 2),
                ev(200, 1, EventKind::TaskEnd, 2),
            ],
        )
    }

    #[test]
    fn per_core_accounting() {
        let tl = Timeline::build(&simple_trace());
        let c0 = tl.core_stats(0);
        assert_eq!(c0.running_ns, 100);
        assert_eq!(c0.idle_ns, 100);
        assert_eq!(c0.tasks_run, 1);
        let c1 = tl.core_stats(1);
        assert_eq!(c1.scheduler_ns, 80);
        assert_eq!(c1.running_ns, 120);
        assert_eq!(c1.tasks_run, 1);
    }

    #[test]
    fn serves_and_drains_collected() {
        let tl = Timeline::build(&simple_trace());
        assert_eq!(tl.serves(), &[(50, 0)]);
        assert_eq!(tl.drains(), &[(60, 4)]);
    }

    #[test]
    fn utilisation_and_starvation_fractions() {
        let tl = Timeline::build(&simple_trace());
        let c0 = tl.core_stats(0);
        assert!((c0.utilisation() - 0.5).abs() < 1e-9);
        assert!((c0.starvation() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn total_stats_sums_cores() {
        let tl = Timeline::build(&simple_trace());
        let t = tl.total_stats();
        assert_eq!(t.tasks_run, 2);
        assert_eq!(t.running_ns, 220);
    }

    #[test]
    fn serve_histogram_bins() {
        let tl = Timeline::build(&simple_trace());
        let h = tl.serve_histogram(4);
        assert_eq!(h.iter().sum::<u64>(), 1);
        // Serve at t=50 of span [0,200] lands in bin 1 of 4.
        assert_eq!(h[1], 1);
    }

    #[test]
    fn ascii_rendering_has_one_row_per_core() {
        let tl = Timeline::build(&simple_trace());
        let art = tl.render_ascii(40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('R'));
        assert!(lines[0].contains('.'));
        assert!(lines[1].contains('s'));
    }

    #[test]
    fn empty_trace_builds() {
        let tl = Timeline::build(&Trace::from_events(1, vec![]));
        assert_eq!(tl.total_stats(), CoreStats::default());
        let art = tl.render_ascii(10);
        assert_eq!(art.lines().count(), 1);
    }

    #[test]
    fn interrupt_intervals_tracked() {
        let t = Trace::from_events(
            1,
            vec![
                ev(0, 0, EventKind::TaskStart, 1),
                ev(10, 0, EventKind::KernelInterruptBegin, 0),
                ev(60, 0, EventKind::KernelInterruptEnd, 0),
                ev(100, 0, EventKind::TaskEnd, 1),
            ],
        );
        let tl = Timeline::build(&t);
        assert_eq!(tl.core_stats(0).interrupted_ns, 50);
    }

    #[test]
    fn replay_phase_spans_reconstructed() {
        let t = Trace::from_events(
            1,
            vec![
                ev(0, 0, EventKind::ReplayRecordBegin, 0),
                ev(10, 0, EventKind::TaskStart, 1),
                ev(90, 0, EventKind::TaskEnd, 1),
                // Payload of RecordEnd is the captured task count.
                ev(100, 0, EventKind::ReplayRecordEnd, 1),
                ev(100, 0, EventKind::ReplayIterBegin, 1),
                ev(110, 0, EventKind::TaskStart, 2),
                ev(140, 0, EventKind::TaskEnd, 2),
                ev(150, 0, EventKind::ReplayIterEnd, 1),
                ev(150, 0, EventKind::ReplayIterBegin, 2),
                ev(160, 0, EventKind::TaskStart, 3),
                ev(190, 0, EventKind::TaskEnd, 3),
                ev(200, 0, EventKind::ReplayIterEnd, 2),
            ],
        );
        let tl = Timeline::build(&t);
        let phases = tl.replay_phases();
        assert_eq!(phases.len(), 3);
        assert_eq!(
            (phases[0].phase, phases[0].iter, phases[0].len()),
            (ReplayPhase::Record, 0, 100)
        );
        assert_eq!(
            (phases[1].phase, phases[1].iter, phases[1].len()),
            (ReplayPhase::Replay, 1, 50)
        );
        let (rec, rep) = tl.record_vs_replay().expect("phases present");
        assert_eq!(rec.windows, 1);
        assert_eq!(rep.windows, 2);
        assert_eq!(rec.wall_ns, 100);
        assert_eq!(rep.wall_ns, 100);
        assert_eq!(rec.stats.running_ns, 80);
        assert_eq!(rep.stats.running_ns, 60);
        assert_eq!(rec.stats.tasks_run, 1);
        assert_eq!(rep.stats.tasks_run, 2);
        assert_eq!(rep.mean_window_ns(), 50);
    }

    #[test]
    fn unterminated_phase_closes_at_trace_end() {
        let t = Trace::from_events(
            1,
            vec![
                ev(0, 0, EventKind::ReplayIterBegin, 4),
                ev(10, 0, EventKind::TaskStart, 1),
                ev(50, 0, EventKind::TaskEnd, 1),
            ],
        );
        let tl = Timeline::build(&t);
        let phases = tl.replay_phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].end, 50);
        assert_eq!(phases[0].iter, 4);
    }

    #[test]
    fn stats_in_clips_intervals_to_window() {
        let tl = Timeline::build(&simple_trace());
        // Core 0 runs [0,100), idles [100,200): the [50,150) window sees
        // 50 ns of each.
        let s = tl.stats_in(50, 150);
        // Core 1 contributes scheduler [0,80) → 30 ns and running
        // [80,200) → 70 ns inside the window.
        assert_eq!(s.idle_ns, 50);
        assert_eq!(s.scheduler_ns, 30);
        assert_eq!(s.running_ns, 50 + 70);
        // Only core 1's task *starts* inside the window (at 80).
        assert_eq!(s.tasks_run, 1);
    }

    #[test]
    fn traces_without_phase_events_have_no_split() {
        let tl = Timeline::build(&simple_trace());
        assert!(tl.replay_phases().is_empty());
        assert!(tl.record_vs_replay().is_none());
    }

    #[test]
    fn interval_len_and_empty() {
        let iv = Interval {
            start: 5,
            end: 15,
            state: CoreState::Running,
        };
        assert_eq!(iv.len(), 10);
        assert!(!iv.is_empty());
        let z = Interval {
            start: 5,
            end: 5,
            state: CoreState::Idle,
        };
        assert!(z.is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::Trace;
    use crate::event::{Event, EventKind};
    use proptest::prelude::*;

    /// One busy segment on a core: `(state, duration, gap)` — which
    /// state the core occupies, for how long, and the unaccounted
    /// (`Other`) gap before the next segment.
    fn arb_segments() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
        proptest::collection::vec((0u8..4, 1u64..60, 0u64..20), 1..20)
    }

    /// Turn per-core segment lists into well-formed begin/end event
    /// pairs. Every `Running` interval starts at exactly one
    /// `TaskStart`, which is what makes `tasks_run` window-additive.
    fn build_events(per_core: &[Vec<(u8, u64, u64)>]) -> Vec<Event> {
        let mut events = Vec::new();
        let mut id = 0u64;
        for (core, segs) in per_core.iter().enumerate() {
            let core = core as u16;
            let mut t = 0u64;
            for &(state, dur, gap) in segs {
                let (begin, end) = match state {
                    0 => {
                        id += 1;
                        (EventKind::TaskStart, EventKind::TaskEnd)
                    }
                    1 => (EventKind::IdleBegin, EventKind::IdleEnd),
                    2 => (EventKind::SchedEnter, EventKind::SchedExit),
                    _ => (
                        EventKind::KernelInterruptBegin,
                        EventKind::KernelInterruptEnd,
                    ),
                };
                let payload = if state == 0 { id } else { 0 };
                events.push(Event {
                    ns: t,
                    payload,
                    core,
                    kind: begin,
                });
                events.push(Event {
                    ns: t + dur,
                    payload,
                    core,
                    kind: end,
                });
                t += dur + gap;
            }
        }
        events
    }

    proptest! {
        /// Clipped-window accounting is exact: any partition of the
        /// span into half-open windows sums ([`CoreStats::add`]) back
        /// to the unwindowed [`Timeline::total_stats`]. Durations of
        /// boundary-straddling intervals split across windows without
        /// loss or double counting, and each task is counted exactly
        /// once — in the window containing its start.
        #[test]
        fn window_partition_sums_to_total(
            per_core in proptest::collection::vec(arb_segments(), 1..4),
            cuts in proptest::collection::vec(any::<u64>(), 0..8),
        ) {
            let events = build_events(&per_core);
            let tl = Timeline::build(&Trace::from_events(per_core.len() as u32, events));
            let (start, end) = tl.span();
            // Cover every interval, including ones ending at `end`,
            // with half-open windows over [start, end + 1).
            let hi = end + 1;
            let mut bounds: Vec<u64> = cuts
                .into_iter()
                .map(|c| start + c % (hi - start).max(1))
                .collect();
            bounds.push(start);
            bounds.push(hi);
            bounds.sort_unstable();
            bounds.dedup();
            let mut summed = CoreStats::default();
            for w in bounds.windows(2) {
                summed.add(&tl.stats_in(w[0], w[1]));
            }
            prop_assert_eq!(summed, tl.total_stats());

            // A window collection that *misses* part of the span
            // undercounts — the equality above is not vacuous.
            if end > start + 2 {
                let mid = start + (end - start) / 2;
                let partial = tl.stats_in(start, mid);
                let total = tl.total_stats();
                prop_assert!(partial.accounted_ns() < total.accounted_ns());
            }
        }
    }
}
