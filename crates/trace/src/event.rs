//! Trace event model.
//!
//! Events mirror the runtime subsystems the paper's Figures 10–11
//! visualise: running tasks (red in the paper), task creation (cyan),
//! generic runtime (deep blue), starvation (khaki), DTLock task serving
//! (yellow arrows), wait-free queue draining (green) and kernel
//! interrupts (purple).

/// What happened. The discriminants are stable: they are the on-disk
/// encoding of the CTF-lite format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A task body started executing. Payload: task id.
    TaskStart = 0,
    /// A task body finished. Payload: task id.
    TaskEnd = 1,
    /// Task creation (allocation + dependency registration) began.
    /// Payload: child task id.
    CreateBegin = 2,
    /// Task creation finished. Payload: child task id.
    CreateEnd = 3,
    /// Worker entered the scheduler asking for work. Payload: worker id.
    SchedEnter = 4,
    /// Worker left the scheduler. Payload: 1 if it got a task, 0 if not.
    SchedExit = 5,
    /// The DTLock owner served a ready task to a waiting worker
    /// (the yellow arrows of Figure 10). Payload: served worker id.
    SchedServe = 6,
    /// The scheduler owner drained the wait-free SPSC buffers into the
    /// ready queue (green in Figure 10). Payload: number of tasks moved.
    SchedDrain = 7,
    /// A ready task was added (producer side). Payload: task id.
    AddReady = 8,
    /// Dependency registration of one access. Payload: task id.
    DepRegister = 9,
    /// Dependency release (unregister) of one task. Payload: task id.
    DepRelease = 10,
    /// Worker found no work and is starving (khaki in Figure 10).
    IdleBegin = 11,
    /// Worker stopped starving.
    IdleEnd = 12,
    /// Synthetic kernel interrupt began on this core (purple, Figure 11).
    KernelInterruptBegin = 13,
    /// Synthetic kernel interrupt ended.
    KernelInterruptEnd = 14,
    /// Taskwait began. Payload: waiting task id.
    TaskwaitBegin = 15,
    /// Taskwait ended.
    TaskwaitEnd = 16,
    /// Free-form user marker.
    UserMarker = 17,
    /// A replay-system *record* iteration began (graph capture through
    /// the full dependency system). Payload: iteration index.
    ReplayRecordBegin = 18,
    /// The record iteration finished. Payload: tasks captured.
    ReplayRecordEnd = 19,
    /// A *replayed* iteration began (dependency system bypassed, ready
    /// tasks fed from the frozen graph). Payload: iteration index.
    ReplayIterBegin = 20,
    /// The replayed iteration finished. Payload: iteration index.
    ReplayIterEnd = 21,
    /// A completing task handed one newly-ready successor straight to its
    /// worker (immediate-successor fast path: no queue, no lock).
    /// Payload: the inlined task's id.
    InlineRun = 22,
    /// A batch of ready tasks was added to the scheduler in one
    /// operation (amortized locks/buffers). Payload: batch size.
    ReadyBatch = 23,
    /// The replay engine's graph cache matched an iteration to an
    /// already-frozen graph (phase switch, divergence probe, or pinned
    /// re-stabilization probe) — no re-record needed. Payload: iteration
    /// index.
    ReplayCacheHit = 24,
    /// The replay engine gave up on recording (too many consecutive
    /// divergences, or nested task domains detected) and pinned the body
    /// to the dependency system. Payload: iteration index.
    ReplayGiveUp = 25,
    /// The replay engine attached a NUMA partitioning to the iteration it
    /// is about to replay: one record per partition. Payload:
    /// `(partition << 32) | tasks_in_partition`.
    ReplayPartitionAssign = 26,
    /// A batch of ready tasks was inserted *targeted at a NUMA node*
    /// (`Scheduler::add_ready_batch_to`, the replay partitioner's release
    /// path). Payload: `(node << 32) | batch_size`.
    NodeReadyBatch = 27,
}

impl EventKind {
    /// Decode a stored discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        use EventKind::*;
        Some(match v {
            0 => TaskStart,
            1 => TaskEnd,
            2 => CreateBegin,
            3 => CreateEnd,
            4 => SchedEnter,
            5 => SchedExit,
            6 => SchedServe,
            7 => SchedDrain,
            8 => AddReady,
            9 => DepRegister,
            10 => DepRelease,
            11 => IdleBegin,
            12 => IdleEnd,
            13 => KernelInterruptBegin,
            14 => KernelInterruptEnd,
            15 => TaskwaitBegin,
            16 => TaskwaitEnd,
            17 => UserMarker,
            18 => ReplayRecordBegin,
            19 => ReplayRecordEnd,
            20 => ReplayIterBegin,
            21 => ReplayIterEnd,
            22 => InlineRun,
            23 => ReadyBatch,
            24 => ReplayCacheHit,
            25 => ReplayGiveUp,
            26 => ReplayPartitionAssign,
            27 => NodeReadyBatch,
            _ => return None,
        })
    }

    /// All kinds, for exhaustive round-trip tests.
    pub fn all() -> &'static [EventKind] {
        use EventKind::*;
        &[
            TaskStart,
            TaskEnd,
            CreateBegin,
            CreateEnd,
            SchedEnter,
            SchedExit,
            SchedServe,
            SchedDrain,
            AddReady,
            DepRegister,
            DepRelease,
            IdleBegin,
            IdleEnd,
            KernelInterruptBegin,
            KernelInterruptEnd,
            TaskwaitBegin,
            TaskwaitEnd,
            UserMarker,
            ReplayRecordBegin,
            ReplayRecordEnd,
            ReplayIterBegin,
            ReplayIterEnd,
            InlineRun,
            ReadyBatch,
            ReplayCacheHit,
            ReplayGiveUp,
            ReplayPartitionAssign,
            NodeReadyBatch,
        ]
    }
}

/// One trace record: 24 bytes on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the tracer epoch.
    pub ns: u64,
    /// Kind-specific payload (task id, worker id, count...).
    pub payload: u64,
    /// Core/worker the event was recorded on.
    pub core: u16,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for &k in EventKind::all() {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(EventKind::from_u8(200), None);
        assert_eq!(EventKind::from_u8(28), None);
    }

    /// On-disk stability: `kind` is stored as a raw `u8`, so reordering
    /// the enum silently corrupts every existing trace. This table pins
    /// each variant to its wire value — adding a variant means appending
    /// here with the next discriminant; renumbering means bumping
    /// [`crate::ctf::VERSION`].
    #[test]
    fn discriminants_are_pinned() {
        use EventKind::*;
        let pinned: &[(EventKind, u8)] = &[
            (TaskStart, 0),
            (TaskEnd, 1),
            (CreateBegin, 2),
            (CreateEnd, 3),
            (SchedEnter, 4),
            (SchedExit, 5),
            (SchedServe, 6),
            (SchedDrain, 7),
            (AddReady, 8),
            (DepRegister, 9),
            (DepRelease, 10),
            (IdleBegin, 11),
            (IdleEnd, 12),
            (KernelInterruptBegin, 13),
            (KernelInterruptEnd, 14),
            (TaskwaitBegin, 15),
            (TaskwaitEnd, 16),
            (UserMarker, 17),
            (ReplayRecordBegin, 18),
            (ReplayRecordEnd, 19),
            (ReplayIterBegin, 20),
            (ReplayIterEnd, 21),
            (InlineRun, 22),
            (ReadyBatch, 23),
            (ReplayCacheHit, 24),
            (ReplayGiveUp, 25),
            (ReplayPartitionAssign, 26),
            (NodeReadyBatch, 27),
        ];
        assert_eq!(
            pinned.len(),
            EventKind::all().len(),
            "every variant must appear in the pinned table"
        );
        for &(kind, value) in pinned {
            assert_eq!(kind as u8, value, "{kind:?} moved its wire value");
            assert_eq!(EventKind::from_u8(value), Some(kind));
        }
        // The value one past the table stays unassigned until a variant
        // claims it (and is added above).
        assert_eq!(EventKind::from_u8(pinned.len() as u8), None);
    }

    #[test]
    fn all_kinds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for &k in EventKind::all() {
            assert!(seen.insert(k as u8), "duplicate discriminant for {k:?}");
        }
    }
}
