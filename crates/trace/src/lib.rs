//! CTF-lite low-overhead tracing for the task runtime.
//!
//! §5 of *Advanced Synchronization Techniques for Task-based Runtime
//! Systems* (PPoPP '21) introduces an instrumentation backend that writes
//! events into **lock-free per-core circular buffers**, divided into
//! sub-buffers that are flushed between task executions, producing traces
//! in the Common Trace Format. Kernel events (interrupts, preemptions) are
//! merged from `perf_event_open` ring buffers so OS noise can be
//! correlated with runtime behaviour (Figure 11).
//!
//! This crate reproduces that design:
//!
//! * [`Tracer`] / [`CoreRecorder`] — one recorder per worker ("core");
//!   recording is a bounds-check + vector write on thread-private memory,
//!   with full sub-buffers flushed to a shared sink *by the worker itself
//!   between tasks* (no daemon threads, unlike LTTng — the §7 comparison).
//! * [`ctf`] — a compact binary trace format ("CTF-lite": fixed 24-byte
//!   little-endian records) with writer and reader.
//! * [`timeline`] — interval reconstruction, per-core utilisation /
//!   starvation statistics and the ASCII rendering used to regenerate
//!   Figures 10 and 11.
//! * [`noise`] — a synthetic OS-noise injector standing in for the kernel
//!   side of `perf_event_open` (documented substitution: it stalls a
//!   worker and emits the same `KernelInterrupt*` events a hardware
//!   interrupt would, which is all Figure 11's analysis needs).

pub mod ctf;
pub mod event;
pub mod noise;
pub mod timeline;

pub use event::{Event, EventKind};

use parking_lot::Mutex;
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Events per sub-buffer; a full sub-buffer triggers a flush to the sink.
pub const SUBBUF_EVENTS: usize = 4096;

struct TracerShared {
    epoch: Instant,
    enabled: AtomicBool,
    sink: Mutex<Vec<Event>>,
    ncores: u32,
}

/// Trace collection facade. Create one per runtime instance, hand one
/// [`CoreRecorder`] to each worker, and call [`Tracer::finish`] after the
/// workers are done.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

impl Tracer {
    /// Create a tracer for `ncores` workers. `enabled = false` makes all
    /// recording a no-op (one relaxed load), so instrumentation can stay
    /// compiled in.
    pub fn new(ncores: usize, enabled: bool) -> Self {
        Self {
            shared: Arc::new(TracerShared {
                epoch: Instant::now(),
                enabled: AtomicBool::new(enabled),
                sink: Mutex::new(Vec::new()),
                ncores: ncores.try_into().unwrap_or(u32::MAX),
            }),
        }
    }

    /// Create a recorder bound to worker/core `core`.
    pub fn recorder(&self, core: u16) -> CoreRecorder {
        CoreRecorder {
            shared: Arc::clone(&self.shared),
            core,
            buf: Vec::with_capacity(SUBBUF_EVENTS),
        }
    }

    /// Whether events are currently recorded.
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since the tracer epoch.
    pub fn now(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// Collect every flushed event into a [`Trace`], sorted by timestamp.
    /// Recorders must have been dropped (or explicitly flushed) first.
    pub fn finish(&self) -> Trace {
        let mut events = self.shared.sink.lock().clone();
        events.sort_by_key(|e| e.ns);
        Trace {
            ncores: self.shared.ncores,
            events,
        }
    }
}

/// Per-worker event recorder. Thread-confined: the owning worker is the
/// only writer, which is what makes recording lock-free (the paper's
/// per-core circular buffer).
pub struct CoreRecorder {
    shared: Arc<TracerShared>,
    core: u16,
    buf: Vec<Event>,
}

impl CoreRecorder {
    /// Record an event; flushes the sub-buffer if it filled up.
    #[inline]
    pub fn record(&mut self, kind: EventKind, payload: u64) {
        if !self.shared.enabled.load(Ordering::Relaxed) {
            return;
        }
        let ns = self.shared.epoch.elapsed().as_nanos() as u64;
        self.buf.push(Event {
            ns,
            payload,
            core: self.core,
            kind,
        });
        if self.buf.len() >= SUBBUF_EVENTS {
            self.flush();
        }
    }

    /// The core id this recorder is bound to.
    pub fn core(&self) -> u16 {
        self.core
    }

    /// Move buffered events to the shared sink. Called automatically when
    /// a sub-buffer fills and on drop; the runtime also calls it between
    /// tasks, mirroring the paper ("flushed ... by Nanos6 threads between
    /// tasks execution").
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut sink = self.shared.sink.lock();
        sink.append(&mut self.buf);
    }

    /// Number of events currently buffered (not yet flushed).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

impl Drop for CoreRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A finished, time-sorted trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    ncores: u32,
    events: Vec<Event>,
}

impl Trace {
    /// Build a trace directly from events (used by the CTF reader and
    /// tests). Events are sorted by timestamp.
    pub fn from_events(ncores: u32, mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.ns);
        Self { ncores, events }
    }

    /// All events, sorted by timestamp.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of cores the trace was recorded on. Wider than the
    /// CTF-lite header's on-disk `u16`: an in-memory trace may carry any
    /// core count, and [`ctf::write_trace`] rejects values past
    /// `u16::MAX` with [`ctf::CtfError::NcoresOverflow`] instead of
    /// silently truncating.
    pub fn ncores(&self) -> u32 {
        self.ncores
    }

    /// Events of a single core, in time order.
    pub fn core_events(&self, core: u16) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.core == core)
    }

    /// Total time span covered (ns), 0 for an empty trace.
    pub fn span_ns(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.ns - a.ns,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_finish_sorted() {
        let tracer = Tracer::new(2, true);
        let mut r0 = tracer.recorder(0);
        let mut r1 = tracer.recorder(1);
        r0.record(EventKind::TaskStart, 1);
        r1.record(EventKind::TaskStart, 2);
        r0.record(EventKind::TaskEnd, 1);
        drop(r0);
        drop(r1);
        let trace = tracer.finish();
        assert_eq!(trace.events().len(), 3);
        assert!(trace.events().windows(2).all(|w| w[0].ns <= w[1].ns));
        assert_eq!(trace.core_events(0).count(), 2);
        assert_eq!(trace.core_events(1).count(), 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(1, false);
        let mut r = tracer.recorder(0);
        r.record(EventKind::TaskStart, 0);
        r.flush();
        assert!(tracer.finish().events().is_empty());
    }

    #[test]
    fn toggling_enabled_at_runtime() {
        let tracer = Tracer::new(1, false);
        let mut r = tracer.recorder(0);
        r.record(EventKind::TaskStart, 0);
        tracer.set_enabled(true);
        r.record(EventKind::TaskEnd, 0);
        r.flush();
        assert_eq!(tracer.finish().events().len(), 1);
    }

    #[test]
    fn subbuffer_autoflush() {
        let tracer = Tracer::new(1, true);
        let mut r = tracer.recorder(0);
        for i in 0..(SUBBUF_EVENTS + 10) {
            r.record(EventKind::UserMarker, i as u64);
        }
        // The first sub-buffer must already be in the sink.
        assert!(r.buffered() < SUBBUF_EVENTS);
        drop(r);
        assert_eq!(tracer.finish().events().len(), SUBBUF_EVENTS + 10);
    }

    #[test]
    fn timestamps_monotone_per_core() {
        let tracer = Tracer::new(1, true);
        let mut r = tracer.recorder(0);
        for i in 0..100 {
            r.record(EventKind::UserMarker, i);
        }
        drop(r);
        let t = tracer.finish();
        let ns: Vec<u64> = t.events().iter().map(|e| e.ns).collect();
        assert!(ns.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn span_of_empty_trace_is_zero() {
        let tracer = Tracer::new(1, true);
        assert_eq!(tracer.finish().span_ns(), 0);
    }
}
