//! Synthetic OS-noise injection — the reproduction's stand-in for the
//! kernel side of the paper's instrumentation (Figure 11).
//!
//! The paper captures real hardware interrupts through
//! `perf_event_open()` and correlates them with runtime events to show
//! how a stalled *serving* thread lets ready tasks accumulate, changing
//! the DTLock serve pattern from irregular to regular. Capturing real
//! kernel events needs privileges and specific hardware; what the
//! analysis actually requires is (a) a worker stalled for a controlled
//! interval and (b) `KernelInterrupt*` events in the same trace. This
//! injector provides exactly that: the runtime polls
//! [`NoiseInjector::check`] between tasks, and on the configured schedule
//! the chosen worker busy-sleeps for `duration`, bracketing the stall
//! with interrupt events.

use crate::CoreRecorder;
use crate::event::EventKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration of a synthetic interrupt source.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Worker/core the noise pins itself to.
    pub target_core: u16,
    /// Time between interrupts.
    pub period: Duration,
    /// Stall length per interrupt.
    pub duration: Duration,
    /// Maximum number of interrupts to inject (0 = unlimited).
    pub max_events: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            target_core: 0,
            period: Duration::from_micros(500),
            duration: Duration::from_micros(100),
            max_events: 0,
        }
    }
}

/// Shared injector; workers call [`NoiseInjector::check`] between tasks.
pub struct NoiseInjector {
    cfg: NoiseConfig,
    start: Instant,
    fired: AtomicU64,
    /// Next deadline in ns since `start`.
    next_ns: AtomicU64,
}

impl NoiseInjector {
    /// Create an injector; the first interrupt fires one `period` in.
    pub fn new(cfg: NoiseConfig) -> Self {
        Self {
            cfg,
            start: Instant::now(),
            fired: AtomicU64::new(0),
            next_ns: AtomicU64::new(cfg.period.as_nanos() as u64),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &NoiseConfig {
        &self.cfg
    }

    /// Number of interrupts injected so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Poll point: if this worker is the target and an interrupt is due,
    /// stall for the configured duration, recording the bracket events.
    /// Returns true if a stall happened.
    pub fn check(&self, core: u16, rec: &mut CoreRecorder) -> bool {
        if core != self.cfg.target_core {
            return false;
        }
        if self.cfg.max_events != 0 && self.fired.load(Ordering::Relaxed) >= self.cfg.max_events {
            return false;
        }
        let now = self.start.elapsed().as_nanos() as u64;
        let due = self.next_ns.load(Ordering::Relaxed);
        if now < due {
            return false;
        }
        // Single target worker — no race on next_ns beyond this CAS guard.
        if self
            .next_ns
            .compare_exchange(
                due,
                now + self.cfg.period.as_nanos() as u64,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return false;
        }
        let seq = self.fired.fetch_add(1, Ordering::Relaxed);
        rec.record(EventKind::KernelInterruptBegin, seq);
        // Busy-sleep: mirrors a core held by an interrupt handler — the
        // thread makes no runtime progress but does not release the CPU
        // budget to cooperating workers the way `sleep` would.
        let until = Instant::now() + self.cfg.duration;
        while Instant::now() < until {
            core::hint::spin_loop();
        }
        rec.record(EventKind::KernelInterruptEnd, seq);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn injects_on_schedule() {
        let tracer = Tracer::new(1, true);
        let mut rec = tracer.recorder(0);
        let inj = NoiseInjector::new(NoiseConfig {
            target_core: 0,
            period: Duration::from_millis(1),
            duration: Duration::from_micros(200),
            max_events: 2,
        });
        let deadline = Instant::now() + Duration::from_millis(200);
        while inj.fired() < 2 && Instant::now() < deadline {
            inj.check(0, &mut rec);
        }
        assert_eq!(inj.fired(), 2);
        drop(rec);
        let trace = tracer.finish();
        let begins = trace
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::KernelInterruptBegin)
            .count();
        let ends = trace
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::KernelInterruptEnd)
            .count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
    }

    #[test]
    fn ignores_other_cores() {
        let tracer = Tracer::new(2, true);
        let mut rec = tracer.recorder(1);
        let inj = NoiseInjector::new(NoiseConfig {
            target_core: 0,
            period: Duration::from_nanos(1),
            duration: Duration::from_micros(1),
            max_events: 0,
        });
        std::thread::sleep(Duration::from_millis(2));
        assert!(!inj.check(1, &mut rec));
        assert_eq!(inj.fired(), 0);
    }

    #[test]
    fn respects_max_events() {
        let tracer = Tracer::new(1, true);
        let mut rec = tracer.recorder(0);
        let inj = NoiseInjector::new(NoiseConfig {
            target_core: 0,
            period: Duration::from_nanos(1),
            duration: Duration::from_nanos(1),
            max_events: 3,
        });
        for _ in 0..100 {
            std::thread::sleep(Duration::from_micros(10));
            inj.check(0, &mut rec);
        }
        assert_eq!(inj.fired(), 3);
    }

    #[test]
    fn stall_duration_is_observable() {
        let tracer = Tracer::new(1, true);
        let mut rec = tracer.recorder(0);
        let inj = NoiseInjector::new(NoiseConfig {
            target_core: 0,
            period: Duration::from_nanos(1),
            duration: Duration::from_millis(2),
            max_events: 1,
        });
        std::thread::sleep(Duration::from_micros(10));
        let t0 = Instant::now();
        assert!(inj.check(0, &mut rec));
        assert!(t0.elapsed() >= Duration::from_millis(2));
        drop(rec);
        let trace = tracer.finish();
        let evs = trace.events();
        assert_eq!(evs.len(), 2);
        assert!(evs[1].ns - evs[0].ns >= 2_000_000);
    }
}
