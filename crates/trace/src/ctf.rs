//! CTF-lite binary trace format.
//!
//! The paper emits Common Trace Format streams because CTF "strives for
//! fast data writes". We keep the property that matters — fixed-size
//! little-endian records that can be `memcpy`d — in a simplified container:
//!
//! ```text
//! header:  magic  b"NTCF"     (4 bytes)
//!          version u32 LE     (currently 1)
//!          ncores  u16 LE
//!          nevents u64 LE
//! records: nevents × 24 bytes:
//!          ns u64 LE | payload u64 LE | core u16 LE | kind u8 | pad [5]
//! ```

use crate::Trace;
use crate::event::{Event, EventKind};
use std::io::{self, Read, Write};

/// File magic.
pub const MAGIC: &[u8; 4] = b"NTCF";
/// Current format version.
pub const VERSION: u32 = 1;
/// Bytes per record.
pub const RECORD_BYTES: usize = 24;

/// Typed CTF-lite serialization failures. Carried inside the
/// `io::Error` returned by [`write_trace`] (kind `InvalidInput`), so
/// callers can downcast via `err.get_ref()` instead of string-matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtfError {
    /// The trace's core count does not fit the header's on-disk `u16`.
    NcoresOverflow(u32),
}

impl std::fmt::Display for CtfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtfError::NcoresOverflow(n) => {
                write!(
                    f,
                    "ncores {n} exceeds the CTF-lite header limit {}",
                    u16::MAX
                )
            }
        }
    }
}

impl std::error::Error for CtfError {}

/// Serialize a trace into `w`. Fails with [`CtfError::NcoresOverflow`]
/// (wrapped in an `InvalidInput` io error) when the trace's core count
/// cannot be represented in the header, rather than truncating it.
pub fn write_trace<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    let ncores: u16 = trace.ncores().try_into().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            CtfError::NcoresOverflow(trace.ncores()),
        )
    })?;
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&ncores.to_le_bytes())?;
    w.write_all(&(trace.events().len() as u64).to_le_bytes())?;
    let mut rec = [0u8; RECORD_BYTES];
    for e in trace.events() {
        rec[0..8].copy_from_slice(&e.ns.to_le_bytes());
        rec[8..16].copy_from_slice(&e.payload.to_le_bytes());
        rec[16..18].copy_from_slice(&e.core.to_le_bytes());
        rec[18] = e.kind as u8;
        // bytes 19..24 are padding, already zero
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Parse a trace from `r`.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<Trace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let mut buf2 = [0u8; 2];
    r.read_exact(&mut buf2)?;
    let ncores = u16::from_le_bytes(buf2);
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let nevents = u64::from_le_bytes(buf8) as usize;
    let mut events = Vec::with_capacity(nevents.min(1 << 24));
    let mut rec = [0u8; RECORD_BYTES];
    for _ in 0..nevents {
        r.read_exact(&mut rec)?;
        let ns = u64::from_le_bytes(rec[0..8].try_into().unwrap());
        let payload = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        let core = u16::from_le_bytes(rec[16..18].try_into().unwrap());
        let kind = EventKind::from_u8(rec[18]).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad kind {}", rec[18]))
        })?;
        events.push(Event {
            ns,
            payload,
            core,
            kind,
        });
    }
    Ok(Trace::from_events(ncores.into(), events))
}

/// Write a trace to a file path.
pub fn save(trace: &Trace, path: &std::path::Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(trace, &mut f)
}

/// Read a trace from a file path.
pub fn load(path: &std::path::Path) -> io::Result<Trace> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_trace(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let events = vec![
            Event {
                ns: 10,
                payload: 7,
                core: 0,
                kind: EventKind::TaskStart,
            },
            Event {
                ns: 20,
                payload: 7,
                core: 0,
                kind: EventKind::TaskEnd,
            },
            Event {
                ns: 15,
                payload: 3,
                core: 1,
                kind: EventKind::SchedServe,
            },
        ];
        Trace::from_events(2, events)
    }

    #[test]
    fn roundtrip_in_memory() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 4 + 4 + 2 + 8 + 3 * RECORD_BYTES);
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_empty() {
        let t = Trace::from_events(4, vec![]);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.ncores(), 4);
        assert!(back.events().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    /// Forward-compat guard: a trace written by a *future* format
    /// version (VERSION + 1) must be rejected up front, not
    /// misinterpreted record-by-record.
    #[test]
    fn rejects_next_version_explicitly() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn ncores_overflow_is_a_typed_error() {
        let t = Trace::from_events(u16::MAX as u32 + 1, vec![]);
        let err = write_trace(&t, &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let inner = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<CtfError>())
            .expect("downcasts to CtfError");
        assert_eq!(*inner, CtfError::NcoresOverflow(u16::MAX as u32 + 1));
        // The boundary value still serializes.
        let t = Trace::from_events(u16::MAX as u32, vec![]);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(
            read_trace(&mut buf.as_slice()).unwrap().ncores(),
            u16::MAX as u32
        );
    }

    #[test]
    fn rejects_bad_kind() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        // Corrupt the kind byte of the first record.
        let kind_off = 4 + 4 + 2 + 8 + 18;
        buf[kind_off] = 250;
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_records() {
        let mut buf = Vec::new();
        write_trace(&sample_trace(), &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("nanotask-ctf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.ntcf");
        let t = sample_trace();
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = Event> {
        (any::<u64>(), any::<u64>(), any::<u16>(), 0u8..28).prop_map(|(ns, payload, core, k)| {
            Event {
                ns,
                payload,
                core,
                kind: EventKind::from_u8(k).unwrap(),
            }
        })
    }

    proptest! {
        #[test]
        fn roundtrip_any_events(
            events in proptest::collection::vec(arb_event(), 0..200),
            ncores in 0u32..64,
        ) {
            let t = Trace::from_events(ncores, events);
            let mut buf = Vec::new();
            write_trace(&t, &mut buf).unwrap();
            let back = read_trace(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(back, t);
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // The reader must reject garbage gracefully.
            let _ = read_trace(&mut bytes.as_slice());
        }

        #[test]
        fn truncation_is_an_error_not_a_panic(
            events in proptest::collection::vec(arb_event(), 1..20),
            cut in 1usize..10,
        ) {
            let t = Trace::from_events(4, events);
            let mut buf = Vec::new();
            write_trace(&t, &mut buf).unwrap();
            let cut = cut.min(buf.len() - 1);
            buf.truncate(buf.len() - cut);
            prop_assert!(read_trace(&mut buf.as_slice()).is_err());
        }
    }
}
