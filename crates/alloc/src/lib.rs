//! Scalable memory allocation for task-shaped objects.
//!
//! §4 of *Advanced Synchronization Techniques for Task-based Runtime
//! Systems* (PPoPP '21) observes that once the scheduler and the
//! dependency system stop serializing the runtime, the *memory allocator*
//! becomes the next bottleneck: "many implementations require the
//! serialization of every allocation in the system". The paper's fix is to
//! substitute the default allocator with jemalloc.
//!
//! This crate provides the equivalent seam for the reproduction:
//!
//! * [`PoolAllocator`] — the jemalloc stand-in: a size-class slab
//!   allocator with per-thread magazines, so task/access allocations and
//!   frees on the hot path touch only thread-private state and fall back
//!   to a shared slab carver only on magazine misses.
//! * [`SystemAllocator`] — direct `std::alloc` passthrough.
//! * [`SerializedAllocator`] — `std::alloc` behind one global lock; this
//!   models the serializing allocators the paper blames, and is what the
//!   "w/o jemalloc" ablation (Figures 4–6) runs with.
//!
//! All three implement [`RuntimeAllocator`], the object-safe trait the
//! runtime uses for every task, access and mailbox allocation.

use core::alloc::Layout;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;

pub mod stats;
pub use stats::AllocStats;

/// Object-safe allocation interface used by the runtime.
///
/// # Safety
///
/// Implementations must return memory valid for `layout` and accept in
/// `dealloc` exactly the pointers (with the same layout) they handed out.
pub unsafe trait RuntimeAllocator: Send + Sync {
    /// Allocate `layout.size()` bytes with `layout.align()` alignment.
    /// Never returns null; aborts on OOM like `std::alloc`.
    fn alloc(&self, layout: Layout) -> *mut u8;

    /// Return memory previously obtained from [`RuntimeAllocator::alloc`]
    /// with the same layout.
    ///
    /// # Safety
    /// `ptr` must come from `self.alloc(layout)` and not be freed twice.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout);

    /// Snapshot of allocation statistics (zeroes if untracked).
    fn stats(&self) -> AllocStats {
        AllocStats::default()
    }
}

/// Which allocator a runtime configuration uses. Mirrors the paper's
/// ablation axis: `Pool` ≙ jemalloc, `Serialized` ≙ "w/o jemalloc".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorKind {
    /// Size-class pool with per-thread magazines (the optimized runtime).
    #[default]
    Pool,
    /// Plain system allocator.
    System,
    /// System allocator behind a global lock (the ablation baseline).
    Serialized,
}

/// Build an allocator of the requested kind. `max_threads` bounds the
/// number of per-thread magazine slots the pool keeps.
pub fn make_allocator(
    kind: AllocatorKind,
    max_threads: usize,
) -> std::sync::Arc<dyn RuntimeAllocator> {
    match kind {
        AllocatorKind::Pool => std::sync::Arc::new(PoolAllocator::new(max_threads)),
        AllocatorKind::System => std::sync::Arc::new(SystemAllocator::default()),
        AllocatorKind::Serialized => std::sync::Arc::new(SerializedAllocator::default()),
    }
}

// ---------------------------------------------------------------------------
// System allocators
// ---------------------------------------------------------------------------

/// Passthrough to the global allocator.
#[derive(Default)]
pub struct SystemAllocator {
    live: AtomicUsize,
}

unsafe impl RuntimeAllocator for SystemAllocator {
    fn alloc(&self, layout: Layout) -> *mut u8 {
        self.live.fetch_add(1, Ordering::Relaxed);
        let p = unsafe { std::alloc::alloc(layout) };
        assert!(!p.is_null(), "system allocation failed");
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        unsafe { std::alloc::dealloc(ptr, layout) };
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            live: self.live.load(Ordering::Relaxed) as u64,
            ..AllocStats::default()
        }
    }
}

/// System allocator with every call serialized through one lock.
///
/// This deliberately reproduces the §4 pathology: every task creation in
/// the runtime contends on this lock, which is what the "w/o jemalloc"
/// curves in Figures 4–6 show at fine granularities.
#[derive(Default)]
pub struct SerializedAllocator {
    lock: Mutex<()>,
    live: AtomicUsize,
}

unsafe impl RuntimeAllocator for SerializedAllocator {
    fn alloc(&self, layout: Layout) -> *mut u8 {
        let _g = self.lock.lock();
        self.live.fetch_add(1, Ordering::Relaxed);
        let p = unsafe { std::alloc::alloc(layout) };
        assert!(!p.is_null(), "system allocation failed");
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let _g = self.lock.lock();
        self.live.fetch_sub(1, Ordering::Relaxed);
        unsafe { std::alloc::dealloc(ptr, layout) };
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            live: self.live.load(Ordering::Relaxed) as u64,
            ..AllocStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Pool allocator
// ---------------------------------------------------------------------------

/// Size classes (bytes). Multiples of 16 so any ≤16-byte alignment works;
/// geometric above 256 to bound internal fragmentation at ~33%.
const CLASSES: &[usize] = &[
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096,
];

/// Blocks per magazine refill/flush batch.
const BATCH: usize = 32;

/// Magazine high-watermark: flush half once a class cache reaches this.
const MAG_MAX: usize = 128;

/// Bytes carved per slab.
const SLAB_BYTES: usize = 64 * 1024;

/// Maximum supported alignment of pooled blocks.
const MAX_POOL_ALIGN: usize = 16;

#[inline]
fn class_of(layout: Layout) -> Option<usize> {
    if layout.align() > MAX_POOL_ALIGN {
        return None;
    }
    CLASSES.iter().position(|&c| c >= layout.size())
}

/// Per-thread cache of free blocks, one vec per size class.
#[derive(Default)]
struct Magazine {
    classes: Vec<Vec<*mut u8>>,
}

impl Magazine {
    fn new() -> Self {
        Self {
            classes: (0..CLASSES.len()).map(|_| Vec::new()).collect(),
        }
    }
}

// Raw block pointers are plain memory owned by the allocator's slabs.
unsafe impl Send for Magazine {}

/// Global (shared) free lists + slab carver for one size class.
#[derive(Default)]
struct GlobalClass {
    free: Vec<*mut u8>,
}

unsafe impl Send for GlobalClass {}

struct Slabs {
    chunks: Vec<(*mut u8, Layout)>,
}

unsafe impl Send for Slabs {}

impl Drop for Slabs {
    fn drop(&mut self) {
        for &(ptr, layout) in &self.chunks {
            unsafe { std::alloc::dealloc(ptr, layout) };
        }
    }
}

/// Size-class slab allocator with per-thread magazines: the crate's
/// jemalloc stand-in.
///
/// Hot path: pop/push on a thread-private magazine (an uncontended
/// `parking_lot::Mutex`, ~1 CAS). Miss path: batch transfer of [`BATCH`]
/// blocks between the magazine and a per-class global free list; if the
/// global list is empty a new [`SLAB_BYTES`] slab is carved.
pub struct PoolAllocator {
    id: u64,
    magazines: Box<[Mutex<Magazine>]>,
    globals: Box<[Mutex<GlobalClass>]>,
    slabs: Mutex<Slabs>,
    max_threads: usize,
    next_slot: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    slab_bytes: AtomicU64,
    live: AtomicUsize,
    oversize: AtomicU64,
}

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Maps pool-allocator id → this thread's magazine slot.
    static THREAD_SLOTS: RefCell<HashMap<u64, usize>> = RefCell::new(HashMap::new());
}

impl PoolAllocator {
    /// Create a pool with one magazine slot per expected thread.
    pub fn new(max_threads: usize) -> Self {
        let max_threads = max_threads.max(1);
        Self {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            magazines: (0..max_threads)
                .map(|_| Mutex::new(Magazine::new()))
                .collect(),
            globals: (0..CLASSES.len())
                .map(|_| Mutex::new(GlobalClass::default()))
                .collect(),
            slabs: Mutex::new(Slabs { chunks: Vec::new() }),
            max_threads,
            next_slot: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            slab_bytes: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            oversize: AtomicU64::new(0),
        }
    }

    fn slot(&self) -> usize {
        THREAD_SLOTS.with(|s| {
            *s.borrow_mut().entry(self.id).or_insert_with(|| {
                // Wrap when more threads than slots register: correctness is
                // preserved (magazines are locked), only locality degrades.
                self.next_slot.fetch_add(1, Ordering::Relaxed) % self.max_threads
            })
        })
    }

    /// Carve a fresh slab into blocks of class `ci`, pushing them onto the
    /// (held) global free list.
    fn carve(&self, ci: usize, global: &mut GlobalClass) {
        let block = CLASSES[ci];
        let layout = Layout::from_size_align(SLAB_BYTES, 64).expect("slab layout");
        let base = unsafe { std::alloc::alloc(layout) };
        assert!(!base.is_null(), "slab allocation failed");
        self.slabs.lock().chunks.push((base, layout));
        self.slab_bytes
            .fetch_add(SLAB_BYTES as u64, Ordering::Relaxed);
        let count = SLAB_BYTES / block;
        global.free.reserve(count);
        for i in 0..count {
            global.free.push(unsafe { base.add(i * block) });
        }
    }

    fn refill(&self, ci: usize, mag: &mut Vec<*mut u8>) {
        let mut global = self.globals[ci].lock();
        if global.free.is_empty() {
            self.carve(ci, &mut global);
        }
        let take = BATCH.min(global.free.len());
        let at = global.free.len() - take;
        mag.extend(global.free.drain(at..));
    }

    fn flush(&self, ci: usize, mag: &mut Vec<*mut u8>) {
        let keep = mag.len() / 2;
        let mut global = self.globals[ci].lock();
        global.free.extend(mag.drain(keep..));
    }
}

unsafe impl RuntimeAllocator for PoolAllocator {
    fn alloc(&self, layout: Layout) -> *mut u8 {
        self.live.fetch_add(1, Ordering::Relaxed);
        let Some(ci) = class_of(layout) else {
            // Oversized or over-aligned: go straight to the system.
            self.oversize.fetch_add(1, Ordering::Relaxed);
            let p = unsafe { std::alloc::alloc(layout) };
            assert!(!p.is_null(), "system allocation failed");
            return p;
        };
        let slot = self.slot();
        let mut mag = self.magazines[slot].lock();
        let cls = &mut mag.classes[ci];
        if let Some(p) = cls.pop() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return p;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.refill(ci, cls);
        cls.pop().expect("refill produced no blocks")
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        let Some(ci) = class_of(layout) else {
            unsafe { std::alloc::dealloc(ptr, layout) };
            return;
        };
        let slot = self.slot();
        let mut mag = self.magazines[slot].lock();
        let cls = &mut mag.classes[ci];
        cls.push(ptr);
        if cls.len() >= MAG_MAX {
            self.flush(ci, cls);
        }
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            pool_hits: self.hits.load(Ordering::Relaxed),
            pool_misses: self.misses.load(Ordering::Relaxed),
            slab_bytes: self.slab_bytes.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed) as u64,
            oversize: self.oversize.load(Ordering::Relaxed),
            // Task recycling is layered above (TaskSlab); the runtime
            // folds those counters in.
            ..AllocStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Task slab
// ---------------------------------------------------------------------------

/// Free slots a shelf holds before flushing half to the shared overflow.
const SHELF_MAX: usize = 64;

/// Slots moved per shelf ↔ overflow batch transfer.
const SHELF_BATCH: usize = 32;

/// Per-shelf free list of recycled object shells.
#[derive(Default)]
struct Shelf {
    free: Vec<*mut u8>,
}

unsafe impl Send for Shelf {}

/// Counters snapshot of a [`TaskSlab`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TaskSlabStats {
    /// Acquisitions served from the free list (recycled shells).
    pub recycled: u64,
    /// Acquisitions that fell through to the underlying allocator.
    pub fresh: u64,
    /// Slots currently handed out.
    pub live: u64,
    /// High-water mark of simultaneously handed-out slots.
    pub peak_live: u64,
}

/// Object free-list layered on a [`RuntimeAllocator`]: fixed-layout
/// slots (the runtime's task objects) are recycled as *initialized
/// shells* instead of round-tripping through dealloc/alloc on every
/// spawn. The owner clears a dead object down to its containers before
/// recycling, so a recycled shell hands its interior capacity (vec
/// buffers, hash-map tables) to the next occupant — the steady-state
/// spawn path of a replayed million-task graph allocates nothing.
///
/// Hot path mirrors [`PoolAllocator`]'s magazines: a per-worker shelf
/// (uncontended mutex) with batched spill to a shared overflow list, so
/// producer/consumer imbalance across workers (one worker spawns, many
/// free) still recycles instead of growing.
pub struct TaskSlab {
    layout: Layout,
    alloc: std::sync::Arc<dyn RuntimeAllocator>,
    /// Destructor for a recycled (still-initialized) shell; run when the
    /// slab itself drops, before returning the memory.
    drop_shell: unsafe fn(*mut u8),
    shelves: Box<[Mutex<Shelf>]>,
    overflow: Mutex<Shelf>,
    recycled: AtomicU64,
    fresh: AtomicU64,
    live: AtomicU64,
    peak_live: AtomicU64,
}

impl TaskSlab {
    /// A slab for `layout`-shaped slots on top of `alloc`, with one
    /// shelf per expected worker. `drop_shell` must run the shell type's
    /// destructor (slots on the free list are initialized objects).
    pub fn new(
        layout: Layout,
        alloc: std::sync::Arc<dyn RuntimeAllocator>,
        workers: usize,
        drop_shell: unsafe fn(*mut u8),
    ) -> Self {
        Self {
            layout,
            alloc,
            drop_shell,
            shelves: (0..workers.max(1)).map(|_| Mutex::default()).collect(),
            overflow: Mutex::default(),
            recycled: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            live: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
        }
    }

    /// Slot layout this slab serves.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Hand out a slot. Returns `(ptr, recycled)`: when `recycled` the
    /// memory holds an initialized shell to re-init in place; otherwise
    /// it is uninitialized and must be `write`-constructed.
    pub fn acquire(&self, worker: usize) -> (*mut u8, bool) {
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_live.fetch_max(live, Ordering::Relaxed);
        let mut shelf = self.shelves[worker % self.shelves.len()].lock();
        if let Some(p) = shelf.free.pop() {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            return (p, true);
        }
        // Shelf empty: pull a batch from the shared overflow (the frees
        // may all be landing on other workers' shelves).
        {
            let mut over = self.overflow.lock();
            let take = SHELF_BATCH.min(over.free.len());
            if take > 0 {
                let at = over.free.len() - take;
                shelf.free.extend(over.free.drain(at..));
            }
        }
        if let Some(p) = shelf.free.pop() {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            return (p, true);
        }
        drop(shelf);
        self.fresh.fetch_add(1, Ordering::Relaxed);
        (self.alloc.alloc(self.layout), false)
    }

    /// Return a cleared shell to the free list without deallocating.
    ///
    /// # Safety
    /// `p` must come from [`TaskSlab::acquire`] on this slab, hold an
    /// initialized shell (safe to drop via `drop_shell`), and not be
    /// used afterwards.
    pub unsafe fn recycle(&self, worker: usize, p: *mut u8) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        let mut shelf = self.shelves[worker % self.shelves.len()].lock();
        shelf.free.push(p);
        if shelf.free.len() >= SHELF_MAX {
            let keep = shelf.free.len() / 2;
            let mut over = self.overflow.lock();
            over.free.extend(shelf.free.drain(keep..));
        }
    }

    /// Counters snapshot.
    pub fn stats(&self) -> TaskSlabStats {
        TaskSlabStats {
            recycled: self.recycled.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            peak_live: self.peak_live.load(Ordering::Relaxed),
        }
    }
}

impl Drop for TaskSlab {
    fn drop(&mut self) {
        let mut all: Vec<*mut u8> = Vec::new();
        for shelf in self.shelves.iter() {
            all.append(&mut shelf.lock().free);
        }
        all.append(&mut self.overflow.lock().free);
        for p in all {
            unsafe {
                (self.drop_shell)(p);
                self.alloc.dealloc(p, self.layout);
            }
        }
    }
}

/// Typed convenience: allocate and construct a `T`.
pub fn alloc_box<T>(alloc: &dyn RuntimeAllocator, value: T) -> *mut T {
    let layout = Layout::new::<T>();
    let p = alloc.alloc(layout) as *mut T;
    unsafe { p.write(value) };
    p
}

/// Typed convenience: destruct and free a `T` from [`alloc_box`].
///
/// # Safety
/// `ptr` must come from `alloc_box` on the same allocator and not be used
/// afterwards.
pub unsafe fn dealloc_box<T>(alloc: &dyn RuntimeAllocator, ptr: *mut T) {
    unsafe {
        core::ptr::drop_in_place(ptr);
        alloc.dealloc(ptr as *mut u8, Layout::new::<T>());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn roundtrip(alloc: &dyn RuntimeAllocator) {
        let sizes = [1usize, 8, 16, 17, 64, 100, 256, 1000, 4096, 5000, 100_000];
        let mut ptrs = Vec::new();
        for &s in &sizes {
            let layout = Layout::from_size_align(s, 8).unwrap();
            let p = alloc.alloc(layout);
            // Write the whole block to catch under-sized classes.
            unsafe { core::ptr::write_bytes(p, 0xAB, s) };
            ptrs.push((p, layout));
        }
        for (p, layout) in ptrs {
            unsafe { alloc.dealloc(p, layout) };
        }
    }

    #[test]
    fn system_roundtrip() {
        roundtrip(&SystemAllocator::default());
    }

    #[test]
    fn serialized_roundtrip() {
        roundtrip(&SerializedAllocator::default());
    }

    #[test]
    fn pool_roundtrip() {
        roundtrip(&PoolAllocator::new(4));
    }

    #[test]
    fn class_selection() {
        let l = |s, a| Layout::from_size_align(s, a).unwrap();
        assert_eq!(class_of(l(1, 1)), Some(0)); // 16B class
        assert_eq!(class_of(l(16, 16)), Some(0));
        assert_eq!(class_of(l(17, 8)), Some(1)); // 32B class
        assert_eq!(class_of(l(4096, 8)), Some(CLASSES.len() - 1));
        assert_eq!(class_of(l(4097, 8)), None); // oversize
        assert_eq!(class_of(l(8, 64)), None); // over-aligned
    }

    #[test]
    fn pool_reuses_blocks() {
        let pool = PoolAllocator::new(1);
        let layout = Layout::from_size_align(64, 8).unwrap();
        let p1 = pool.alloc(layout);
        unsafe { pool.dealloc(p1, layout) };
        let p2 = pool.alloc(layout);
        assert_eq!(p1, p2, "magazine should return the just-freed block");
        unsafe { pool.dealloc(p2, layout) };
        let s = pool.stats();
        assert!(s.pool_hits >= 1);
        assert_eq!(s.live, 0);
    }

    #[test]
    fn pool_blocks_are_distinct_and_aligned() {
        let pool = PoolAllocator::new(2);
        let layout = Layout::from_size_align(48, 16).unwrap();
        let mut ptrs: Vec<*mut u8> = (0..500).map(|_| pool.alloc(layout)).collect();
        let mut sorted = ptrs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ptrs.len(), "duplicate blocks handed out");
        for &p in &ptrs {
            assert_eq!(p as usize % 16, 0, "misaligned block");
        }
        for p in ptrs.drain(..) {
            unsafe { pool.dealloc(p, layout) };
        }
    }

    #[test]
    fn pool_cross_thread_churn() {
        let pool = Arc::new(PoolAllocator::new(4));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let layout = Layout::from_size_align(96, 8).unwrap();
                    let mut held = Vec::new();
                    for i in 0..5_000 {
                        held.push(pool.alloc(layout));
                        unsafe { core::ptr::write_bytes(*held.last().unwrap(), 7, 96) };
                        if i % 3 == 0
                            && let Some(p) = held.pop()
                        {
                            unsafe { pool.dealloc(p, layout) };
                        }
                    }
                    for p in held {
                        unsafe { pool.dealloc(p, layout) };
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(pool.stats().live, 0);
    }

    #[test]
    fn pool_magazine_flush_path() {
        // Free more than MAG_MAX blocks of one class to force a flush.
        let pool = PoolAllocator::new(1);
        let layout = Layout::from_size_align(32, 8).unwrap();
        let ptrs: Vec<_> = (0..(MAG_MAX * 2)).map(|_| pool.alloc(layout)).collect();
        for p in ptrs {
            unsafe { pool.dealloc(p, layout) };
        }
        assert_eq!(pool.stats().live, 0);
        // Blocks must be reusable after the flush round-trip.
        let p = pool.alloc(layout);
        unsafe { pool.dealloc(p, layout) };
    }

    #[test]
    fn alloc_box_roundtrip() {
        let pool = PoolAllocator::new(1);
        let p = alloc_box(&pool, vec![1u32, 2, 3]);
        unsafe {
            assert_eq!((&*p)[2], 3);
            dealloc_box(&pool, p);
        }
        assert_eq!(pool.stats().live, 0);
    }

    #[test]
    fn make_allocator_kinds() {
        for kind in [
            AllocatorKind::Pool,
            AllocatorKind::System,
            AllocatorKind::Serialized,
        ] {
            let a = make_allocator(kind, 2);
            let layout = Layout::from_size_align(40, 8).unwrap();
            let p = a.alloc(layout);
            unsafe { a.dealloc(p, layout) };
        }
    }

    /// Shell type for slab tests: interior capacity + drop tracking.
    struct Shell {
        payload: Vec<u64>,
        drops: Arc<core::sync::atomic::AtomicUsize>,
    }

    impl Drop for Shell {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    unsafe fn drop_shell(p: *mut u8) {
        unsafe { core::ptr::drop_in_place(p as *mut Shell) };
    }

    fn shell_slab(alloc: Arc<dyn RuntimeAllocator>) -> TaskSlab {
        TaskSlab::new(Layout::new::<Shell>(), alloc, 2, drop_shell)
    }

    #[test]
    fn slab_recycles_shells_with_capacity() {
        let drops = Arc::new(core::sync::atomic::AtomicUsize::new(0));
        let pool: Arc<dyn RuntimeAllocator> = Arc::new(PoolAllocator::new(2));
        let slab = shell_slab(Arc::clone(&pool));
        let (p, recycled) = slab.acquire(0);
        assert!(!recycled, "first acquire must be fresh");
        let sp = p as *mut Shell;
        unsafe {
            sp.write(Shell {
                payload: Vec::with_capacity(100),
                drops: Arc::clone(&drops),
            });
            // Owner clears contents but keeps containers, then recycles.
            (*sp).payload.clear();
            slab.recycle(0, p);
        }
        let (q, recycled) = slab.acquire(0);
        assert!(recycled, "second acquire must reuse the shell");
        assert_eq!(p, q, "shelf should return the just-recycled slot");
        unsafe {
            // Interior capacity survived the recycle round-trip.
            assert!((*(q as *mut Shell)).payload.capacity() >= 100);
        }
        let s = slab.stats();
        assert_eq!((s.recycled, s.fresh, s.live, s.peak_live), (1, 1, 1, 1));
        unsafe { slab.recycle(0, q) };
        assert_eq!(
            drops.load(Ordering::Relaxed),
            0,
            "shells live until slab drop"
        );
        drop(slab);
        assert_eq!(
            drops.load(Ordering::Relaxed),
            1,
            "slab drop runs destructors"
        );
        assert_eq!(pool.stats().live, 0, "slab drop returns memory");
    }

    #[test]
    fn slab_shares_across_workers_via_overflow() {
        // Worker 1 frees, worker 0 allocates: after worker 1's shelf
        // spills, worker 0 must recycle from the shared overflow.
        let drops = Arc::new(core::sync::atomic::AtomicUsize::new(0));
        let pool: Arc<dyn RuntimeAllocator> = Arc::new(PoolAllocator::new(2));
        let slab = shell_slab(pool);
        let ptrs: Vec<*mut u8> = (0..SHELF_MAX + 8)
            .map(|_| {
                let (p, _) = slab.acquire(0);
                unsafe {
                    (p as *mut Shell).write(Shell {
                        payload: Vec::new(),
                        drops: Arc::clone(&drops),
                    });
                }
                p
            })
            .collect();
        for p in ptrs {
            unsafe { slab.recycle(1, p) };
        }
        let mut recycled_count = 0;
        for _ in 0..SHELF_MAX {
            let (p, recycled) = slab.acquire(0);
            if recycled {
                recycled_count += 1;
                unsafe { slab.recycle(0, p) };
            } else {
                unsafe {
                    (p as *mut Shell).write(Shell {
                        payload: Vec::new(),
                        drops: Arc::clone(&drops),
                    });
                    slab.recycle(0, p);
                }
            }
        }
        assert!(
            recycled_count >= SHELF_BATCH,
            "overflow batch must reach the allocating worker (got {recycled_count})"
        );
    }

    #[test]
    fn slab_conforms_on_every_allocator_kind() {
        for kind in [
            AllocatorKind::Pool,
            AllocatorKind::System,
            AllocatorKind::Serialized,
        ] {
            let drops = Arc::new(core::sync::atomic::AtomicUsize::new(0));
            let alloc = make_allocator(kind, 2);
            let slab = shell_slab(Arc::clone(&alloc));
            for round in 0..3 {
                let (p, recycled) = slab.acquire(0);
                assert_eq!(recycled, round > 0, "kind {kind:?} round {round}");
                if !recycled {
                    unsafe {
                        (p as *mut Shell).write(Shell {
                            payload: vec![7; 4],
                            drops: Arc::clone(&drops),
                        });
                    }
                }
                unsafe {
                    (*(p as *mut Shell)).payload.clear();
                    slab.recycle(0, p);
                }
            }
            drop(slab);
            assert_eq!(drops.load(Ordering::Relaxed), 1);
            assert_eq!(alloc.stats().live, 0, "kind {kind:?} leaked");
        }
    }

    #[test]
    fn oversize_goes_to_system() {
        let pool = PoolAllocator::new(1);
        let layout = Layout::from_size_align(1 << 20, 8).unwrap();
        let p = pool.alloc(layout);
        unsafe { core::ptr::write_bytes(p, 1, 1 << 20) };
        unsafe { pool.dealloc(p, layout) };
        assert_eq!(pool.stats().oversize, 1);
    }
}

#[cfg(test)]
mod prop_tests {
    //! Property: under any sequence of allocations and frees, live blocks
    //! never overlap and always satisfy size/alignment — for every
    //! allocator kind.

    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Alloc { size: usize, align_pow: u8 },
        FreeOldest,
        FreeNewest,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (1usize..6000, 0u8..5).prop_map(|(size, align_pow)| Op::Alloc { size, align_pow }),
            1 => Just(Op::FreeOldest),
            1 => Just(Op::FreeNewest),
        ]
    }

    fn check(kind: AllocatorKind, ops: Vec<Op>) -> Result<(), TestCaseError> {
        let a = make_allocator(kind, 2);
        let mut live: Vec<(usize, Layout)> = Vec::new();
        for o in ops {
            match o {
                Op::Alloc { size, align_pow } => {
                    let align = 1usize << align_pow;
                    let layout = Layout::from_size_align(size, align).unwrap();
                    let p = a.alloc(layout) as usize;
                    prop_assert!(p != 0);
                    prop_assert_eq!(p % align, 0, "misaligned block");
                    for &(q, ql) in &live {
                        let disjoint = p + size <= q || q + ql.size() <= p;
                        prop_assert!(
                            disjoint,
                            "blocks overlap: {p:#x}+{size} vs {q:#x}+{}",
                            ql.size()
                        );
                    }
                    live.push((p, layout));
                }
                Op::FreeOldest => {
                    if !live.is_empty() {
                        let (p, l) = live.remove(0);
                        unsafe { a.dealloc(p as *mut u8, l) };
                    }
                }
                Op::FreeNewest => {
                    if let Some((p, l)) = live.pop() {
                        unsafe { a.dealloc(p as *mut u8, l) };
                    }
                }
            }
        }
        for (p, l) in live {
            unsafe { a.dealloc(p as *mut u8, l) };
        }
        prop_assert_eq!(a.stats().live, 0, "leak detected");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pool_blocks_never_overlap(ops in proptest::collection::vec(op(), 1..150)) {
            check(AllocatorKind::Pool, ops)?;
        }

        #[test]
        fn system_blocks_never_overlap(ops in proptest::collection::vec(op(), 1..60)) {
            check(AllocatorKind::System, ops)?;
        }

        #[test]
        fn serialized_blocks_never_overlap(ops in proptest::collection::vec(op(), 1..60)) {
            check(AllocatorKind::Serialized, ops)?;
        }
    }
}
