//! Allocation statistics, used by the benchmark harness to report the
//! contrast between the pooled and serialized allocators (§4 of the
//! paper) and by tests to assert leak-freedom.

/// Counters exported by a [`crate::RuntimeAllocator`]. All values are
/// monotone except `live`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations served from a thread-private magazine.
    pub pool_hits: u64,
    /// Allocations that had to visit the shared free list / slab carver.
    pub pool_misses: u64,
    /// Bytes of slab memory currently reserved from the OS.
    pub slab_bytes: u64,
    /// Currently outstanding allocations.
    pub live: u64,
    /// Requests too large/over-aligned for the pool (system passthrough).
    pub oversize: u64,
    /// Task objects served as recycled shells from the task slab
    /// (interior capacity retained) instead of fresh allocations.
    pub recycle_hits: u64,
    /// Task objects that needed a fresh allocation (slab free list
    /// empty — the warmup cost of each distinct in-flight task slot).
    pub recycle_misses: u64,
    /// High-water mark of simultaneously live task objects.
    pub peak_live_tasks: u64,
}

impl AllocStats {
    /// Fraction of allocations served without touching shared state.
    pub fn hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Fraction of task allocations served as recycled shells.
    pub fn recycle_rate(&self) -> f64 {
        let total = self.recycle_hits + self.recycle_misses;
        if total == 0 {
            0.0
        } else {
            self.recycle_hits as f64 / total as f64
        }
    }
}

impl core::fmt::Display for AllocStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "hits={} misses={} hit_rate={:.1}% slab_bytes={} live={} oversize={} \
             recycled={} recycle_misses={} recycle_rate={:.1}% peak_tasks={}",
            self.pool_hits,
            self.pool_misses,
            self.hit_rate() * 100.0,
            self.slab_bytes,
            self.live,
            self.oversize,
            self.recycle_hits,
            self.recycle_misses,
            self.recycle_rate() * 100.0,
            self.peak_live_tasks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_zero_when_untouched() {
        assert_eq!(AllocStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes_fraction() {
        let s = AllocStats {
            pool_hits: 3,
            pool_misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_contains_fields() {
        let s = AllocStats {
            pool_hits: 5,
            pool_misses: 5,
            slab_bytes: 1024,
            live: 2,
            oversize: 1,
            recycle_hits: 9,
            recycle_misses: 1,
            peak_live_tasks: 7,
        };
        let text = s.to_string();
        assert!(text.contains("hits=5"));
        assert!(text.contains("50.0%"));
        assert!(text.contains("slab_bytes=1024"));
        assert!(text.contains("recycled=9"));
        assert!(text.contains("peak_tasks=7"));
    }

    #[test]
    fn recycle_rate_computes_fraction() {
        assert_eq!(AllocStats::default().recycle_rate(), 0.0);
        let s = AllocStats {
            recycle_hits: 9,
            recycle_misses: 1,
            ..Default::default()
        };
        assert!((s.recycle_rate() - 0.9).abs() < 1e-12);
    }
}
