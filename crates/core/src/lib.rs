//! A task-based runtime with a wait-free dependency system and a
//! delegation-based scheduler.
//!
//! This crate is the core of the reproduction of *Advanced
//! Synchronization Techniques for Task-based Runtime Systems* (PPoPP '21):
//! a Nanos6/OmpSs-2-style runtime in which tasks declare *data accesses*
//! (read / write / readwrite / reduction on memory addresses), the runtime
//! derives the dependency graph (including across nesting levels, the
//! OmpSs-2 extension OpenMP lacks — Figure 1 of the paper), and ready
//! tasks flow through a pluggable scheduler to a pool of workers.
//!
//! The three optimization axes of the paper are configuration switches:
//!
//! * **Dependency system** ([`DepsKind`]): the novel wait-free Atomic
//!   State Machine implementation (§2, [`deps::wait_free`]) or the
//!   fine-grained-locking baseline it replaced ([`deps::locking`]).
//! * **Scheduler** ([`SchedKind`]): the delegation scheduler built on SPSC
//!   ready-buffers + the Delegation Ticket Lock (§3, [`sched::sync_sched`]),
//!   a central lock-protected scheduler (the "w/o DTLock" ablation,
//!   [`sched::central`]), or a work-stealing scheduler standing in for the
//!   OpenMP comparators of §6.3 ([`sched::worksteal`]).
//! * **Allocator** ([`nanotask_alloc::AllocatorKind`]): pooled (jemalloc
//!   stand-in), plain system, or lock-serialized system (§4 ablation).
//!
//! ```
//! use nanotask_core::{Runtime, RuntimeConfig, Deps};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let rt = Runtime::new(RuntimeConfig::default().workers(2));
//! static SUM: AtomicU64 = AtomicU64::new(0);
//! rt.run(|ctx| {
//!     for i in 0..10u64 {
//!         ctx.spawn(Deps::new(), move |_| {
//!             SUM.fetch_add(i, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(SUM.load(Ordering::Relaxed), 45);
//! ```

pub mod deps;
pub mod graph;
pub mod platform;
pub mod runtime;
pub mod sched;
pub mod task;

pub use deps::reduction::RedOp;
pub use deps::{AccessDecl, AccessMode, Deps, DepsKind};
pub use platform::{Platform, Topology};
pub use runtime::{
    FAULT_PANIC_PREFIX, FailureKind, FaultPlan, HeldTask, RunOutcome, RunReport, Runtime,
    RuntimeConfig, RuntimeStats, SpawnCapture, TaskCtx, TaskEpilogue, TaskFailure,
};
pub use sched::{NodeOpStats, SchedKind, SchedOpStats};
pub use task::{TaskBody, TaskId};

/// A raw pointer that asserts `Send`/`Sync`, for moving addresses of user
/// data into task bodies (the runtime equivalent of what an OpenMP
/// compiler does when it outlines a task region).
///
/// Dereferencing remains `unsafe`: correctness comes from declaring the
/// matching [`Deps`] accesses, exactly as in OmpSs-2/OpenMP.
#[derive(Debug)]
pub struct SendPtr<T>(pub *mut T);

impl<T> SendPtr<T> {
    /// Wrap a raw pointer.
    pub fn new(p: *mut T) -> Self {
        Self(p)
    }

    /// The wrapped pointer.
    pub fn get(&self) -> *mut T {
        self.0
    }

    /// Address of the wrapped pointer (for use as a dependency key).
    pub fn addr(&self) -> usize {
        self.0 as usize
    }

    /// Offset like `ptr::add`.
    ///
    /// # Safety
    /// Same contract as [`pointer::add`].
    pub unsafe fn add(&self, n: usize) -> SendPtr<T> {
        SendPtr(unsafe { self.0.add(n) })
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sendptr_roundtrip() {
        let mut x = 5u32;
        let p = SendPtr::new(&mut x as *mut u32);
        assert_eq!(p.addr(), &x as *const u32 as usize);
        unsafe { *p.get() = 7 };
        assert_eq!(x, 7);
    }

    #[test]
    fn sendptr_add_offsets() {
        let mut v = [1u64, 2, 3];
        let p = SendPtr::new(v.as_mut_ptr());
        unsafe {
            assert_eq!(*p.add(2).get(), 3);
        }
    }
}
