//! Task representation and life cycle.
//!
//! "The first stage of a task's life cycle is its creation, which involves
//! the memory allocator. The runtime then checks its data dependencies to
//! determine if the task is ready or blocked [...]. Once all its
//! dependencies are satisfied, the task becomes ready and is added to the
//! scheduler [...]. Once the task has executed, it releases its
//! dependencies so that its successor tasks may become ready." (§1)
//!
//! A [`Task`] therefore carries three independent counters:
//!
//! * `blockers` — unsatisfied accesses + one *creation guard*; the
//!   transition to zero makes the task ready (exactly once).
//! * `live_children` — running direct children + one *body guard*; the
//!   transition to zero marks the task *fully done* (its subtree
//!   finished), which is when the parent is notified and taskwaits
//!   unblock.
//! * `removal_refs` — one per data access plus one for the subtree; the
//!   transition to zero allows the memory to be reclaimed. Accesses drop
//!   their reference when their Atomic State Machine reaches its terminal
//!   state (see [`crate::deps::wait_free`]), so a task object can outlive
//!   its execution while successors still read its access metadata —
//!   without any global reclamation scheme.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::collections::HashMap;

use crate::deps::AccessDecl;
use crate::deps::access::DataAccess;
use crate::runtime::TaskCtx;

/// Unique (per-runtime) task identifier.
pub type TaskId = u64;

/// Type-erased task body.
pub type TaskBody = Box<dyn FnOnce(&TaskCtx) + Send + 'static>;

/// Bottom map of a dependency domain: address → last access registered to
/// that address among this task's children. Thread-confined to the task's
/// executing thread (the *single-creator invariant*: only a task's own
/// body creates its children, as in OmpSs-2).
pub type BottomMap = HashMap<usize, *mut DataAccess>;

/// A task: body + declared accesses + life-cycle counters.
///
/// Tasks are allocated through the runtime's
/// [`nanotask_alloc::RuntimeAllocator`] and referenced by raw pointers
/// inside the runtime; the reference-counting protocol above makes the
/// frees race-free.
pub struct Task {
    /// Unique id (also used as trace payload).
    pub id: TaskId,
    /// Human-readable label for traces/debugging.
    pub label: &'static str,
    /// Parent task; null for the root task.
    pub parent: *mut Task,
    /// Worker that created the task.
    pub created_by: u32,
    /// The body; taken exactly once by the executing worker.
    pub body: UnsafeCell<Option<TaskBody>>,
    /// Unsatisfied access count + 1 creation guard.
    pub blockers: AtomicUsize,
    /// Live direct children + 1 body guard.
    pub live_children: AtomicUsize,
    /// Access terminal refs + 1 subtree ref.
    pub removal_refs: AtomicUsize,
    /// Set when the whole subtree (body + descendants) finished.
    pub fully_done: AtomicBool,
    /// Declared accesses (modes resolved, reduction info attached during
    /// registration). Mutated only by the creator before the task is
    /// published and read afterwards.
    pub decls: UnsafeCell<Vec<AccessDecl>>,
    /// Wait-free system: array of `decls.len()` Atomic State Machines.
    /// Null when the locking dependency system is active.
    pub accesses: *mut DataAccess,
    /// Number of entries in `accesses`.
    pub n_accesses: usize,
    /// Dependency domain for this task's children (wait-free system).
    pub child_bottom: UnsafeCell<BottomMap>,
    /// External completion signal, set just before the subtree reference
    /// is dropped. Used by `Runtime::run` to wait for the root task
    /// without touching task memory that may be reclaimed concurrently.
    pub completion_flag: Option<std::sync::Arc<AtomicBool>>,
    /// Scheduling priority (OmpSs-2 `priority` clause); higher runs
    /// earlier under [`crate::sched::Policy::Priority`]. Immutable after
    /// creation.
    pub priority: i32,
    /// Whether the task was registered with the dependency system.
    /// False for *held* tasks (replay execution): their `decls` are data
    /// for `red_slot` only, and the dependency system must not try to
    /// release them.
    pub registered: bool,
    /// Post-body hook + tag ([`crate::runtime::TaskEpilogue`]), run on
    /// the executing worker right after the body returns. The replay
    /// engine's steady-state seam: one shared `Arc` per iteration
    /// replaces a boxed wrapper closure per task. None everywhere else.
    pub epilogue: Option<(std::sync::Arc<dyn crate::runtime::TaskEpilogue>, u64)>,
    /// Metrics: tracer-epoch timestamp of the (sampled) moment this task
    /// was handed to the scheduler — 0 when never stamped. Read and
    /// reset by the executing worker to measure ready-queue wait.
    pub ready_ns: u64,
}

unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Build a task object (not yet registered with the dependency
    /// system). `n_accesses`/`accesses` are filled in by the dependency
    /// system if it materializes ASMs.
    pub fn new(
        id: TaskId,
        label: &'static str,
        parent: *mut Task,
        created_by: u32,
        body: TaskBody,
        decls: Vec<AccessDecl>,
    ) -> Self {
        let n = decls.len();
        Task {
            id,
            label,
            parent,
            created_by,
            body: UnsafeCell::new(Some(body)),
            // +1 creation guard, dropped by the creator after registration.
            blockers: AtomicUsize::new(n + 1),
            // +1 body guard, dropped when the body finishes.
            live_children: AtomicUsize::new(1),
            // one ref per access + 1 subtree ref.
            removal_refs: AtomicUsize::new(n + 1),
            fully_done: AtomicBool::new(false),
            decls: UnsafeCell::new(decls),
            accesses: core::ptr::null_mut(),
            n_accesses: 0,
            child_bottom: UnsafeCell::new(HashMap::new()),
            completion_flag: None,
            priority: 0,
            registered: true,
            epilogue: None,
            ready_ns: 0,
        }
    }

    /// Declared accesses. Safe to read once the task is published (the
    /// creator no longer mutates them).
    ///
    /// # Safety
    /// Must not be called concurrently with the creator's registration.
    pub unsafe fn decls(&self) -> &[AccessDecl] {
        unsafe { &*self.decls.get() }
    }

    /// Remove one blocker; returns true when the task just became ready
    /// (transitioned to zero). The caller must then schedule it.
    #[inline]
    pub fn unblock(&self) -> bool {
        let prev = self.blockers.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "blockers underflow on task {}", self.id);
        prev == 1
    }

    /// Account a new live child (called by the creator, which is the
    /// task's own body — so the body guard is still held).
    #[inline]
    pub fn add_child(&self) {
        let prev = self.live_children.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev >= 1, "child added to a finished task {}", self.id);
    }

    /// Drop one live-children reference (a finished child, or the body
    /// guard). Returns true when the task just became *fully done*.
    #[inline]
    pub fn drop_child_ref(&self) -> bool {
        let prev = self.live_children.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "live_children underflow on task {}", self.id);
        if prev == 1 {
            self.fully_done.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Number of children currently outstanding (excludes the body guard
    /// once the body finished). Used by taskwait.
    #[inline]
    pub fn pending_children(&self) -> usize {
        self.live_children.load(Ordering::Acquire)
    }

    /// Drop one removal reference. Returns true when the memory may be
    /// reclaimed (transitioned to zero).
    #[inline]
    pub fn drop_removal_ref(&self) -> bool {
        let prev = self.removal_refs.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "removal_refs underflow on task {}", self.id);
        prev == 1
    }

    /// Take the body for execution. Returns `None` if already taken.
    ///
    /// # Safety
    /// Only the worker that dequeued the task may call this.
    pub unsafe fn take_body(&self) -> Option<TaskBody> {
        unsafe { (*self.body.get()).take() }
    }

    /// Whether the whole subtree has completed.
    #[inline]
    pub fn is_fully_done(&self) -> bool {
        self.fully_done.load(Ordering::Acquire)
    }

    /// The ASM for access index `i` (wait-free system only).
    ///
    /// # Safety
    /// `i < n_accesses` and `accesses` non-null.
    pub unsafe fn access(&self, i: usize) -> &DataAccess {
        debug_assert!(i < self.n_accesses);
        unsafe { &*self.accesses.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::AccessMode;

    fn dummy(n_accesses: usize) -> Task {
        let decls = (0..n_accesses)
            .map(|i| AccessDecl::new(0x1000 + i * 8, 8, AccessMode::Write))
            .collect();
        Task::new(1, "t", core::ptr::null_mut(), 0, Box::new(|_| {}), decls)
    }

    #[test]
    fn becomes_ready_after_guard_and_accesses() {
        let t = dummy(2);
        assert!(!t.unblock()); // access 1 satisfied
        assert!(!t.unblock()); // access 2 satisfied
        assert!(t.unblock()); // creation guard dropped → ready
    }

    #[test]
    fn zero_access_task_ready_on_guard_drop() {
        let t = dummy(0);
        assert!(t.unblock());
    }

    #[test]
    fn fully_done_after_children_and_body() {
        let t = dummy(0);
        t.add_child();
        t.add_child();
        assert!(!t.drop_child_ref()); // child 1 done
        assert!(!t.drop_child_ref()); // child 2 done
        assert!(!t.is_fully_done());
        assert!(t.drop_child_ref()); // body guard
        assert!(t.is_fully_done());
    }

    #[test]
    fn removal_refs_count_accesses_plus_one() {
        let t = dummy(2);
        assert!(!t.drop_removal_ref());
        assert!(!t.drop_removal_ref());
        assert!(t.drop_removal_ref());
    }

    #[test]
    fn body_taken_once() {
        let t = dummy(0);
        unsafe {
            assert!(t.take_body().is_some());
            assert!(t.take_body().is_none());
        }
    }

    #[test]
    fn pending_children_tracks_guard() {
        let t = dummy(0);
        assert_eq!(t.pending_children(), 1); // body guard
        t.add_child();
        assert_eq!(t.pending_children(), 2);
        t.drop_child_ref();
        assert_eq!(t.pending_children(), 1);
    }
}
