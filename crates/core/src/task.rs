//! Task representation and life cycle.
//!
//! "The first stage of a task's life cycle is its creation, which involves
//! the memory allocator. The runtime then checks its data dependencies to
//! determine if the task is ready or blocked [...]. Once all its
//! dependencies are satisfied, the task becomes ready and is added to the
//! scheduler [...]. Once the task has executed, it releases its
//! dependencies so that its successor tasks may become ready." (§1)
//!
//! A task's life cycle is tracked by **one packed atomic word**
//! ([`TaskState`]): three bit-packed counters plus a flag bit, so every
//! completion-protocol step is a single `fetch_add`/`fetch_sub` against a
//! per-field constant instead of three separate atomics:
//!
//! * `blockers` (bits 0–19) — unsatisfied accesses + one *creation
//!   guard*; the transition to zero makes the task ready (exactly once).
//! * `live_children` (bits 20–43) — running direct children + one *body
//!   guard*; the transition to zero marks the task *fully done* (its
//!   subtree finished, recorded in the `FULLY_DONE` flag bit), which is
//!   when the parent is notified and taskwaits unblock.
//! * `removal_refs` (bits 44–61) — one per data access plus one for the
//!   subtree; the transition to zero allows the memory to be reclaimed.
//!   Accesses drop their reference when their Atomic State Machine
//!   reaches its terminal state (see [`crate::deps::wait_free`]), so a
//!   task object can outlive its execution while successors still read
//!   its access metadata — without any global reclamation scheme.
//! * `CANCELLED` (bit 62) — sticky flag set when a predecessor failed
//!   (or the task itself panicked): the body is skipped but the whole
//!   countdown/completion protocol above still runs, so poisoned
//!   subtrees drain without leaks or deadlock.
//!
//! Each field decrements independently because the protocol guarantees no
//! field ever underflows (a decrement would otherwise borrow into the
//! neighbouring field); under/overflow is asserted in debug builds. At
//! the 10^6–10^7-task graphs the runtime targets, the packed word plus
//! the demand-created [`BottomMap`] and the [`TaskCold`] side box keep
//! the task header small enough that a million in-flight tasks fit in a
//! couple hundred megabytes of slab-recycled memory.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::collections::HashMap;
use std::sync::Arc;

use crate::deps::AccessDecl;
use crate::deps::access::DataAccess;
use crate::runtime::TaskCtx;

/// Unique (per-runtime) task identifier.
pub type TaskId = u64;

/// Type-erased task body.
pub type TaskBody = Box<dyn FnOnce(&TaskCtx) + Send + 'static>;

/// Bottom map of a dependency domain: address → last access registered to
/// that address among this task's children. Thread-confined to the task's
/// executing thread (the *single-creator invariant*: only a task's own
/// body creates its children, as in OmpSs-2).
pub type BottomMap = HashMap<usize, *mut DataAccess>;

// --- Packed life-cycle word -----------------------------------------------

const BLOCKERS_SHIFT: u32 = 0;
const BLOCKERS_BITS: u32 = 20;
const CHILDREN_SHIFT: u32 = 20;
const CHILDREN_BITS: u32 = 24;
const REMOVAL_SHIFT: u32 = 44;
const REMOVAL_BITS: u32 = 18;
/// Flag bit: set when the task is poisoned (a transitive predecessor
/// failed, or its own body panicked). Sticky; the body is skipped but
/// the completion protocol still runs.
const CANCELLED: u64 = 1 << 62;
/// Flag bit: set (once) when `live_children` reached zero.
const FULLY_DONE: u64 = 1 << 63;

const fn field_max(bits: u32) -> u64 {
    (1u64 << bits) - 1
}

/// Total number of lazily-created bottom maps, process-wide. Leaf tasks
/// (the overwhelming majority of a graph) never create one; the fig18
/// harness asserts exactly that.
static BOTTOM_MAPS_CREATED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of demand-created child bottom maps (monotone).
pub fn bottom_maps_created() -> u64 {
    BOTTOM_MAPS_CREATED.load(Ordering::Relaxed)
}

/// The packed life-cycle word: `blockers`, `live_children` and
/// `removal_refs` bit-packed into one `AtomicU64` plus a `FULLY_DONE`
/// flag. Every transition is a single RMW against a per-field constant;
/// the three-counter protocol semantics (see the module doc) are
/// unchanged from the unpacked representation.
pub struct TaskState(AtomicU64);

impl TaskState {
    /// Largest representable `blockers` count (accesses + guard).
    pub const MAX_BLOCKERS: u64 = field_max(BLOCKERS_BITS);
    /// Largest representable `live_children` count (children + guard).
    pub const MAX_CHILDREN: u64 = field_max(CHILDREN_BITS);
    /// Largest representable `removal_refs` count (accesses + subtree).
    pub const MAX_REMOVAL_REFS: u64 = field_max(REMOVAL_BITS);

    const BLOCKER: u64 = 1 << BLOCKERS_SHIFT;
    const CHILD: u64 = 1 << CHILDREN_SHIFT;
    const REMOVAL: u64 = 1 << REMOVAL_SHIFT;

    #[inline]
    fn blockers_of(w: u64) -> u64 {
        (w >> BLOCKERS_SHIFT) & field_max(BLOCKERS_BITS)
    }

    #[inline]
    fn children_of(w: u64) -> u64 {
        (w >> CHILDREN_SHIFT) & field_max(CHILDREN_BITS)
    }

    #[inline]
    fn removal_of(w: u64) -> u64 {
        (w >> REMOVAL_SHIFT) & field_max(REMOVAL_BITS)
    }

    /// A state word with explicit per-field counts. Debug-asserts each
    /// count fits its bit field.
    pub fn with_counts(blockers: u64, live_children: u64, removal_refs: u64) -> Self {
        debug_assert!(blockers <= Self::MAX_BLOCKERS, "blockers overflow");
        debug_assert!(
            live_children <= Self::MAX_CHILDREN,
            "live_children overflow"
        );
        debug_assert!(
            removal_refs <= Self::MAX_REMOVAL_REFS,
            "removal_refs overflow"
        );
        Self(AtomicU64::new(
            (blockers << BLOCKERS_SHIFT)
                | (live_children << CHILDREN_SHIFT)
                | (removal_refs << REMOVAL_SHIFT),
        ))
    }

    /// Initial state of a dependency-registered task with `n_accesses`
    /// declared accesses: `n+1` blockers (creation guard), one
    /// live-children body guard, `n+1` removal refs (subtree ref).
    pub fn new_registered(n_accesses: usize) -> Self {
        let n = n_accesses as u64;
        Self::with_counts(n + 1, 1, n + 1)
    }

    /// Initial state of a *held* task (replay execution): readiness is
    /// one release call + the creation guard, no ASMs are materialized
    /// so reclamation needs only the subtree reference.
    pub fn new_held() -> Self {
        Self::with_counts(2, 1, 1)
    }

    /// Remove one blocker; returns true when the task just became ready
    /// (the field transitioned to zero).
    #[inline]
    pub fn unblock(&self) -> bool {
        let prev = self.0.fetch_sub(Self::BLOCKER, Ordering::AcqRel);
        debug_assert!(Self::blockers_of(prev) > 0, "blockers underflow");
        Self::blockers_of(prev) == 1
    }

    /// Account a new live child (called while the body guard is held).
    #[inline]
    pub fn add_child(&self) {
        let prev = self.0.fetch_add(Self::CHILD, Ordering::AcqRel);
        debug_assert!(
            Self::children_of(prev) >= 1,
            "child added to a finished task"
        );
        debug_assert!(
            Self::children_of(prev) < Self::MAX_CHILDREN,
            "live_children overflow"
        );
    }

    /// Drop one live-children reference. Returns true when the task just
    /// became *fully done* (also sets the `FULLY_DONE` flag).
    #[inline]
    pub fn drop_child_ref(&self) -> bool {
        let prev = self.0.fetch_sub(Self::CHILD, Ordering::AcqRel);
        debug_assert!(Self::children_of(prev) > 0, "live_children underflow");
        if Self::children_of(prev) == 1 {
            self.0.fetch_or(FULLY_DONE, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Outstanding live-children count (includes the body guard until
    /// the body finished).
    #[inline]
    pub fn pending_children(&self) -> usize {
        Self::children_of(self.0.load(Ordering::Acquire)) as usize
    }

    /// Drop one removal reference. Returns true when the memory may be
    /// reclaimed (the field transitioned to zero).
    #[inline]
    pub fn drop_removal_ref(&self) -> bool {
        let prev = self.0.fetch_sub(Self::REMOVAL, Ordering::AcqRel);
        debug_assert!(Self::removal_of(prev) > 0, "removal_refs underflow");
        Self::removal_of(prev) == 1
    }

    /// Whether the whole subtree has completed.
    #[inline]
    pub fn is_fully_done(&self) -> bool {
        self.0.load(Ordering::Acquire) & FULLY_DONE != 0
    }

    /// Poison the task: its body will be skipped, the completion
    /// protocol still runs. Idempotent (single `fetch_or`).
    #[inline]
    pub fn mark_cancelled(&self) {
        self.0.fetch_or(CANCELLED, Ordering::AcqRel);
    }

    /// Whether the task was poisoned by a failed predecessor (or its
    /// own panic).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire) & CANCELLED != 0
    }
}

/// Rarely-populated task fields, boxed behind one pointer-sized option
/// in [`Task`] so the common task pays 8 bytes instead of carrying both
/// fields inline. Recycled shells keep the box (contents cleared).
#[derive(Default)]
pub struct TaskCold {
    /// External completion signal, set just before the subtree reference
    /// is dropped. Used by `Runtime::run` to wait for the root task
    /// without touching task memory that may be reclaimed concurrently.
    pub completion_flag: Option<Arc<AtomicBool>>,
    /// Post-body hook + tag ([`crate::runtime::TaskEpilogue`]), run on
    /// the executing worker right after the body returns. The replay
    /// engine's steady-state seam: one shared `Arc` per iteration
    /// replaces a boxed wrapper closure per task.
    pub epilogue: Option<(Arc<dyn crate::runtime::TaskEpilogue>, u64)>,
}

/// A task: body + declared accesses + the packed life-cycle word.
///
/// Tasks are allocated through the runtime's
/// [`nanotask_alloc::RuntimeAllocator`] (recycled via the task slab) and
/// referenced by raw pointers inside the runtime; the reference-counting
/// protocol above makes the frees race-free.
pub struct Task {
    /// Unique id (also used as trace payload).
    pub id: TaskId,
    /// Human-readable label for traces/debugging.
    pub label: &'static str,
    /// Parent task; null for the root task.
    pub parent: *mut Task,
    /// Worker that created the task.
    pub created_by: u32,
    /// The body; taken exactly once by the executing worker.
    pub body: UnsafeCell<Option<TaskBody>>,
    /// Packed life-cycle word (blockers / live_children / removal_refs).
    pub state: TaskState,
    /// Declared accesses (modes resolved, reduction info attached during
    /// registration). Mutated only by the creator before the task is
    /// published and read afterwards.
    pub decls: UnsafeCell<Vec<AccessDecl>>,
    /// Wait-free system: array of `decls.len()` Atomic State Machines.
    /// Null when the locking dependency system is active.
    pub accesses: *mut DataAccess,
    /// Number of entries in `accesses`.
    pub n_accesses: usize,
    /// Dependency domain for this task's children (wait-free system).
    /// Demand-created on the first child registration: leaf tasks never
    /// allocate one.
    pub child_bottom: UnsafeCell<Option<Box<BottomMap>>>,
    /// Cold fields (completion flag, epilogue); `None` for the common
    /// task.
    pub cold: Option<Box<TaskCold>>,
    /// Scheduling priority (OmpSs-2 `priority` clause); higher runs
    /// earlier under [`crate::sched::Policy::Priority`]. Immutable after
    /// creation.
    pub priority: i32,
    /// Whether the task was registered with the dependency system.
    /// False for *held* tasks (replay execution): their `decls` are data
    /// for `red_slot` only, and the dependency system must not try to
    /// release them.
    pub registered: bool,
    /// Metrics: tracer-epoch timestamp of the (sampled) moment this task
    /// was handed to the scheduler — 0 when never stamped. Read and
    /// reset by the executing worker to measure ready-queue wait.
    pub ready_ns: u64,
}

unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Build a task object (not yet registered with the dependency
    /// system). `n_accesses`/`accesses` are filled in by the dependency
    /// system if it materializes ASMs.
    pub fn new(
        id: TaskId,
        label: &'static str,
        parent: *mut Task,
        created_by: u32,
        body: TaskBody,
        decls: Vec<AccessDecl>,
    ) -> Self {
        let n = decls.len();
        Task {
            id,
            label,
            parent,
            created_by,
            body: UnsafeCell::new(Some(body)),
            state: TaskState::new_registered(n),
            decls: UnsafeCell::new(decls),
            accesses: core::ptr::null_mut(),
            n_accesses: 0,
            child_bottom: UnsafeCell::new(None),
            cold: None,
            priority: 0,
            registered: true,
            ready_ns: 0,
        }
    }

    /// Re-initialize a recycled shell in place for a new task, keeping
    /// the interior capacity the previous occupant accumulated (decls
    /// buffer, bottom map, cold box). The shell must have gone through
    /// [`Task::reset_for_recycle`].
    pub(crate) fn reinit_recycled(
        &mut self,
        id: TaskId,
        label: &'static str,
        parent: *mut Task,
        created_by: u32,
        body: TaskBody,
        decls: Vec<AccessDecl>,
    ) {
        let n = decls.len();
        self.id = id;
        self.label = label;
        self.parent = parent;
        self.created_by = created_by;
        *self.body.get_mut() = Some(body);
        self.state = TaskState::new_registered(n);
        let dv = self.decls.get_mut();
        debug_assert!(dv.is_empty(), "recycled shell with live decls");
        if !decls.is_empty() {
            *dv = decls;
        }
        self.accesses = core::ptr::null_mut();
        self.n_accesses = 0;
        self.priority = 0;
        self.registered = true;
        self.ready_ns = 0;
    }

    /// Clear a dead task into a recyclable shell: drop the *contents*
    /// (decl elements, bottom-map entries, cold fields) but keep the
    /// *containers* (decl buffer, map table, cold box) so the next
    /// occupant skips their allocations. The access array must already
    /// have been freed.
    pub(crate) fn reset_for_recycle(&mut self) {
        debug_assert!(self.accesses.is_null(), "access array leaked into recycle");
        *self.body.get_mut() = None;
        self.decls.get_mut().clear();
        if let Some(map) = self.child_bottom.get_mut().as_deref_mut() {
            map.clear();
        }
        if let Some(cold) = self.cold.as_deref_mut() {
            cold.completion_flag = None;
            cold.epilogue = None;
        }
        self.ready_ns = 0;
    }

    /// Declared accesses. Safe to read once the task is published (the
    /// creator no longer mutates them).
    ///
    /// # Safety
    /// Must not be called concurrently with the creator's registration.
    pub unsafe fn decls(&self) -> &[AccessDecl] {
        unsafe { &*self.decls.get() }
    }

    /// Remove one blocker; returns true when the task just became ready
    /// (transitioned to zero). The caller must then schedule it.
    #[inline]
    pub fn unblock(&self) -> bool {
        self.state.unblock()
    }

    /// Account a new live child (called by the creator, which is the
    /// task's own body — so the body guard is still held).
    #[inline]
    pub fn add_child(&self) {
        self.state.add_child();
    }

    /// Drop one live-children reference (a finished child, or the body
    /// guard). Returns true when the task just became *fully done*.
    #[inline]
    pub fn drop_child_ref(&self) -> bool {
        self.state.drop_child_ref()
    }

    /// Number of children currently outstanding (excludes the body guard
    /// once the body finished). Used by taskwait.
    #[inline]
    pub fn pending_children(&self) -> usize {
        self.state.pending_children()
    }

    /// Drop one removal reference. Returns true when the memory may be
    /// reclaimed (transitioned to zero).
    #[inline]
    pub fn drop_removal_ref(&self) -> bool {
        self.state.drop_removal_ref()
    }

    /// Take the body for execution. Returns `None` if already taken.
    ///
    /// # Safety
    /// Only the worker that dequeued the task may call this.
    pub unsafe fn take_body(&self) -> Option<TaskBody> {
        unsafe { (*self.body.get()).take() }
    }

    /// Whether the whole subtree has completed.
    #[inline]
    pub fn is_fully_done(&self) -> bool {
        self.state.is_fully_done()
    }

    /// Poison the task (failed predecessor / own panic): skip the body,
    /// keep the completion protocol. Sticky and idempotent.
    #[inline]
    pub fn mark_cancelled(&self) {
        self.state.mark_cancelled();
    }

    /// Whether the task was poisoned.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.state.is_cancelled()
    }

    /// Attach the external completion signal (creator, before publish).
    pub fn set_completion_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cold.get_or_insert_with(Box::default).completion_flag = Some(flag);
    }

    /// The external completion signal, if any.
    #[inline]
    pub fn completion_flag(&self) -> Option<&Arc<AtomicBool>> {
        self.cold.as_ref().and_then(|c| c.completion_flag.as_ref())
    }

    /// Attach the post-body epilogue hook (creator, before publish).
    pub fn set_epilogue(&mut self, epilogue: (Arc<dyn crate::runtime::TaskEpilogue>, u64)) {
        self.cold.get_or_insert_with(Box::default).epilogue = Some(epilogue);
    }

    /// Detach the epilogue for running (executing worker, post-body).
    #[inline]
    pub fn take_epilogue(&mut self) -> Option<(Arc<dyn crate::runtime::TaskEpilogue>, u64)> {
        match &mut self.cold {
            Some(c) => c.epilogue.take(),
            None => None,
        }
    }

    /// The child dependency domain, demand-created on first use.
    ///
    /// # Safety
    /// Thread-confined to the task's executing thread (single-creator
    /// invariant): only the task's own body registers children.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn child_bottom_or_init(&self) -> &mut BottomMap {
        let slot = unsafe { &mut *self.child_bottom.get() };
        slot.get_or_insert_with(|| {
            BOTTOM_MAPS_CREATED.fetch_add(1, Ordering::Relaxed);
            Box::default()
        })
    }

    /// The child dependency domain if any child ever registered.
    ///
    /// # Safety
    /// Same thread confinement as [`Task::child_bottom_or_init`].
    pub unsafe fn child_bottom_ref(&self) -> Option<&BottomMap> {
        unsafe { (*self.child_bottom.get()).as_deref() }
    }

    /// The ASM for access index `i` (wait-free system only).
    ///
    /// # Safety
    /// `i < n_accesses` and `accesses` non-null.
    pub unsafe fn access(&self, i: usize) -> &DataAccess {
        debug_assert!(i < self.n_accesses);
        unsafe { &*self.accesses.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::AccessMode;

    fn dummy(n_accesses: usize) -> Task {
        let decls = (0..n_accesses)
            .map(|i| AccessDecl::new(0x1000 + i * 8, 8, AccessMode::Write))
            .collect();
        Task::new(1, "t", core::ptr::null_mut(), 0, Box::new(|_| {}), decls)
    }

    #[test]
    fn becomes_ready_after_guard_and_accesses() {
        let t = dummy(2);
        assert!(!t.unblock()); // access 1 satisfied
        assert!(!t.unblock()); // access 2 satisfied
        assert!(t.unblock()); // creation guard dropped → ready
    }

    #[test]
    fn zero_access_task_ready_on_guard_drop() {
        let t = dummy(0);
        assert!(t.unblock());
    }

    #[test]
    fn fully_done_after_children_and_body() {
        let t = dummy(0);
        t.add_child();
        t.add_child();
        assert!(!t.drop_child_ref()); // child 1 done
        assert!(!t.drop_child_ref()); // child 2 done
        assert!(!t.is_fully_done());
        assert!(t.drop_child_ref()); // body guard
        assert!(t.is_fully_done());
    }

    #[test]
    fn removal_refs_count_accesses_plus_one() {
        let t = dummy(2);
        assert!(!t.drop_removal_ref());
        assert!(!t.drop_removal_ref());
        assert!(t.drop_removal_ref());
    }

    #[test]
    fn body_taken_once() {
        let t = dummy(0);
        unsafe {
            assert!(t.take_body().is_some());
            assert!(t.take_body().is_none());
        }
    }

    #[test]
    fn pending_children_tracks_guard() {
        let t = dummy(0);
        assert_eq!(t.pending_children(), 1); // body guard
        t.add_child();
        assert_eq!(t.pending_children(), 2);
        t.drop_child_ref();
        assert_eq!(t.pending_children(), 1);
    }

    #[test]
    fn packed_fields_decrement_independently() {
        // Interleave all three protocols on one word: no decrement may
        // disturb a neighbouring field.
        let s = TaskState::with_counts(2, 3, 4);
        assert!(!s.unblock());
        assert!(!s.drop_removal_ref());
        assert!(!s.drop_child_ref());
        assert_eq!(s.pending_children(), 2);
        assert!(s.unblock()); // blockers → 0
        assert!(!s.drop_child_ref());
        assert!(!s.drop_removal_ref());
        assert!(s.drop_child_ref()); // children → 0
        assert!(s.is_fully_done());
        assert!(!s.drop_removal_ref());
        assert!(s.drop_removal_ref()); // removal → 0
    }

    #[test]
    fn cancelled_bit_is_sticky_and_disturbs_no_counter() {
        let s = TaskState::with_counts(2, 2, 2);
        assert!(!s.is_cancelled());
        s.mark_cancelled();
        s.mark_cancelled(); // idempotent
        assert!(s.is_cancelled());
        // The full protocol still drains underneath the flag.
        assert!(!s.unblock());
        assert!(s.unblock());
        assert!(!s.drop_child_ref());
        assert!(s.drop_child_ref());
        assert!(s.is_fully_done());
        assert!(s.is_cancelled());
        assert!(!s.drop_removal_ref());
        assert!(s.drop_removal_ref());
    }

    #[test]
    fn recycled_shell_clears_cancelled_bit() {
        let mut t = dummy(0);
        t.mark_cancelled();
        assert!(t.is_cancelled());
        t.accesses = core::ptr::null_mut();
        t.reset_for_recycle();
        t.reinit_recycled(
            2,
            "t2",
            core::ptr::null_mut(),
            0,
            Box::new(|_| {}),
            Vec::new(),
        );
        assert!(!t.is_cancelled());
    }

    #[test]
    fn held_state_matches_protocol() {
        let s = TaskState::new_held();
        assert!(!s.unblock()); // creation guard
        assert!(s.unblock()); // the one release call
        assert!(s.drop_child_ref()); // body guard
        assert!(s.drop_removal_ref()); // subtree ref
    }

    #[test]
    fn leaf_task_has_no_bottom_map() {
        let t = dummy(0);
        unsafe {
            assert!(t.child_bottom_ref().is_none());
            let before = bottom_maps_created();
            t.child_bottom_or_init().insert(0x10, core::ptr::null_mut());
            assert_eq!(bottom_maps_created(), before + 1);
            assert_eq!(t.child_bottom_ref().unwrap().len(), 1);
            // Second use reuses the map.
            t.child_bottom_or_init().insert(0x20, core::ptr::null_mut());
            assert_eq!(bottom_maps_created(), before + 1);
        }
    }

    #[test]
    fn cold_box_holds_epilogue_and_flag() {
        let mut t = dummy(0);
        assert!(t.cold.is_none());
        assert!(t.take_epilogue().is_none());
        let flag = Arc::new(AtomicBool::new(false));
        t.set_completion_flag(Arc::clone(&flag));
        assert!(t.completion_flag().is_some());
        assert!(t.cold.is_some());
    }
}
